//! Regression suite for structural run diffing (`jwins_metrics::diff`,
//! surfaced as the `run_diff` bin).
//!
//! The contracts pinned here:
//!
//! - two runs of the same configuration and seed compare *canonically
//!   identical*, even across worker-thread counts (the wall-clock side
//!   channel is stripped before comparison);
//! - a seed change diverges at the very first event (`RunStart` carries the
//!   seed);
//! - a learning-rate change first diverges at a *weight-carrying* event: a
//!   `MsgSend` whose payload byte count moved (the wire codec is
//!   value-dependent), at the exact same virtual send time — not at some
//!   setup or topology event;
//! - the checked-in golden trace (`tests/fixtures/trace_run_diff_golden.jsonl`)
//!   still reproduces bit-for-bit, so `run_diff` against a recorded
//!   baseline is meaningful across machines. Regenerate it after an
//!   *intended* behaviour change with
//!   `cargo test --test run_diff -- --ignored regenerate`.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::strategies::{Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_metrics::diff::TraceDiff;
use jwins_nn::models::mlp_classifier;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;
use jwins_trace::{MemorySink, TraceEvent};
use std::path::PathBuf;

const NODES: usize = 6;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/trace_run_diff_golden.jsonl")
}

/// The fixture workload: small but non-degenerate (stragglers, real links,
/// per-round evals) so the trace has sends, mixes and staleness.
fn golden_config(threads: usize) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 3;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg
}

fn run_traced(cfg: TrainConfig) -> Vec<TraceEvent> {
    let memory = MemorySink::new();
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            let strategy: Box<dyn ShareStrategy> =
                Box::new(Jwins::new(JwinsConfig::paper_default(), 100 + node as u64));
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), strategy)
        })
        .trace_sink(Box::new(memory.clone()))
        .build()
        .unwrap()
        .run()
        .unwrap();
    memory.events()
}

fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut text = String::new();
    for event in events {
        text.push_str(&serde::json::to_string(event));
        text.push('\n');
    }
    text
}

/// Identical seed and config → zero divergence, even across thread counts
/// (thread choice only moves the wall-clock side channel, which the diff
/// strips).
#[test]
fn identical_runs_diff_empty() {
    let a = run_traced(golden_config(1));
    let b = run_traced(golden_config(2));
    let diff = TraceDiff::compare(&a, &b);
    assert!(
        diff.is_identical(),
        "same-seed runs diverged at {:?}:\n{}",
        diff.divergence,
        diff.render(3)
    );
    assert!(diff.kind_deltas.is_empty());
    assert!(diff.metric_deltas.is_empty());
}

/// A seed change shows up immediately: `RunStart` carries the seed, so the
/// first divergent canonical event is index 0.
#[test]
fn seed_perturbation_diverges_at_run_start() {
    let a = run_traced(golden_config(1));
    let b = run_traced(golden_config(1).with_seed(43));
    let diff = TraceDiff::compare(&a, &b);
    assert_eq!(diff.divergence, Some(0), "RunStart carries the seed");
    assert!(diff
        .render(3)
        .contains("first divergence at canonical event 0"));
}

/// A learning-rate change moves only the model weights — so the first
/// divergence is a *weight-carrying* event, not setup or topology. The
/// wire codec is value-dependent (XOR-delta float compression; JWINS adds
/// a magnitude-based wavelet cut-off on top), so the weights reach the
/// trace through a `MsgSend` payload byte count: same sender, same
/// receiver, same virtual send time, different `bytes`. Pinpointing that
/// kind of subtle cause is exactly what `run_diff` is for.
#[test]
fn lr_perturbation_first_diverges_at_a_weight_carrying_send() {
    let a = run_traced(golden_config(1));
    let b = run_traced(golden_config(1).with_lr(0.05));
    let diff = TraceDiff::compare(&a, &b);
    let index = diff.divergence.expect("different lr must diverge");
    assert!(index > 0, "header and early setup events stay identical");
    assert_eq!(
        a[index].kind_name(),
        "MsgSend",
        "weights surface on the wire first, got {} at {index}",
        a[index].kind_name()
    );
    assert_eq!(
        a[index].t_ns(),
        b[index].t_ns(),
        "the send is scheduled at the same virtual instant; only its \
         payload moved"
    );
    // Everything before the divergent send is untouched by the lr.
    assert_eq!(&a[..index], &b[..index]);
}

/// The checked-in golden trace still reproduces exactly: `run_diff`
/// against a recorded baseline stays meaningful across machines and PRs.
#[test]
fn golden_fixture_matches_fresh_run() {
    let path = golden_path();
    let parsed = jwins_trace::read_jsonl(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with \
             `cargo test --test run_diff -- --ignored regenerate`",
            path.display()
        )
    });
    assert!(parsed.is_clean(), "golden fixture has unparsable lines");
    let fresh = run_traced(golden_config(1));
    let diff = TraceDiff::compare(&parsed.events, &fresh);
    assert!(
        diff.is_identical(),
        "fresh run diverged from the golden fixture at {:?} — if the engine \
         change was intended, regenerate the fixture with \
         `cargo test --test run_diff -- --ignored regenerate`:\n{}",
        diff.divergence,
        diff.render(3)
    );
}

/// Rewrites the golden fixture from the current engine. Run explicitly
/// after an intended behaviour change:
/// `cargo test --test run_diff -- --ignored regenerate`.
#[test]
#[ignore = "fixture generator, not a test"]
fn regenerate() {
    let events = jwins_trace::replay::canonicalize(&run_traced(golden_config(1)));
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, to_jsonl(&events)).unwrap();
    println!("wrote {} ({} events)", path.display(), events.len());
}
