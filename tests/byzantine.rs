//! Byzantine scenario differential suite.
//!
//! The adversarial layer rides the same determinism contracts as the rest
//! of the engine, and this suite pins all of them:
//!
//! 1. **The empty plan is a strict no-op.** `AttackPlan` with no windows
//!    plus `Robust::None` is bit-identical to a configuration that never
//!    mentions either field, at every worker thread count — the adversarial
//!    plumbing costs nothing when unused.
//! 2. **Attacked runs are deterministic.** A seeded attack plan with robust
//!    aggregation produces bit-identical records and canonically identical
//!    traces across 1/2/8 worker threads, on both execution substrates.
//! 3. **Attacks compose with faults.** A crashed attacker builds no
//!    messages, so it injects nothing while down — checked structurally on
//!    the trace.
//! 4. **`run_diff` localizes an attacker.** Toggling one attacker on an
//!    otherwise identical run first diverges at an `AttackInject` event.
//! 5. **The golden adversarial trace reproduces bit-for-bit** and satisfies
//!    the `trace_report --check` structural contract (parses clean, time
//!    monotone, bracketed by RunStart/RunEnd).
//! 6. **Unsupported combinations are rejected at build time.** A strategy
//!    whose update cannot be re-ordered as an average (PowerGossip) plus a
//!    robust rule is a configuration error, not a silent fallback.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{Jwins, JwinsConfig, PowerGossip, PowerGossipConfig};
use jwins::strategy::ShareStrategy;
use jwins::JwinsError;
use jwins_adversary::{AttackBehavior, AttackPlan, AttackWindow, Robust};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_metrics::diff::TraceDiff;
use jwins_nn::models::mlp_classifier;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;
use jwins_topology::repair::RepairPolicy;
use jwins_trace::{MemorySink, TraceEvent};
use std::path::PathBuf;

const NODES: usize = 8;

/// The chaos workload of `tests/parallel_determinism.rs`: crashes, a
/// rejoin, staleness decay, repair, stragglers and mid-round checkpoints.
fn chaos_config(threads: usize) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![
            FaultOutage {
                rejoin: RejoinMode::Resync,
                ..FaultOutage::new(1, 2.5, 3.0)
            },
            FaultOutage::new(3, 7.5, f64::INFINITY),
        ]),
        staleness: StalenessPolicy::decay_after_rounds(1, 0.5),
    };
    cfg.repair = RepairPolicy::DegreePreserving;
    cfg.eval_interval_s = Some(1.5);
    cfg
}

/// Chaos plus adversaries: a quarter of the cluster sign-flips from the
/// start and the mix is defended with a trimmed mean deep enough to
/// actually trim at degree 3 (`floor(0.34 * 3) = 1` per side).
fn byz_config(threads: usize) -> TrainConfig {
    let mut cfg = chaos_config(threads);
    cfg.attack = AttackPlan::RandomFraction {
        fraction: 0.25,
        from_s: 0.0,
        until_s: f64::INFINITY,
        behavior: AttackBehavior::SignFlip,
    };
    cfg.robust = Robust::TrimmedMean { trim: 0.34 };
    cfg
}

fn run(cfg: TrainConfig, memory: Option<MemorySink>) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    let mut builder = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            let strategy: Box<dyn ShareStrategy> =
                Box::new(Jwins::new(JwinsConfig::paper_default(), 100 + node as u64));
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), strategy)
        });
    if let Some(memory) = memory {
        builder = builder.trace_sink(Box::new(memory));
    }
    builder.build().unwrap().run().unwrap()
}

fn canonical(memory: &MemorySink) -> Vec<TraceEvent> {
    jwins_trace::replay::canonicalize(&memory.events())
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/trace_byzantine_golden.jsonl")
}

/// An empty attack plan plus `Robust::None` is bit-identical to a run that
/// never mentions either field, at 1/2/8 worker threads — and no record
/// reports adversarial activity.
#[test]
fn empty_plan_and_no_rule_are_a_bit_noop() {
    let baseline = run(chaos_config(1), None);
    assert!(
        baseline.records.last().is_some_and(|r| r.crashes >= 2),
        "non-degenerate workload"
    );
    for threads in [1usize, 2, 8] {
        let mut cfg = chaos_config(threads);
        // Explicitly empty, not merely defaulted: the expansion and the
        // per-event timeline queries still run, and must change nothing.
        cfg.attack = AttackPlan::Scripted(Vec::new());
        cfg.robust = Robust::None;
        let noop = run(cfg, None);
        baseline.assert_bit_identical(
            &noop,
            &format!("defaults/1-thread vs empty-plan/{threads}-thread"),
        );
        for r in &noop.records {
            assert_eq!(r.attacks_injected, 0, "no-op plan injected");
            assert_eq!(r.mass_clipped, 0.0, "no-op rule clipped");
        }
    }
}

/// A seeded attack under robust aggregation is bit-identical across worker
/// thread counts — records and canonical traces alike — and the records
/// report the adversarial activity.
#[test]
fn attacked_runs_are_thread_invariant() {
    let sink1 = MemorySink::new();
    let base = run(byz_config(1), Some(sink1.clone()));
    let last = base.records.last().expect("evaluated");
    assert!(last.attacks_injected > 0, "attack plan never fired");
    assert!(last.mass_clipped > 0.0, "trimmed mean never trimmed");
    let events1 = canonical(&sink1);
    assert!(
        events1
            .iter()
            .any(|e| matches!(e, TraceEvent::AttackInject { .. })),
        "trace carries the injections"
    );
    assert!(
        events1
            .iter()
            .any(|e| matches!(e, TraceEvent::RobustClip { .. })),
        "trace carries the clips"
    );
    for threads in [2usize, 8] {
        let sink = MemorySink::new();
        let other = run(byz_config(threads), Some(sink.clone()));
        base.assert_bit_identical(&other, &format!("attacked 1-thread vs {threads}-thread"));
        assert_eq!(
            events1,
            canonical(&sink),
            "attacked canonical trace differs at {threads} threads"
        );
    }
}

/// The same invariance on the bulk-synchronous substrate, where injection
/// happens at the round barrier instead of per-event.
#[test]
fn attacked_sync_runs_are_thread_invariant() {
    let config = |threads: usize| {
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = 5;
        cfg.lr = 0.1;
        cfg.eval_every = 1;
        cfg.threads = threads;
        cfg.attack = AttackPlan::Scripted(vec![
            AttackWindow::forever(2, AttackBehavior::Scale { factor: -6.0 }),
            AttackWindow::forever(5, AttackBehavior::Garbage { std: 3.0 }),
        ]);
        cfg.robust = Robust::NormClip { tau: 1.0 };
        cfg
    };
    let base = run(config(1), None);
    let last = base.records.last().expect("evaluated");
    assert!(last.attacks_injected > 0, "sync substrate never injected");
    assert!(last.mass_clipped > 0.0, "norm clip never fired");
    for threads in [2usize, 8] {
        let other = run(config(threads), None);
        base.assert_bit_identical(&other, &format!("sync attacked 1 vs {threads} threads"));
    }
}

/// A crashed attacker injects nothing while it is down: injection happens
/// at message-build time, and a dead node builds no messages.
#[test]
fn crashed_attacker_injects_nothing_while_down() {
    let mut cfg = chaos_config(1);
    // Both fault victims attack permanently: node 1 crashes over
    // [2.5 s, 3.0 s) and rejoins; node 3 dies at 7.5 s for good.
    cfg.attack = AttackPlan::Scripted(vec![
        AttackWindow::forever(1, AttackBehavior::SignFlip),
        AttackWindow::forever(3, AttackBehavior::SignFlip),
    ]);
    cfg.robust = Robust::TrimmedMean { trim: 0.34 };
    let memory = MemorySink::new();
    let _ = run(cfg, Some(memory.clone()));
    let events = memory.events();

    // Reconstruct each node's down intervals from the lifecycle events.
    let mut down: Vec<(u32, u64, u64)> = Vec::new(); // (node, from_ns, until_ns)
    let mut open: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for e in &events {
        match *e {
            TraceEvent::NodeCrash { t_ns, node, .. } => {
                open.insert(node, t_ns);
            }
            TraceEvent::NodeRejoin { t_ns, node, .. } => {
                let from = open.remove(&node).expect("rejoin without crash");
                down.push((node, from, t_ns));
            }
            _ => {}
        }
    }
    for (node, from) in open {
        down.push((node, from, u64::MAX));
    }
    assert!(
        down.iter().any(|&(n, _, _)| n == 1) && down.iter().any(|&(n, _, _)| n == 3),
        "both scripted outages occurred"
    );

    let mut injections = [0u64; NODES];
    for e in &events {
        if let TraceEvent::AttackInject { t_ns, node, .. } = *e {
            injections[node as usize] += 1;
            assert!(
                !down
                    .iter()
                    .any(|&(n, from, until)| n == node && from <= t_ns && t_ns < until),
                "node {node} injected at {t_ns} ns while down"
            );
        }
    }
    assert!(injections[1] > 0, "node 1 attacks around its outage");
    // Node 3 injects before its crash at 7.5 s, then never again.
    assert!(injections[3] > 0, "node 3 attacks before dying");
    let crash3 = down
        .iter()
        .find(|&&(n, _, _)| n == 3)
        .map(|&(_, from, _)| from)
        .unwrap();
    assert!(
        events.iter().all(|e| !matches!(
            *e,
            TraceEvent::AttackInject { t_ns, node: 3, .. } if t_ns >= crash3
        )),
        "a permanently dead attacker stays silent"
    );
}

/// Toggling a single attacker on an otherwise identical run first diverges
/// at that attacker's `AttackInject` — everything up to the injection is
/// untouched, so `run_diff` points straight at the adversary.
#[test]
fn toggling_one_attacker_first_diverges_at_attack_inject() {
    let honest_sink = MemorySink::new();
    let _ = run(chaos_config(1), Some(honest_sink.clone()));
    let mut attacked = chaos_config(1);
    // Node 2 is fault-free in the chaos plan: the divergence is purely
    // adversarial, not a fault interaction.
    attacked.attack =
        AttackPlan::Scripted(vec![AttackWindow::forever(2, AttackBehavior::SignFlip)]);
    let attacked_sink = MemorySink::new();
    let _ = run(attacked, Some(attacked_sink.clone()));

    let a = honest_sink.events();
    let b = attacked_sink.events();
    let diff = TraceDiff::compare(&a, &b);
    let index = diff.divergence.expect("an attacker must move the trace");
    assert!(index > 0, "setup events stay identical");
    assert_eq!(
        b[index].kind_name(),
        "AttackInject",
        "first divergent event is the injection, got {} at {index}",
        b[index].kind_name()
    );
    assert!(
        matches!(b[index], TraceEvent::AttackInject { node: 2, .. }),
        "the injection names the toggled attacker"
    );
    assert_eq!(&a[..index], &b[..index], "prefix untouched by the toggle");
}

/// The checked-in golden adversarial trace reproduces exactly, and it
/// passes the same structural checks `trace_report --check` applies: every
/// line parses, virtual time is monotone, and the run is bracketed.
#[test]
fn golden_fixture_matches_fresh_run() {
    let path = golden_path();
    let parsed = jwins_trace::read_jsonl(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with \
             `cargo test --test byzantine -- --ignored regenerate`",
            path.display()
        )
    });
    assert!(parsed.is_clean(), "golden fixture has unparsable lines");
    assert!(
        matches!(parsed.events.first(), Some(TraceEvent::RunStart { .. }))
            && matches!(parsed.events.last(), Some(TraceEvent::RunEnd { .. })),
        "fixture is bracketed by RunStart/RunEnd"
    );
    let mut clock = 0u64;
    for event in &parsed.events {
        assert!(event.t_ns() >= clock, "virtual time runs backwards");
        clock = event.t_ns();
    }
    // The new kinds are actually present — the fixture exercises the
    // parse path `trace_report --check` takes for them.
    for kind in ["AttackInject", "RobustClip"] {
        assert!(
            parsed.events.iter().any(|e| e.kind_name() == kind),
            "fixture carries no {kind} events"
        );
    }
    let fresh_sink = MemorySink::new();
    let _ = run(byz_config(1), Some(fresh_sink.clone()));
    let diff = TraceDiff::compare(&parsed.events, &fresh_sink.events());
    assert!(
        diff.is_identical(),
        "fresh adversarial run diverged from the golden fixture at {:?} — if \
         the engine change was intended, regenerate with \
         `cargo test --test byzantine -- --ignored regenerate`:\n{}",
        diff.divergence,
        diff.render(3)
    );
}

/// Robust aggregation requires a strategy whose update is an average;
/// PowerGossip's low-rank gossip is not, and the builder says so instead of
/// silently skipping the defense.
#[test]
fn robust_rule_with_unsupported_strategy_is_rejected_at_build() {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    let mut cfg = TrainConfig::quick_test();
    cfg.robust = Robust::Median;
    let err = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            let strategy: Box<dyn ShareStrategy> =
                Box::new(PowerGossip::new(PowerGossipConfig::global(1), node, 7));
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), strategy)
        })
        .build()
        .map(|_| ())
        .expect_err("PowerGossip cannot honor a robust rule");
    assert!(
        matches!(err, JwinsError::InvalidConfig(ref what) if what.contains("robust")),
        "wrong error: {err}"
    );
}

/// Rewrites the golden adversarial fixture from the current engine. Run
/// explicitly after an intended behaviour change:
/// `cargo test --test byzantine -- --ignored regenerate`.
#[test]
#[ignore = "fixture generator, not a test"]
fn regenerate() {
    let sink = MemorySink::new();
    let _ = run(byz_config(1), Some(sink.clone()));
    let events = canonical(&sink);
    let mut text = String::new();
    for event in &events {
        text.push_str(&serde::json::to_string(event));
        text.push('\n');
    }
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, text).unwrap();
    println!("wrote {} ({} events)", path.display(), events.len());
}
