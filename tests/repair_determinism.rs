//! Determinism contract of fault-aware topology repair.
//!
//! Three guarantees (see `jwins::engine`'s module docs and
//! `jwins_topology::repair`):
//!
//! 1. `RepairPolicy::None` is a strict no-op: under an active `FaultPlan`
//!    an explicit `None` produces the byte-for-byte record stream of a
//!    config that never mentions repair (the pre-repair engine surface),
//!    with every repair counter pinned to zero.
//! 2. Active repair policies are thread-invariant: the same run at
//!    `threads` ∈ {1, 2, 8} yields bit-identical `RoundRecord` streams —
//!    repair resolution and edge invalidation live entirely in the
//!    sequential propose/commit phases.
//! 3. Repair pays: under churn, no-repair spends strictly more bytes per
//!    unit of final accuracy than degree-preserving repair (the `ext_repair`
//!    bench measures the same at 64 nodes).

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::FullSharing;
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, RejoinMode};
use jwins_nn::models::mlp_classifier;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;
use jwins_topology::peer_sampling::{PeerSampling, PeerSamplingConfig};
use jwins_topology::repair::RepairPolicy;

const NODES: usize = 8;

/// A crash+rejoin plus a permanent crash over stragglers: every repair
/// path fires (shrink, re-admit, permanent hole).
fn chaos_config(threads: usize, repair: RepairPolicy) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![
            FaultOutage {
                rejoin: RejoinMode::Resync,
                ..FaultOutage::new(1, 2.5, 3.0)
            },
            FaultOutage::new(3, 4.5, f64::INFINITY),
        ]),
        ..FaultConfig::default()
    };
    cfg.repair = repair;
    cfg
}

fn run_static(cfg: TrainConfig) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn policy_none_matches_the_pre_repair_config_surface_bitwise() {
    // A config that never mentions repair (the pre-repair surface) ...
    let untouched = chaos_config(1, RepairPolicy::default());
    // ... versus one that sets the policy explicitly to None.
    let explicit = chaos_config(1, RepairPolicy::None);
    let a = run_static(untouched);
    let b = run_static(explicit);
    a.assert_bit_identical(&b, "default vs explicit RepairPolicy::None");
    // The workload is genuinely faulty, yet no repair counter moves.
    let last = a.records.last().expect("records recorded");
    assert!(last.crashes >= 2, "crashes replayed: {}", last.crashes);
    assert!(last.rejoins >= 1, "rejoins replayed: {}", last.rejoins);
    for r in &a.records {
        assert_eq!(r.edges_rewired, 0, "None must never rewire");
        assert_eq!(r.bandwidth_saved_bytes, 0, "None must never save");
    }
}

#[test]
fn degree_preserving_repair_is_identical_at_1_2_and_8_threads() {
    let t1 = run_static(chaos_config(1, RepairPolicy::DegreePreserving));
    let t2 = run_static(chaos_config(2, RepairPolicy::DegreePreserving));
    let t8 = run_static(chaos_config(8, RepairPolicy::DegreePreserving));
    // Non-degenerate: repair actually fired.
    let last = t1.records.last().expect("records recorded");
    assert!(last.edges_rewired > 0, "no edges rewired — vacuous test");
    assert!(
        last.bandwidth_saved_bytes > 0,
        "no bytes saved — vacuous test"
    );
    assert!(last.crashes >= 2 && last.rejoins >= 1);
    t1.assert_bit_identical(&t2, "degree-preserving threads 1 vs 2");
    t1.assert_bit_identical(&t8, "degree-preserving threads 1 vs 8");
}

#[test]
fn resample_repair_over_peer_sampling_is_thread_invariant() {
    // The peer-sampling provider exercises the live-aware `topology_for`
    // override: crashed peers are filtered out of the views before the
    // draw, then the resample policy patches connectivity.
    let run = |threads: usize| {
        let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
        let cfg = chaos_config(threads, RepairPolicy::PeerSamplingResample);
        Trainer::builder(cfg)
            .topology(PeerSampling::new(NODES, PeerSamplingConfig::default(), 11))
            .test_set(data.test)
            .nodes(data.node_train, |_| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap()
            .run()
            .unwrap()
    };
    let t1 = run(1);
    let t8 = run(8);
    let last = t1.records.last().expect("records recorded");
    assert!(last.crashes >= 2, "faults replayed under peer sampling");
    t1.assert_bit_identical(&t8, "peer-sampling resample threads 1 vs 8");
}

#[test]
fn no_repair_wastes_strictly_more_bytes_per_accuracy_under_churn() {
    // Permanent crashes make the waste unbounded for the no-repair run:
    // survivors keep paying for edges into dead hosts round after round.
    let plan = FaultPlan::Scripted(vec![
        FaultOutage::new(2, 2.5, f64::INFINITY),
        FaultOutage::new(5, 3.5, f64::INFINITY),
    ]);
    let run = |repair: RepairPolicy| {
        let mut cfg = chaos_config(1, repair);
        cfg.rounds = 8;
        cfg.faults = FaultConfig {
            plan: plan.clone(),
            ..FaultConfig::default()
        };
        run_static(cfg)
    };
    let none = run(RepairPolicy::None);
    let repaired = run(RepairPolicy::DegreePreserving);
    let cost = |r: &RunResult| {
        let last = r.records.last().expect("evaluated");
        assert!(last.test_accuracy > 0.0, "run learned nothing");
        last.cum_bytes_per_node / last.test_accuracy
    };
    assert!(
        cost(&none) > cost(&repaired),
        "no-repair must waste more bytes per accuracy: {} vs {}",
        cost(&none),
        cost(&repaired)
    );
}
