//! The Figure-2 property: sparsifying in the wavelet domain loses less than
//! sparsifying in the Fourier domain, which loses less than random sampling
//! in the parameter domain.
//!
//! The paper measures cumulative reconstruction MSE of a single-node model
//! sparsified at a 10% budget during training. Here the property is pinned
//! down directly on trained-model-like vectors: reconstruct from the top 10%
//! of coefficients per domain and compare errors.

use jwins::sparsify::top_k_indices;
use jwins_fourier::{fft_real, ifft_to_real, Complex};
use jwins_nn::models::mlp_classifier;
use jwins_nn::Model;
use jwins_wavelet::{Dwt, Wavelet, WaveletCoeffs};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn mse(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (f64::from(*x) - f64::from(*y)).powi(2))
        .sum::<f64>()
        / a.len() as f64
}

/// Keep the top-k magnitude wavelet coefficients, reconstruct.
fn wavelet_reconstruct(x: &[f32], keep: usize) -> Vec<f32> {
    let dwt = Dwt::new(Wavelet::sym2(), 4).expect("levels > 0");
    let coeffs = dwt.forward(x);
    let topk = top_k_indices(&coeffs.data, keep);
    let mut sparse = vec![0.0f32; coeffs.data.len()];
    for &i in &topk {
        sparse[i as usize] = coeffs.data[i as usize];
    }
    let wrapped = WaveletCoeffs::from_parts(sparse, coeffs.layout().clone()).expect("same layout");
    dwt.inverse(&wrapped).expect("layout matches")
}

/// Keep the top-k magnitude Fourier coefficients, reconstruct.
fn fft_reconstruct(x: &[f32], keep: usize) -> Vec<f32> {
    let spec = fft_real(x);
    let mags: Vec<f32> = spec.iter().map(|c| c.abs() as f32).collect();
    let topk = top_k_indices(&mags, keep);
    let mut sparse = vec![Complex::ZERO; spec.len()];
    for &i in &topk {
        sparse[i as usize] = spec[i as usize];
    }
    ifft_to_real(&sparse)
}

/// Keep a random k-subset of raw parameters (the sparsification baseline).
fn random_reconstruct(x: &[f32], keep: usize, seed: u64) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let idx = rand::seq::index::sample(&mut rng, x.len(), keep);
    let mut out = vec![0.0f32; x.len()];
    for i in idx {
        out[i] = x[i];
    }
    out
}

/// A realistic model vector: train an MLP briefly so the parameter vector
/// has the smooth layered structure real checkpoints have.
fn trained_model_vector(seed: u64) -> Vec<f32> {
    let mut model = mlp_classifier(16, &[32, 16], 4, seed);
    let batch: Vec<(Vec<f32>, usize)> = (0..32)
        .map(|i| {
            let x: Vec<f32> = (0..16)
                .map(|k| ((i * 16 + k) as f32 * 0.13).sin())
                .collect();
            (x, i % 4)
        })
        .collect();
    let mut params = model.params();
    for _ in 0..30 {
        model.set_params(&params);
        let (_, grad) = model.loss_and_grad(&batch);
        for (p, g) in params.iter_mut().zip(&grad) {
            *p -= 0.1 * g;
        }
    }
    params
}

#[test]
fn wavelet_beats_fft_beats_random_sampling() {
    let mut wavelet_total = 0.0;
    let mut fft_total = 0.0;
    let mut random_total = 0.0;
    for seed in 0..5u64 {
        let x = trained_model_vector(seed);
        let keep = x.len() / 10; // the paper's 10% budget
        wavelet_total += mse(&x, &wavelet_reconstruct(&x, keep));
        fft_total += mse(&x, &fft_reconstruct(&x, keep));
        random_total += mse(&x, &random_reconstruct(&x, keep, seed));
    }
    assert!(
        wavelet_total < fft_total,
        "wavelet {wavelet_total:.5} should beat FFT {fft_total:.5}"
    );
    assert!(
        fft_total < random_total,
        "FFT {fft_total:.5} should beat random sampling {random_total:.5}"
    );
}

#[test]
fn reconstruction_error_decreases_with_budget() {
    let x = trained_model_vector(7);
    let budgets = [x.len() / 20, x.len() / 10, x.len() / 4, x.len() / 2];
    let errors: Vec<f64> = budgets
        .iter()
        .map(|&k| mse(&x, &wavelet_reconstruct(&x, k)))
        .collect();
    for pair in errors.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "error should be monotone in budget: {errors:?}"
        );
    }
    // Full budget reconstructs (numerically) exactly.
    let full = mse(&x, &wavelet_reconstruct(&x, x.len() + 8));
    assert!(full < 1e-9, "full-budget reconstruction error {full}");
}

#[test]
fn smooth_vectors_compress_better_than_noise() {
    // Wavelet TopK should exploit smoothness: a smooth vector reconstructs
    // far better than white noise at the same budget.
    let n = 1024;
    let smooth: Vec<f32> = (0..n).map(|i| (i as f32 * 0.02).sin()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let noise: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let keep = n / 10;
    let e_smooth = mse(&smooth, &wavelet_reconstruct(&smooth, keep));
    let e_noise = mse(&noise, &wavelet_reconstruct(&noise, keep));
    assert!(
        e_smooth * 10.0 < e_noise,
        "smooth {e_smooth} vs noise {e_noise}"
    );
}
