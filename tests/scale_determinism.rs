//! Shard-count and ordering invariance of the sharded event engine.
//!
//! `TrainConfig::shards` routes events to per-node-group heaps behind a
//! global merge; the contract is that it is *purely structural*: any shard
//! count replays the single-heap schedule bit for bit under
//! `Ordering::Strict`, at any thread count. These tests replay one
//! fault-laden event-driven workload across the {threads} × {shards} grid
//! and compare the full `RoundRecord` streams, then check that
//! `Ordering::Window` — the only mode allowed to reorder — still converges
//! to the same model when its skew bound is far below the mix deadline.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::FullSharing;
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_nn::models::mlp_classifier;
use jwins_sim::{HeterogeneityProfile, Ordering};
use jwins_topology::dynamic::StaticTopology;

const NODES: usize = 12;

/// Stragglers (wide batches), a crash+rejoin and mid-round checkpoints:
/// the queue carries every event class, so a routing bug in any of them
/// would break the comparison.
fn scale_config(threads: usize, shards: usize, ordering: Ordering) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 5;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.shards = shards;
    cfg.ordering = ordering;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![FaultOutage {
            rejoin: RejoinMode::Resync,
            ..FaultOutage::new(2, 2.5, 3.0)
        }]),
        staleness: StalenessPolicy::drop_after_rounds(1),
    };
    cfg.eval_interval_s = Some(1.5);
    cfg
}

fn run(threads: usize, shards: usize, ordering: Ordering) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    Trainer::builder(scale_config(threads, shards, ordering))
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |_node| {
            (
                mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn strict_runs_are_identical_across_threads_and_shards() {
    // The single-heap, single-threaded run is the reference schedule.
    let base = run(1, 0, Ordering::Strict);
    let last = base.records.last().expect("records recorded");
    assert!(last.crashes >= 1, "crashes replayed: {}", last.crashes);
    assert!(last.rejoins >= 1, "rejoins replayed: {}", last.rejoins);
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 4, 16] {
            let result = run(threads, shards, Ordering::Strict);
            base.assert_bit_identical(
                &result,
                &format!("threads-1/shards-0 vs threads-{threads}/shards-{shards}"),
            );
        }
    }
}

#[test]
fn window_ordering_converges_alongside_strict() {
    // A 10 ms skew against a 1 s compute time: mix deadlines cannot move,
    // so the relaxed schedule must reach the same accuracy neighbourhood.
    let strict = run(2, 4, Ordering::Strict);
    let window = run(
        2,
        4,
        Ordering::Window {
            max_skew_ns: 10_000_000,
        },
    );
    let acc = |r: &RunResult| {
        r.records
            .last()
            .map(|rec| rec.test_accuracy)
            .expect("final record")
    };
    let (sa, wa) = (acc(&strict), acc(&window));
    assert!(
        (sa - wa).abs() <= 0.05,
        "window accuracy {wa:.4} drifted from strict {sa:.4}"
    );
    // Window is the same run when the schedule never has skew to exploit:
    // with zero-width batches forced by a zero skew it must equal strict.
    let zero = run(2, 4, Ordering::Window { max_skew_ns: 1 });
    strict.assert_bit_identical(&zero, "strict vs 1ns-window");
}
