//! Real-backend integration: the same `TrainConfig` on OS threads.
//!
//! The flagship check of the transport abstraction: a 16-node cluster runs
//! end to end on the channel backend (one OS thread per node, framed
//! messages over real channels, wall-clock time), then the *same* config +
//! seed replays on the simulated backend under the latency profile the
//! real transport measured, and the two accuracy trajectories must agree
//! within the declared tolerance ([`jwins::crosscheck`]).

use jwins::config::{ChannelTransportConfig, ExecutionMode, TrainConfig, TransportKind};
use jwins::crosscheck::{self, DEFAULT_ACCURACY_TOLERANCE};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{FullSharing, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::mlp_classifier;
use jwins_topology::dynamic::StaticTopology;

const NODES: usize = 16;

fn base_config(rounds: usize) -> TrainConfig {
    let mut c = TrainConfig::new(rounds);
    c.local_steps = 2;
    c.batch_size = 8;
    c.lr = 0.1;
    c.eval_every = 2;
    c.eval_test_samples = 64;
    c.threads = 2;
    c
}

/// A generous wait budget so an in-process message never misses its round
/// even on a loaded CI machine.
fn channel_kind() -> TransportKind {
    TransportKind::Channel(ChannelTransportConfig {
        mix_wait_ms: 2_000,
        poll_us: 100,
    })
}

/// Builds and runs a `NODES`-node FullSharing cluster. Data, models,
/// topology and strategy seeds are all derived from constants, so two
/// calls construct identical clusters — only the transport differs.
fn run_full_sharing(config: TrainConfig) -> RunResult {
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, NODES, 2, 7);
    let trainer = Trainer::builder(config)
        .topology(StaticTopology::random_regular(NODES, 4, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |_| {
            (
                mlp_classifier(img.channels * img.height * img.width, &[16], img.classes, 7),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap();
    trainer.run().unwrap()
}

#[test]
fn sixteen_node_channel_run_matches_the_sim_oracle() {
    let rounds = 6;
    let mut real_cfg = base_config(rounds);
    real_cfg.transport = channel_kind();
    let real = run_full_sharing(real_cfg);

    assert_eq!(real.rounds_run, rounds, "all rounds completed on threads");
    assert!(
        real.measured_latency_s.is_some(),
        "real backend reports its measured flight latency"
    );
    let evals: Vec<usize> = real.round_records().map(|r| r.round).collect();
    assert_eq!(evals, vec![1, 3, 5], "eval cadence survives the backend");
    for record in real.round_records() {
        assert_eq!(record.per_node_accuracy.len(), NODES);
    }

    // Replay the measured profile through the sim oracle. In-process
    // channel latency is microseconds against a ~1 s modelled compute
    // round, so the profile clamps to degenerate and the oracle is the
    // plain barrier sim; a slower (future, socketed) backend would flip
    // this into an event-driven replay instead.
    let mut oracle_cfg = base_config(rounds);
    let profile =
        crosscheck::oracle_profile(real.measured_latency_s, oracle_cfg.time_model.compute_s);
    assert!(
        profile.is_degenerate(),
        "in-process latency must clamp to instant links (measured {:?})",
        real.measured_latency_s
    );
    if !profile.is_degenerate() {
        oracle_cfg.execution = ExecutionMode::EventDriven;
        oracle_cfg.heterogeneity = profile;
    }
    let oracle = run_full_sharing(oracle_cfg);

    let check = crosscheck::compare_to_oracle(&real, &oracle, DEFAULT_ACCURACY_TOLERANCE);
    assert_eq!(check.compared, 3, "every eval record aligned");
    assert!(
        check.within_tolerance(),
        "accuracy trajectory diverged from the oracle: {check:?}"
    );
    assert_eq!(
        check.traffic_gap_ratio, 0.0,
        "fixed-size strategy must meter identical bytes on both backends: {check:?}"
    );
    assert_eq!(check.rounds_real, check.rounds_oracle);
}

#[test]
fn channel_run_stops_early_on_target_accuracy() {
    let mut cfg = base_config(8);
    cfg.transport = channel_kind();
    cfg.target_accuracy = Some(0.0); // any evaluation hits it
    let result = run_full_sharing(cfg);
    let hit = result.reached_target.expect("target must be reached");
    assert_eq!(hit.round, 1, "first eval round triggers the stop");
    assert_eq!(result.rounds_run, 2, "run stops after the hit");
}

#[test]
fn jwins_strategy_trains_on_the_channel_backend() {
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, 4, 2, 7);
    let mut cfg = base_config(4);
    cfg.eval_every = 0; // final eval only
    cfg.transport = channel_kind();
    let trainer = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(4, 2, 1).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                mlp_classifier(img.channels * img.height * img.width, &[16], img.classes, 7),
                Box::new(Jwins::new(JwinsConfig::paper_default(), 1000 + node as u64))
                    as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap();
    let result = trainer.run().unwrap();
    assert_eq!(result.rounds_run, 4);
    let last = result.final_record().expect("final eval present");
    assert!(last.test_accuracy > 0.0);
    assert!(
        last.mean_alpha < 1.0,
        "sparsified sharing keeps its cut-off on the real backend"
    );
    assert!(result.measured_latency_s.is_some());
}

#[test]
fn channel_transport_rejects_virtual_time_features_at_build() {
    let mut cfg = base_config(2);
    cfg.transport = channel_kind();
    cfg.execution = ExecutionMode::EventDriven;
    assert!(
        cfg.validate().is_err(),
        "event-driven execution needs the virtual clock"
    );

    let mut cfg = base_config(2);
    cfg.transport = channel_kind();
    cfg.message_loss = 0.1;
    assert!(cfg.validate().is_err(), "loss model is a sim construct");

    let mut cfg = base_config(2);
    cfg.transport = TransportKind::Channel(ChannelTransportConfig {
        mix_wait_ms: 0,
        poll_us: 100,
    });
    assert!(cfg.validate().is_err(), "zero wait budget cannot mix");

    let mut cfg = base_config(2);
    cfg.transport = channel_kind();
    assert!(cfg.validate().is_ok(), "the supported combination passes");
}
