//! Integration tests for the fault-injection & bounded-staleness subsystem.
//!
//! The hard guarantees:
//!
//! 1. a **degenerate fault config** (no faults, infinite TTL, no cap) is a
//!    strict no-op: event-driven runs reproduce the pre-fault-engine results
//!    **bit-for-bit**, both against a default config under real
//!    heterogeneity and against the bulk-synchronous engine under a
//!    degenerate profile (the `tests/event_driven.rs` contract);
//! 2. mid-round crashes kill in-flight messages, recoveries rejoin (warm or
//!    re-synced), and the whole thing stays deterministic;
//! 3. the staleness policy is airtight: no message older than the cap is
//!    ever mixed (verified by a round-stamping probe strategy), TTL drops
//!    are metered separately from link-loss drops, and down-weighting moves
//!    mass to the self-weight instead of losing it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::FullSharing;
use jwins::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{CapAction, FaultConfig, FaultOutage, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_net::ByteBreakdown;
use jwins_nn::models::mlp_classifier;
use jwins_sim::{ComputeProfile, HeterogeneityProfile, LinkProfile};
use jwins_topology::dynamic::StaticTopology;

fn straggler_profile() -> HeterogeneityProfile {
    HeterogeneityProfile::stragglers(0.25, 4.0, 0.002, 1.0e6)
}

fn base_config(heterogeneity: HeterogeneityProfile, faults: FaultConfig) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 8;
    cfg.lr = 0.1;
    cfg.eval_every = 2;
    cfg.time_model.compute_s = 1.0;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.heterogeneity = heterogeneity;
    cfg.faults = faults;
    cfg
}

fn run_full_sharing(cfg: TrainConfig, nodes: usize) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), nodes, 2, 11);
    Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(nodes, 2, 13).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

fn assert_bitwise_equal(a: &RunResult, b: &RunResult) {
    // The canonical full-strength comparison lives on RunResult so every
    // determinism test and bench stays in lockstep as fields are added.
    a.assert_bit_identical(b, "fault-injection");
}

/// An explicitly-spelled-out no-op: empty script, infinite TTL, no cap.
fn degenerate_faults() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan::Scripted(Vec::new()),
        staleness: StalenessPolicy {
            ttl_s: Some(f64::INFINITY),
            max_age_rounds: None,
            max_age_s: Some(f64::INFINITY),
            over_cap: CapAction::Drop,
        },
    }
}

/// Acceptance criterion: the degenerate fault config reproduces the
/// fault-engine-free event-driven results bit-for-bit, under real
/// heterogeneity.
#[test]
fn degenerate_fault_config_is_a_bitwise_noop() {
    let plain = run_full_sharing(base_config(straggler_profile(), FaultConfig::default()), 8);
    let spelled = run_full_sharing(base_config(straggler_profile(), degenerate_faults()), 8);
    assert!(
        plain.final_record().unwrap().mean_staleness_s > 0.0,
        "profile must actually create staleness for the comparison to bite"
    );
    assert_bitwise_equal(&plain, &spelled);
}

/// The `tests/event_driven.rs` contract still holds through the fault
/// engine: degenerate profile + degenerate fault config == bulk-synchronous,
/// bit for bit.
#[test]
fn degenerate_fault_config_still_matches_sync_bitwise() {
    let mut sync_cfg = base_config(HeterogeneityProfile::default(), FaultConfig::default());
    sync_cfg.execution = ExecutionMode::BulkSynchronous;
    let sync = run_full_sharing(sync_cfg, 6);
    let event = run_full_sharing(
        base_config(HeterogeneityProfile::default(), degenerate_faults()),
        6,
    );
    assert_eq!(sync.rounds_run, event.rounds_run);
    assert_eq!(sync.total_traffic, event.total_traffic);
    assert_eq!(sync.records.len(), event.records.len());
    for (s, e) in sync.records.iter().zip(&event.records) {
        assert_eq!(s.round, e.round);
        assert_eq!(s.train_loss.to_bits(), e.train_loss.to_bits());
        assert_eq!(s.test_loss.to_bits(), e.test_loss.to_bits());
        assert_eq!(s.test_accuracy.to_bits(), e.test_accuracy.to_bits());
        assert_eq!(s.cum_bytes_per_node, e.cum_bytes_per_node);
        assert_eq!(e.mean_staleness_s, 0.0);
        assert_eq!(e.crashes, 0);
        assert_eq!(e.messages_expired, 0);
        assert_eq!(e.downweight_mass, 0.0);
    }
}

#[test]
fn correlated_mid_round_crashes_kill_messages_and_rejoin() {
    let faults = FaultConfig {
        plan: FaultPlan::CorrelatedOutage {
            fraction: 0.25,
            at_s: 2.5, // mid-round for both fast (1 s) and slow (4 s) nodes
            down_s: 3.0,
            rejoin: RejoinMode::Warm,
        },
        staleness: StalenessPolicy::default(),
    };
    let run = || run_full_sharing(base_config(straggler_profile(), faults.clone()), 8);
    let a = run();
    // All rounds still complete: crashed nodes abandon their round in
    // progress and resume after recovery.
    assert_eq!(a.rounds_run, 8);
    let last = a.final_record().unwrap();
    assert_eq!(last.crashes, 2, "a quarter of 8 nodes crash");
    assert_eq!(last.rejoins, 2);
    // Deliveries to (or from) dead nodes are destroyed and metered as drops.
    assert!(
        a.total_traffic.messages_dropped > 0,
        "crashes must kill in-flight messages"
    );
    assert!(
        a.total_traffic.bytes_received < a.total_traffic.bytes_sent,
        "kills must show up as a sent/received gap"
    );
    // The cluster still trains through the outage.
    assert!(last.test_accuracy > 0.25, "accuracy {}", last.test_accuracy);
    // Fault injection is a pure function of the seed.
    let b = run();
    assert_bitwise_equal(&a, &b);
}

#[test]
fn warm_and_resync_rejoins_diverge() {
    let faults = |rejoin: RejoinMode| FaultConfig {
        plan: FaultPlan::Scripted(vec![FaultOutage {
            node: 3,
            at_s: 2.2,
            down_s: 2.0,
            rejoin,
        }]),
        staleness: StalenessPolicy::default(),
    };
    let warm = run_full_sharing(
        base_config(straggler_profile(), faults(RejoinMode::Warm)),
        8,
    );
    let resync = run_full_sharing(
        base_config(straggler_profile(), faults(RejoinMode::Resync)),
        8,
    );
    assert_eq!(warm.rounds_run, 8);
    assert_eq!(resync.rounds_run, 8);
    assert_eq!(warm.final_record().unwrap().rejoins, 1);
    // A re-synced node restarts from a peer's model instead of its own, so
    // the trajectories must differ.
    let diverged = warm
        .records
        .iter()
        .zip(&resync.records)
        .any(|(w, r)| w.test_loss.to_bits() != r.test_loss.to_bits());
    assert!(diverged, "rejoin mode must affect the trajectory");
}

#[test]
fn permanent_crash_ends_with_a_final_checkpoint() {
    let faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![FaultOutage::new(2, 1.5, f64::INFINITY)]),
        staleness: StalenessPolicy::default(),
    };
    let result = run_full_sharing(base_config(straggler_profile(), faults), 6);
    // Rounds beyond the dead node's abandonment never complete
    // cluster-wide...
    assert!(result.rounds_run < 6, "rounds_run {}", result.rounds_run);
    // ...but the run still terminates and closes with a checkpoint record
    // reflecting the surviving nodes' trained models.
    let last = result.records.last().expect("a final record");
    assert!(last.checkpoint, "tail record must be a checkpoint");
    assert_eq!(last.crashes, 1);
    assert_eq!(last.rejoins, 0);
    assert!(last.sim_time_s > 0.0);
    // Peers kept transmitting to the dead host; those deliveries are
    // destroyed (there is no recovery to purge them, so the engine does it
    // at the end of the run) and the accounting must show it.
    assert!(
        result.total_traffic.messages_dropped > 0,
        "deliveries to a permanently dead host must be metered as drops"
    );
    assert!(
        result.total_traffic.bytes_received < result.total_traffic.bytes_sent,
        "kills must show up as a sent/received gap"
    );
}

#[test]
fn eval_checkpoints_stop_when_training_ends() {
    // A fault event far beyond the end of training keeps the event queue
    // non-empty for 1000 virtual seconds; the checkpoint cadence must stop
    // with the last training event instead of ticking into that void.
    let faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![FaultOutage::new(1, 1000.0, 5.0)]),
        staleness: StalenessPolicy::default(),
    };
    let mut cfg = base_config(straggler_profile(), faults);
    cfg.eval_interval_s = Some(1.0);
    let result = run_full_sharing(cfg, 6);
    assert_eq!(result.rounds_run, 8);
    let last_round_eval_time = result
        .round_records()
        .last()
        .expect("round evaluations exist")
        .sim_time_s;
    // Training ends around 8 straggler rounds (~32 s + transfers); every
    // checkpoint must sit within one interval of it, not at t≈1000.
    for cp in result.checkpoints() {
        assert!(
            cp.sim_time_s <= last_round_eval_time + 1.0,
            "checkpoint at {} s outlived training ({} s)",
            cp.sim_time_s,
            last_round_eval_time
        );
    }
    assert!(
        result.checkpoints().count() < 60,
        "cadence must not tick until the stray fault event"
    );
}

#[test]
fn ttl_expiry_is_metered_separately_from_drops() {
    // Thin links leave messages in flight long enough to outlive a tight
    // TTL; no lossy links and no faults, so every loss is a staleness loss.
    let slow_links = HeterogeneityProfile {
        compute: ComputeProfile::Uniform,
        links: LinkProfile::Uniform {
            latency_s: 0.02,
            bandwidth_bps: 64_000.0,
        },
    };
    let faults = FaultConfig {
        plan: FaultPlan::None,
        staleness: StalenessPolicy {
            ttl_s: Some(0.5),
            ..StalenessPolicy::default()
        },
    };
    let result = run_full_sharing(base_config(slow_links, faults), 6);
    assert_eq!(result.rounds_run, 8);
    assert!(
        result.total_traffic.messages_expired > 0,
        "tight TTL must expire in-flight messages"
    );
    assert_eq!(
        result.total_traffic.messages_dropped, 0,
        "TTL losses must not masquerade as link drops"
    );
    let last = result.final_record().unwrap();
    assert_eq!(last.messages_expired, result.total_traffic.messages_expired);
}

#[test]
fn decay_downweighting_moves_mass_to_self_weight() {
    let faults = FaultConfig {
        plan: FaultPlan::None,
        staleness: StalenessPolicy::decay_after_rounds(0, 0.7),
    };
    let result = run_full_sharing(base_config(straggler_profile(), faults), 8);
    assert_eq!(result.rounds_run, 8);
    let last = result.final_record().unwrap();
    assert!(
        last.downweight_mass > 0.0,
        "stragglers' stale messages must be down-weighted"
    );
    assert_eq!(
        last.messages_expired, 0,
        "decay keeps messages, it does not drop them"
    );
    assert!(last.test_accuracy > 0.25, "accuracy {}", last.test_accuracy);
}

/// A probe strategy that stamps every message with its round and records the
/// maximum round-age it was ever asked to mix.
#[derive(Debug)]
struct RoundStamp {
    max_mixed_age: Arc<AtomicUsize>,
}

impl ShareStrategy for RoundStamp {
    fn name(&self) -> &'static str {
        "round-stamp"
    }

    fn make_message(&mut self, round: usize, _params: &[f32]) -> jwins::Result<OutMessage> {
        Ok(OutMessage::new(
            (round as u64).to_le_bytes().to_vec(),
            ByteBreakdown {
                payload: 8,
                metadata: 0,
            },
        ))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        _self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> jwins::Result<Vec<f32>> {
        for msg in received {
            let sent_round = u64::from_le_bytes(msg.bytes.try_into().expect("8-byte stamp"));
            let age = round.saturating_sub(sent_round as usize);
            self.max_mixed_age.fetch_max(age, Ordering::Relaxed);
        }
        Ok(params.to_vec())
    }
}

fn run_round_stamp(staleness: StalenessPolicy, rounds: usize) -> (RunResult, usize) {
    let nodes = 8;
    let data = cifar_like(&ImageConfig::tiny(), nodes, 2, 11);
    let mut cfg = base_config(
        straggler_profile(),
        FaultConfig {
            plan: FaultPlan::None,
            staleness,
        },
    );
    cfg.rounds = rounds;
    cfg.eval_every = 0;
    let max_mixed_age = Arc::new(AtomicUsize::new(0));
    let result = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(nodes, 2, 13).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                Box::new(RoundStamp {
                    max_mixed_age: Arc::clone(&max_mixed_age),
                }) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap()
        .run()
        .unwrap();
    (result, max_mixed_age.load(Ordering::Relaxed))
}

/// Satellite property, engine-level: with a cap of k rounds, *no* message
/// older than k rounds ever reaches a strategy's aggregate — while the same
/// cluster without the cap provably mixes much older ones.
#[test]
fn no_message_older_than_the_cap_is_ever_mixed() {
    const CAP: usize = 1;
    let (uncapped, max_age_uncapped) = run_round_stamp(StalenessPolicy::unbounded(), 12);
    assert!(
        max_age_uncapped > CAP,
        "stragglers must produce round-staleness beyond the cap \
         (saw max age {max_age_uncapped})"
    );
    assert_eq!(uncapped.total_traffic.messages_expired, 0);
    let (capped, max_age_capped) = run_round_stamp(StalenessPolicy::drop_after_rounds(CAP), 12);
    assert!(
        max_age_capped <= CAP,
        "cap violated: a message {max_age_capped} rounds old was mixed"
    );
    assert!(
        capped.total_traffic.messages_expired > 0,
        "the cap must actually have dropped something"
    );
}

#[test]
fn eval_checkpoints_fire_on_virtual_time() {
    let mut cfg = base_config(straggler_profile(), FaultConfig::default());
    cfg.eval_interval_s = Some(3.0);
    let result = run_full_sharing(cfg, 8);
    let checkpoints: Vec<_> = result.checkpoints().collect();
    assert!(!checkpoints.is_empty(), "interval must produce checkpoints");
    // Checkpoints land on the virtual clock, strictly increasing.
    for pair in checkpoints.windows(2) {
        assert!(pair[0].sim_time_s < pair[1].sim_time_s);
    }
    // Round-boundary evaluations still exist alongside them and the final
    // record is the last round's (checkpoints never outlive training).
    assert!(result.round_records().count() > 0);
    assert_eq!(result.rounds_run, 8);
    // Checkpoint cadence is heterogeneity-aware: the first checkpoint fires
    // before the 4x straggler's first round (4 s) completes the cluster
    // round, making fast nodes' progress visible mid-round.
    let first_round_eval = result
        .round_records()
        .next()
        .expect("at least one round eval");
    let first_checkpoint = checkpoints.first().unwrap();
    assert!(first_checkpoint.sim_time_s < first_round_eval.sim_time_s);
    // The run closes on the final round's record, not on a trailing tick
    // dated after training ended.
    let last = result.final_record().unwrap();
    assert!(!last.checkpoint, "final record must be the last round's");
    // Without an interval there are no checkpoints.
    let plain = run_full_sharing(base_config(straggler_profile(), FaultConfig::default()), 8);
    assert_eq!(plain.checkpoints().count(), 0);
}

#[test]
fn eval_checkpoints_survive_a_long_outage() {
    // Node 1 is down over [2, 42) s — long enough that every other node
    // drains its entire round budget first. The cadence must keep ticking
    // through the outage and cover the post-recovery phase where node 1
    // trains its remaining rounds alone.
    let faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![FaultOutage::new(1, 2.0, 40.0)]),
        staleness: StalenessPolicy::default(),
    };
    let mut cfg = base_config(straggler_profile(), faults);
    cfg.eval_interval_s = Some(3.0);
    let result = run_full_sharing(cfg, 6);
    assert_eq!(result.rounds_run, 8, "training resumes after the outage");
    assert!(
        result.checkpoints().any(|cp| cp.sim_time_s > 40.0),
        "checkpoints must cover the post-recovery phase"
    );
    assert!(!result.final_record().unwrap().checkpoint);
}
