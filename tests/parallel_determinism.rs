//! Thread-count invariance of the parallel event-driven engine.
//!
//! The engine executes independent simultaneous events on a worker pool and
//! commits their side effects in the event queue's seeded pop order (see the
//! module docs of `jwins::engine`). The contract is that `TrainConfig::
//! threads` may not change *any* observable output, bit for bit — not the
//! losses, not the virtual clock, not the fault or staleness telemetry.
//! These tests replay one fault + bounded-staleness CIFAR workload at
//! `threads` ∈ {1, 2, 8} and compare the full `RoundRecord` streams.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{FullSharing, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_nn::models::mlp_classifier;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;

const NODES: usize = 8;

/// One crash+rejoin, one permanent crash, a staleness policy, stragglers
/// and mid-round checkpoints — every telemetry counter gets exercised.
fn chaos_config(threads: usize, staleness: StalenessPolicy) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    // Two speed classes keep cohorts time-aligned, so batches are wide and
    // the parallel path is actually exercised (not just singleton batches).
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![
            FaultOutage {
                rejoin: RejoinMode::Resync,
                ..FaultOutage::new(1, 2.5, 3.0)
            },
            // Never recovers: exercises the trailing-checkpoint close-out.
            FaultOutage::new(3, 7.5, f64::INFINITY),
        ]),
        staleness,
    };
    cfg.eval_interval_s = Some(1.5);
    cfg
}

fn run(threads: usize, staleness: StalenessPolicy, sparsify: bool) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    Trainer::builder(chaos_config(threads, staleness))
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            let strategy: Box<dyn ShareStrategy> = if sparsify {
                Box::new(Jwins::new(JwinsConfig::paper_default(), 100 + node as u64))
            } else {
                Box::new(FullSharing::new())
            };
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), strategy)
        })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn fault_staleness_run_is_identical_at_1_2_and_8_threads() {
    let staleness = StalenessPolicy::drop_after_rounds(1);
    let t1 = run(1, staleness, false);
    let t2 = run(2, staleness, false);
    let t8 = run(8, staleness, false);
    // The workload must be non-degenerate, or the comparison proves little.
    let last = t1.records.last().expect("records recorded");
    assert!(last.crashes >= 2, "crashes replayed: {}", last.crashes);
    assert!(last.rejoins >= 1, "rejoins replayed: {}", last.rejoins);
    assert!(
        t1.records.iter().any(|r| r.checkpoint),
        "virtual-time checkpoints fired"
    );
    assert!(
        t1.records.iter().any(|r| r.mean_staleness_s > 0.0),
        "stale mixes observed"
    );
    t1.assert_bit_identical(&t2, "threads 1 vs 2");
    t1.assert_bit_identical(&t8, "threads 1 vs 8");
}

#[test]
fn decayed_staleness_and_sparsification_are_thread_invariant() {
    // Exponential down-weighting exercises the float-ordered commit of
    // absorbed mixing mass; JWINS exercises codec round-trips per message.
    let staleness = StalenessPolicy::decay_after_rounds(1, 0.5);
    let t1 = run(1, staleness, true);
    let t8 = run(8, staleness, true);
    assert!(
        t1.records.last().is_some_and(|r| r.downweight_mass > 0.0),
        "decay policy absorbed mass into self-weights"
    );
    t1.assert_bit_identical(&t8, "decay+jwins threads 1 vs 8");
}
