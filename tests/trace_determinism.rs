//! The observer-effect regression suite: tracing is provably inert.
//!
//! The tracing determinism contract (see the module docs of `jwins_trace`
//! and `jwins::engine`) has two halves:
//!
//! 1. **No observer effect.** Attaching any combination of trace sinks —
//!    JSONL file, Chrome export, in-memory collector, a tiny flight
//!    recorder — must not change a single bit of any run output, at any
//!    worker thread count. Emission happens only from sequential
//!    (propose/commit) code in pop order and reads state the engine already
//!    computed, so recording can never perturb an RNG stream, the event
//!    order, or a float fold.
//! 2. **Canonical traces are thread-invariant.** With the wall-clock side
//!    channel stripped ([`TraceEvent::canonical`]), the full event stream
//!    itself is bit-identical across thread counts — the trace is part of
//!    the deterministic output, not a best-effort log.
//!
//! The workload deliberately exercises every emission site: crashes, a
//! rejoin, staleness decay, topology repair, stragglers and mid-round
//! virtual-time checkpoints.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_nn::models::mlp_classifier;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;
use jwins_topology::repair::RepairPolicy;
use jwins_trace::{MemorySink, TraceConfig, TraceEvent};

const NODES: usize = 8;

fn chaos_config(threads: usize) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![
            FaultOutage {
                rejoin: RejoinMode::Resync,
                ..FaultOutage::new(1, 2.5, 3.0)
            },
            // Never recovers: permanent-crash path plus the trailing
            // checkpoint close-out.
            FaultOutage::new(3, 7.5, f64::INFINITY),
        ]),
        staleness: StalenessPolicy::decay_after_rounds(1, 0.5),
    };
    cfg.repair = RepairPolicy::DegreePreserving;
    cfg.eval_interval_s = Some(1.5);
    cfg
}

/// Runs the chaos workload; `trace` overrides `TrainConfig::trace` and
/// `memory` is attached as an extra sink when given.
fn run(threads: usize, trace: Option<TraceConfig>, memory: Option<MemorySink>) -> RunResult {
    let mut cfg = chaos_config(threads);
    if let Some(trace) = trace {
        cfg.trace = trace;
    }
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    let mut builder = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            let strategy: Box<dyn ShareStrategy> =
                Box::new(Jwins::new(JwinsConfig::paper_default(), 100 + node as u64));
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), strategy)
        });
    if let Some(memory) = memory {
        builder = builder.trace_sink(Box::new(memory));
    }
    builder.build().unwrap().run().unwrap()
}

/// A per-test scratch path under the target-adjacent temp dir.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jwins-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Every sink attached at once, at every thread count: the run output must
/// be bit-identical to the untraced default.
#[test]
fn tracing_has_no_observer_effect() {
    // The reference: default config (flight recorder only, no files).
    let plain = run(1, None, None);
    // Non-degenerate workload, or the comparison proves little.
    let last = plain.records.last().expect("records recorded");
    assert!(last.crashes >= 2, "crashes replayed: {}", last.crashes);
    assert!(last.rejoins >= 1, "rejoins replayed: {}", last.rejoins);
    assert!(
        last.edges_rewired > 0,
        "repair fired: {}",
        last.edges_rewired
    );
    assert!(
        plain.records.iter().any(|r| r.mean_staleness_s > 0.0),
        "stale mixes observed"
    );

    for threads in [1usize, 2, 8] {
        let trace = TraceConfig {
            jsonl_path: Some(
                scratch(&format!("observer-{threads}.jsonl"))
                    .to_string_lossy()
                    .into_owned(),
            ),
            chrome_path: Some(
                scratch(&format!("observer-{threads}.chrome.json"))
                    .to_string_lossy()
                    .into_owned(),
            ),
            // A tiny ring forces constant eviction — the worst case for an
            // observer effect.
            flight_recorder_bytes: 256,
        };
        let memory = MemorySink::new();
        let traced = run(threads, Some(trace), Some(memory.clone()));
        plain.assert_bit_identical(
            &traced,
            &format!("untraced/1-thread vs fully-sinked/{threads}-thread"),
        );
        assert!(!memory.is_empty(), "the attached sink actually recorded");
    }
}

/// The canonical event stream (wall side channel zeroed) is itself part of
/// the deterministic output: identical across worker thread counts.
#[test]
fn canonical_trace_is_thread_invariant() {
    let canonical = |threads: usize| -> Vec<TraceEvent> {
        let memory = MemorySink::new();
        let _ = run(threads, None, Some(memory.clone()));
        memory
            .events()
            .into_iter()
            .map(TraceEvent::canonical)
            .collect()
    };
    let t1 = canonical(1);
    let t2 = canonical(2);
    let t8 = canonical(8);
    assert!(!t1.is_empty());
    assert_eq!(t1.len(), t2.len(), "event counts differ at 2 threads");
    assert_eq!(t1, t2, "canonical trace differs at 2 threads");
    assert_eq!(t1, t8, "canonical trace differs at 8 threads");

    // The chaos plan's signature shows up in the stream.
    let count = |kind: fn(&TraceEvent) -> bool| t1.iter().filter(|e| kind(e)).count();
    assert_eq!(
        count(|e| matches!(e, TraceEvent::RunStart { .. })),
        1,
        "exactly one RunStart"
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::RunEnd { .. })),
        1,
        "exactly one RunEnd"
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::NodeCrash { .. })),
        2,
        "both scripted crashes traced"
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::NodeRejoin { .. })),
        1,
        "the scripted rejoin traced"
    );
    assert!(
        count(|e| matches!(e, TraceEvent::RepairRewire { .. })) >= 1,
        "repair refreshes traced"
    );
    assert!(
        count(|e| matches!(e, TraceEvent::MsgMixed { .. })) > 0,
        "mixing provenance traced"
    );
    assert!(
        count(|e| matches!(e, TraceEvent::ExecuteBatch { .. })) > 0,
        "batch records traced"
    );
    // Virtual time never runs backwards (events are emitted in commit
    // order and the simulation clock is monotone).
    let mut clock = 0;
    for event in &t1 {
        assert!(event.t_ns() >= clock, "virtual time ran backwards");
        clock = event.t_ns();
    }
}

/// The JSONL file written by the engine parses back into exactly the events
/// the in-memory sink saw.
#[test]
fn jsonl_file_round_trips_the_memory_stream() {
    let path = scratch("roundtrip.jsonl");
    let memory = MemorySink::new();
    let trace = TraceConfig {
        jsonl_path: Some(path.to_string_lossy().into_owned()),
        ..TraceConfig::default()
    };
    let _ = run(2, Some(trace), Some(memory.clone()));
    let text = std::fs::read_to_string(&path).expect("trace written");
    let parsed: Vec<TraceEvent> = text
        .lines()
        .map(|l| serde::json::from_str(l).expect("every line parses"))
        .collect();
    assert_eq!(parsed, memory.events(), "file and memory sinks agree");
}
