//! Integration tests for the extension surface: churn, per-edge strategies,
//! peer sampling, quantized sharing, and adaptive importance scores —
//! everything the paper claims, cites or proposes without evaluating.

use jwins::config::TrainConfig;
use jwins::cutoff::AlphaDistribution;
use jwins::engine::Trainer;
use jwins::participation::{Outage, RandomDropout, ScriptedOutages};
use jwins::scaling::ScoreScaling;
use jwins::strategies::{
    ChocoConfig, ChocoSgd, FullSharing, Jwins, JwinsConfig, PowerGossip, PowerGossipConfig,
    QuantizedSharing, RandomModelWalk,
};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::model::Model;
use jwins_nn::models::{gn_lenet, mlp_classifier, ImageClassifier};
use jwins_topology::dynamic::StaticTopology;
use jwins_topology::peer_sampling::{PeerSampling, PeerSamplingConfig};

const NODES: usize = 6;

fn config(rounds: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(rounds);
    cfg.local_steps = 1;
    cfg.batch_size = 8;
    cfg.lr = 0.05;
    cfg.eval_every = 0;
    cfg.eval_test_samples = 96;
    cfg.threads = 2;
    cfg
}

fn build_and_run(
    rounds: usize,
    factory: impl FnMut(usize) -> (ImageClassifier, Box<dyn ShareStrategy>),
) -> jwins::metrics::RunResult {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 11);
    Trainer::builder(config(rounds))
        .topology(StaticTopology::random_regular(NODES, 2, 5).expect("feasible"))
        .test_set(data.test)
        .nodes(data.node_train, factory)
        .build()
        .expect("valid experiment")
        .run()
        .expect("run completes")
}

fn tiny_model(seed: u64) -> ImageClassifier {
    mlp_classifier(2 * 8 * 8, &[12], 4, seed)
}

#[test]
fn power_gossip_per_layer_learns_end_to_end() {
    let img = ImageConfig::tiny();
    let probe = gn_lenet(img.channels, img.height, img.width, img.classes, 4, 11);
    let segments = probe.param_segments();
    assert_eq!(
        segments.iter().map(|(r, c)| r * c).sum::<usize>(),
        probe.param_count(),
        "segments must tile the parameter vector"
    );
    let data = cifar_like(&img, NODES, 2, 11);
    let result = Trainer::builder(config(30))
        .topology(StaticTopology::random_regular(NODES, 2, 5).expect("feasible"))
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                gn_lenet(img.channels, img.height, img.width, img.classes, 4, 11),
                Box::new(PowerGossip::new(
                    PowerGossipConfig::per_layer(2, segments.clone()),
                    node,
                    77,
                )) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment")
        .run()
        .expect("run completes");
    let acc = result.final_accuracy();
    assert!(acc > 0.4, "per-layer PowerGossip stuck at {acc}");
}

#[test]
fn quantized_sharing_tracks_full_sharing() {
    let full = build_and_run(25, |_| {
        (
            tiny_model(3),
            Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
        )
    });
    let quant = build_and_run(25, |node| {
        (
            tiny_model(3),
            Box::new(QuantizedSharing::new(255, 900 + node as u64)) as Box<dyn ShareStrategy>,
        )
    });
    // Quantization noise costs a little accuracy but an 8-bit QSGD model
    // must stay in the same regime as full sharing, for far fewer bytes.
    assert!(
        quant.final_accuracy() > full.final_accuracy() - 0.15,
        "quantized {} vs full {}",
        quant.final_accuracy(),
        full.final_accuracy()
    );
    assert!(
        (quant.total_traffic.bytes_sent as f64) < 0.55 * full.total_traffic.bytes_sent as f64,
        "quantized bytes {} not well below full {}",
        quant.total_traffic.bytes_sent,
        full.total_traffic.bytes_sent
    );
}

#[test]
fn random_model_walk_spends_one_edge_per_round() {
    let full = build_and_run(20, |_| {
        (
            tiny_model(3),
            Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
        )
    });
    let rmw = build_and_run(20, |node| {
        (
            tiny_model(3),
            Box::new(RandomModelWalk::new(50 + node as u64)) as Box<dyn ShareStrategy>,
        )
    });
    // Degree-2 graph: RMW sends one full model per round instead of two.
    let ratio = rmw.total_traffic.bytes_sent as f64 / full.total_traffic.bytes_sent as f64;
    assert!(
        (0.35..0.75).contains(&ratio),
        "RMW/full byte ratio {ratio} not ≈ 1/d"
    );
    assert!(rmw.final_accuracy() > 0.3, "RMW failed to learn");
}

#[test]
fn jwins_outlives_choco_under_heavy_churn() {
    // The §V claim: replica-free JWINS degrades gracefully where CHOCO's
    // stale neighbour aggregate does not. Heavy churn, same budget.
    let dropout = RandomDropout::new(0.5, 21);
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 11);
    let run = |jwins: bool| {
        Trainer::builder(config(40))
            .topology(StaticTopology::random_regular(NODES, 2, 5).expect("feasible"))
            .participation(dropout)
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                let strategy: Box<dyn ShareStrategy> = if jwins {
                    Box::new(Jwins::new(
                        JwinsConfig::with_alpha(AlphaDistribution::budget_20()),
                        700 + node as u64,
                    ))
                } else {
                    Box::new(ChocoSgd::new(ChocoConfig::budget_20()))
                };
                (tiny_model(3), strategy)
            })
            .build()
            .expect("valid experiment")
            .run()
            .expect("run completes")
    };
    let jwins = run(true);
    let choco = run(false);
    assert!(
        jwins.final_accuracy() >= choco.final_accuracy() - 0.02,
        "JWINS {} fell behind CHOCO {} under churn",
        jwins.final_accuracy(),
        choco.final_accuracy()
    );
}

#[test]
fn scripted_outage_node_rejoins_and_catches_up() {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 11);
    let outages = ScriptedOutages::default().with_outage(Outage::new(2, 5, 25));
    let result = Trainer::builder(config(40))
        .topology(StaticTopology::random_regular(NODES, 2, 5).expect("feasible"))
        .participation(outages)
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                tiny_model(3),
                Box::new(Jwins::new(JwinsConfig::paper_default(), 60 + node as u64))
                    as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment")
        .run()
        .expect("run completes");
    assert!(
        result.final_accuracy() > 0.4,
        "cluster never recovered from the outage: {}",
        result.final_accuracy()
    );
}

#[test]
fn peer_sampled_topology_trains_jwins() {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 11);
    let result = Trainer::builder(config(30))
        .topology(PeerSampling::new(NODES, PeerSamplingConfig::default(), 9))
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                tiny_model(3),
                Box::new(Jwins::new(JwinsConfig::paper_default(), 80 + node as u64))
                    as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment")
        .run()
        .expect("run completes");
    assert!(
        result.final_accuracy() > 0.4,
        "JWINS on peer-sampled graphs reached only {}",
        result.final_accuracy()
    );
}

#[test]
fn adaptive_scaling_matches_uniform_at_matched_budget() {
    let run = |scaling: Option<ScoreScaling>| {
        build_and_run(30, |node| {
            let mut cfg = JwinsConfig::with_alpha(AlphaDistribution::Fixed(0.15));
            cfg.randomized_cutoff = false;
            cfg.score_scaling = scaling.clone();
            (
                tiny_model(3),
                Box::new(Jwins::new(cfg, 30 + node as u64)) as Box<dyn ShareStrategy>,
            )
        })
    };
    let uniform = run(None);
    // mlp_classifier(128, &[12], 4): layers 128*12+12 then 12*4+4 → use the
    // real layout from a probe model.
    let probe = tiny_model(3);
    let sizes = probe.layer_param_sizes();
    let adaptive = run(Some(
        ScoreScaling::inverse_size(&sizes).expect("valid layout"),
    ));
    // Same bytes (α is fixed), comparable accuracy.
    assert!(
        (adaptive.total_traffic.bytes_sent as f64 - uniform.total_traffic.bytes_sent as f64).abs()
            < 0.05 * uniform.total_traffic.bytes_sent as f64,
        "scaling changed the byte budget"
    );
    assert!(
        adaptive.final_accuracy() > uniform.final_accuracy() - 0.12,
        "adaptive {} collapsed vs uniform {}",
        adaptive.final_accuracy(),
        uniform.final_accuracy()
    );
}

#[test]
fn jwins_tolerates_lossy_links() {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 11);
    let mut cfg = config(30);
    cfg.message_loss = 0.15;
    let result = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 2, 5).expect("feasible"))
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                tiny_model(3),
                Box::new(Jwins::new(JwinsConfig::paper_default(), 40 + node as u64))
                    as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment")
        .run()
        .expect("run completes");
    assert!(
        result.total_traffic.messages_dropped > 0,
        "loss never triggered"
    );
    assert!(
        result.final_accuracy() > 0.4,
        "JWINS collapsed under 15% message loss: {}",
        result.final_accuracy()
    );
}

#[test]
fn per_edge_and_broadcast_strategies_coexist_in_one_cluster() {
    // Heterogeneous clusters are out of paper scope, but the engine should
    // not corrupt state when protocols differ per node — messages are
    // per-strategy opaque. Here all nodes run RMW except one full-sharing
    // node, which must reject the walkers' smaller payloads... so instead
    // mix RMW with RMW (different seeds) and verify plain mixed runs work.
    let result = build_and_run(15, |node| {
        (
            tiny_model(3),
            Box::new(RandomModelWalk::new(node as u64)) as Box<dyn ShareStrategy>,
        )
    });
    assert_eq!(result.rounds_run, 15);
}
