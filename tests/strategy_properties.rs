//! Cross-crate properties of the sharing strategies.
//!
//! These pin down the paper's qualitative claims at tiny scale: budget
//! compliance on the wire, metadata negligibility, determinism, and the
//! orderings between algorithms that the figures report.

use jwins::config::TrainConfig;
use jwins::cutoff::AlphaDistribution;
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{ChocoConfig, ChocoSgd, FullSharing, Jwins, JwinsConfig, RandomSampling};
use jwins::strategy::ShareStrategy;
use jwins_codec::sparse::IndexCodec;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::mlp_classifier;
use jwins_topology::dynamic::{DynamicRegular, StaticTopology};

const NODES: usize = 8;

fn config(rounds: usize) -> TrainConfig {
    let mut c = TrainConfig::new(rounds);
    c.local_steps = 2;
    c.batch_size = 8;
    c.lr = 0.1;
    c.eval_every = 0;
    c.eval_test_samples = 128;
    c.threads = 2;
    c
}

fn run_with(
    rounds: usize,
    dynamic: bool,
    factory: impl Fn(usize) -> Box<dyn ShareStrategy>,
) -> RunResult {
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, NODES, 2, 5);
    let builder = Trainer::builder(config(rounds))
        .test_set(data.test.clone())
        .nodes(data.node_train.clone(), |node| {
            (
                mlp_classifier(img.pixels(), &[24], img.classes, 11),
                factory(node),
            )
        });
    let builder = if dynamic {
        builder.topology(DynamicRegular::new(NODES, 4, 13).unwrap())
    } else {
        builder.topology(StaticTopology::random_regular(NODES, 4, 13).unwrap())
    };
    builder.build().unwrap().run().unwrap()
}

#[test]
fn all_strategies_learn_above_chance() {
    let chance = 0.25;
    for (name, factory) in strategy_matrix() {
        let result = run_with(15, false, factory);
        assert!(
            result.final_accuracy() > chance,
            "{name} stuck at {:.3}",
            result.final_accuracy()
        );
    }
}

type StrategyFactory = Box<dyn Fn(usize) -> Box<dyn ShareStrategy>>;

fn strategy_matrix() -> Vec<(&'static str, StrategyFactory)> {
    vec![
        (
            "full-sharing",
            Box::new(|_| Box::new(FullSharing::new()) as Box<dyn ShareStrategy>),
        ),
        (
            "random-sampling",
            Box::new(|_| Box::new(RandomSampling::new(0.37, 42)) as Box<dyn ShareStrategy>),
        ),
        (
            "jwins",
            Box::new(|n: usize| {
                Box::new(Jwins::new(JwinsConfig::paper_default(), 70 + n as u64))
                    as Box<dyn ShareStrategy>
            }),
        ),
        (
            "topk",
            Box::new(|n: usize| {
                Box::new(Jwins::new(JwinsConfig::topk(0.34), 70 + n as u64))
                    as Box<dyn ShareStrategy>
            }),
        ),
        (
            "choco",
            Box::new(|_| {
                Box::new(ChocoSgd::new(ChocoConfig {
                    fraction: 0.34,
                    gamma: 0.6,
                    ..ChocoConfig::budget_20()
                })) as Box<dyn ShareStrategy>
            }),
        ),
    ]
}

#[test]
fn sparse_strategies_save_bytes_in_budget_order() {
    let full = run_with(8, false, |_| Box::new(FullSharing::new()));
    let jwins20 = run_with(8, false, |n| {
        Box::new(Jwins::new(
            JwinsConfig::with_alpha(AlphaDistribution::budget_20()),
            n as u64,
        ))
    });
    let jwins10 = run_with(8, false, |n| {
        Box::new(Jwins::new(
            JwinsConfig::with_alpha(AlphaDistribution::budget_10()),
            n as u64,
        ))
    });
    let b_full = full.total_traffic.bytes_sent;
    let b20 = jwins20.total_traffic.bytes_sent;
    let b10 = jwins10.total_traffic.bytes_sent;
    assert!(b10 < b20, "10% ({b10}) should send less than 20% ({b20})");
    assert!(
        b20 < b_full,
        "20% ({b20}) should send less than full ({b_full})"
    );
}

#[test]
fn jwins_metadata_is_a_small_fraction_with_elias_gamma() {
    let result = run_with(8, false, |n| {
        Box::new(Jwins::new(JwinsConfig::paper_default(), n as u64))
    });
    let t = result.total_traffic;
    let frac = t.metadata_sent as f64 / t.bytes_sent as f64;
    assert!(frac < 0.25, "metadata fraction {frac:.3} too high");
}

#[test]
fn raw_metadata_roughly_doubles_traffic() {
    // The Figure-9 claim: without compression, metadata ≈ payload (both are
    // 32-bit per shared value).
    let gamma = run_with(6, false, |n| {
        let mut cfg = JwinsConfig::paper_default();
        cfg.value_codec = jwins_codec::sparse::ValueCodec::Raw;
        Box::new(Jwins::new(cfg, n as u64))
    });
    let raw = run_with(6, false, |n| {
        let mut cfg = JwinsConfig::paper_default();
        cfg.index_codec = IndexCodec::RawU32;
        cfg.value_codec = jwins_codec::sparse::ValueCodec::Raw;
        Box::new(Jwins::new(cfg, n as u64))
    });
    let raw_meta = raw.total_traffic.metadata_sent as f64;
    let raw_payload = raw.total_traffic.payload_sent as f64;
    assert!(
        raw_meta > raw_payload * 0.9,
        "raw metadata {raw_meta} should be ~payload {raw_payload}"
    );
    let improvement = raw_meta / gamma.total_traffic.metadata_sent as f64;
    assert!(
        improvement > 3.0,
        "Elias gamma should shrink metadata several-fold, got {improvement:.1}x"
    );
}

#[test]
fn runs_are_reproducible() {
    let a = run_with(5, false, |n| {
        Box::new(Jwins::new(JwinsConfig::paper_default(), n as u64))
    });
    let b = run_with(5, false, |n| {
        Box::new(Jwins::new(JwinsConfig::paper_default(), n as u64))
    });
    assert_eq!(a.total_traffic.bytes_sent, b.total_traffic.bytes_sent);
    assert_eq!(a.final_accuracy(), b.final_accuracy());
}

#[test]
fn dynamic_topology_works_for_jwins_but_not_choco() {
    // Figure 7: JWINS keeps learning when neighbours change every round;
    // CHOCO's error-feedback state becomes incoherent. A harder workload
    // (more classes, heavier noise, stricter sharding) is needed so the
    // difference is visible before everything saturates.
    let mut img = ImageConfig::tiny();
    img.classes = 8;
    img.noise = 1.1;
    img.train_per_unit = 48;
    let data = cifar_like(&img, NODES, 2, 5);
    let run = |factory: &dyn Fn(usize) -> Box<dyn ShareStrategy>| {
        let mut cfg = config(12);
        cfg.lr = 0.05;
        Trainer::builder(cfg)
            .topology(DynamicRegular::new(NODES, 4, 13).unwrap())
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                (
                    mlp_classifier(img.pixels(), &[24], img.classes, 11),
                    factory(node),
                )
            })
            .build()
            .unwrap()
            .run()
            .unwrap()
    };
    let jwins_dyn = run(&|n| {
        Box::new(Jwins::new(JwinsConfig::paper_default(), n as u64)) as Box<dyn ShareStrategy>
    });
    let choco_dyn = run(&|_| {
        Box::new(ChocoSgd::new(ChocoConfig {
            fraction: 0.34,
            gamma: 0.6,
            ..ChocoConfig::budget_20()
        })) as Box<dyn ShareStrategy>
    });
    assert!(
        jwins_dyn.final_accuracy() > 1.5 / 8.0,
        "jwins-dynamic accuracy {:.3}",
        jwins_dyn.final_accuracy()
    );
    // CHOCO under dynamic topology must trail JWINS (the paper observes
    // "practically no learning"; at tiny scale a clear gap suffices).
    assert!(
        choco_dyn.final_accuracy() + 0.02 < jwins_dyn.final_accuracy(),
        "choco-dynamic {:.3} >= jwins-dynamic {:.3}",
        choco_dyn.final_accuracy(),
        jwins_dyn.final_accuracy()
    );
}

#[test]
fn mean_alpha_matches_distribution_mean() {
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, NODES, 2, 5);
    let mut cfg = config(30);
    cfg.record_alphas = true;
    let trainer = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 4, 13).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                mlp_classifier(img.pixels(), &[24], img.classes, 11),
                Box::new(Jwins::new(JwinsConfig::paper_default(), node as u64))
                    as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap();
    let result = trainer.run().unwrap();
    assert_eq!(result.alpha_history.len(), 30);
    let all: Vec<f64> = result.alpha_history.iter().flatten().copied().collect();
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    let expected = AlphaDistribution::paper_default().mean();
    assert!(
        (mean - expected).abs() < 0.08,
        "empirical mean α {mean:.3} vs {expected:.3}"
    );
    // Nodes draw independently: within a round, not all alphas equal.
    let varied = result
        .alpha_history
        .iter()
        .filter(|row| row.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9))
        .count();
    assert!(
        varied > 15,
        "only {varied}/30 rounds had per-node variation"
    );
}

#[test]
fn jwins_holds_less_state_than_choco() {
    // Paper §V: JWINS nodes do not maintain replicas of neighbour models,
    // making it more memory-efficient than CHOCO-style error feedback. JWINS
    // keeps V plus a round-start snapshot; CHOCO keeps x̂ and s. Both are
    // O(d), but the claim pinned here is that JWINS needs no *additional*
    // state when CHOCO-style replicas grow (e.g. non-memory-efficient CHOCO
    // keeps one replica per neighbour). We verify the measured state sizes
    // are reported and comparable (within 2x), and that FullSharing is
    // stateless.
    let d = 1000;
    let params: Vec<f32> = (0..d).map(|i| i as f32 * 0.01).collect();
    let mut full = FullSharing::new();
    full.init(&params);
    assert_eq!(full.state_bytes(), 0);
    let mut jwins = Jwins::new(JwinsConfig::paper_default(), 1);
    jwins.init(&params);
    let mut choco = ChocoSgd::new(ChocoConfig::budget_20());
    choco.init(&params);
    assert!(jwins.state_bytes() > 0 && choco.state_bytes() > 0);
    assert!(
        jwins.state_bytes() <= choco.state_bytes() + 4 * d,
        "jwins {} vs choco {}",
        jwins.state_bytes(),
        choco.state_bytes()
    );
}

mod robust_mixing {
    //! Mixing-layer robustness properties, exercised through the public
    //! `ShareStrategy` surface (`aggregate_robust` and the `RobustWrapper`
    //! the engine installs for `TrainConfig::robust`):
    //!
    //! - `Robust::None` is *bit-identical* to the plain aggregation path;
    //! - trimmed mean and median stay within the coordinate range spanned
    //!   by the node's own value and the honest neighbours, however extreme
    //!   the Byzantine minority;
    //! - norm clipping never increases a contribution's deviation norm;
    //! - every rule preserves the mixing row sum: a constant cluster is a
    //!   fixed point (removed mass is renormalized over the surviving
    //!   entries, not dropped).

    use jwins::robust::RobustWrapper;
    use jwins::strategies::{FullSharing, RandomSampling};
    use jwins::strategy::{ReceivedMessage, ShareStrategy};
    use jwins_adversary::Robust;
    use proptest::prelude::*;

    /// Builds one wire message per neighbour vector via `factory`, then
    /// aggregates them into `own` under `rule` with uniform mixing weights.
    fn mix(
        factory: &dyn Fn() -> Box<dyn ShareStrategy>,
        own: &[f32],
        neighbors: &[Vec<f32>],
        rule: &Robust,
    ) -> Vec<f32> {
        let messages: Vec<_> = neighbors
            .iter()
            .map(|p| {
                let mut peer = factory();
                peer.init(p);
                peer.make_message(0, p).expect("encode").bytes
            })
            .collect();
        let weight = 1.0 / (neighbors.len() + 1) as f64;
        let received: Vec<ReceivedMessage<'_>> = messages
            .iter()
            .enumerate()
            .map(|(i, bytes)| ReceivedMessage {
                from: i + 1,
                round: 0,
                weight,
                edge_weight: weight,
                bytes,
            })
            .collect();
        let mut me = factory();
        me.init(own);
        if rule.is_none() {
            me.aggregate(0, own, weight, &received).expect("aggregate")
        } else {
            let mut wrapped = RobustWrapper::new(me, *rule);
            wrapped
                .aggregate(0, own, weight, &received)
                .expect("robust aggregate")
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// `aggregate_robust` with `Robust::None` is the plain aggregation,
        /// bit for bit — the invariant the engine's no-op differential
        /// (`tests/byzantine.rs`) relies on.
        #[test]
        fn none_rule_is_bit_identical_to_plain_aggregation(
            own in proptest::collection::vec(-2.0f32..2.0, 8..64),
            offsets in proptest::collection::vec(-1.0f32..1.0, 1..4),
        ) {
            let neighbors: Vec<Vec<f32>> = offsets
                .iter()
                .map(|o| own.iter().map(|v| v + o).collect())
                .collect();
            let mut peer = FullSharing::new();
            peer.init(&own);
            let messages: Vec<_> = neighbors
                .iter()
                .map(|p| peer.make_message(0, p).expect("encode").bytes)
                .collect();
            let weight = 1.0 / (neighbors.len() + 1) as f64;
            let received: Vec<ReceivedMessage<'_>> = messages
                .iter()
                .enumerate()
                .map(|(i, bytes)| ReceivedMessage {
                    from: i + 1,
                    round: 0,
                    weight,
                    edge_weight: weight,
                    bytes,
                })
                .collect();
            let mut plain = FullSharing::new();
            plain.init(&own);
            let a = plain.aggregate(0, &own, weight, &received).expect("plain");
            let mut robust = FullSharing::new();
            robust.init(&own);
            let b = robust
                .aggregate_robust(0, &own, weight, &received, &Robust::None)
                .expect("robust none");
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "None path drifted");
            }
        }

        /// Trimmed mean and median, wrapped exactly as the engine wraps
        /// them, stay inside the honest coordinate range for a Byzantine
        /// minority — the screen the `ext_byzantine` bench measures.
        #[test]
        fn wrapped_trim_and_median_are_bounded_by_honest_range(
            own in proptest::collection::vec(-2.0f32..2.0, 8..48),
            offsets in proptest::collection::vec(-0.5f32..0.5, 2..5),
            byz in prop_oneof![Just(-1.0e5f32), Just(1.0e5f32)],
        ) {
            let mut neighbors: Vec<Vec<f32>> = offsets
                .iter()
                .map(|o| own.iter().map(|v| v + o).collect())
                .collect();
            neighbors.push(vec![byz; own.len()]);
            let factory = || Box::new(FullSharing::new()) as Box<dyn ShareStrategy>;
            for rule in [Robust::TrimmedMean { trim: 0.49 }, Robust::Median] {
                let out = mix(&factory, &own, &neighbors, &rule);
                for (k, v) in out.iter().enumerate() {
                    let mut lo = own[k];
                    let mut hi = own[k];
                    for h in &neighbors[..offsets.len()] {
                        lo = lo.min(h[k]);
                        hi = hi.max(h[k]);
                    }
                    prop_assert!(
                        *v >= lo - 1e-4 && *v <= hi + 1e-4,
                        "{rule:?} coord {k}: {v} outside honest [{lo}, {hi}]"
                    );
                }
            }
        }

        /// Norm clipping never lets the aggregate move further from the own
        /// vector than `tau`, through a *sparse* strategy (exercising the
        /// `add_sparse` decode path the engine uses for subsampled wires).
        #[test]
        fn sparse_norm_clip_caps_the_aggregate_deviation(
            own in proptest::collection::vec(-2.0f32..2.0, 16..64),
            scale in 3.0f32..50.0,
            tau in 0.05f64..1.0,
        ) {
            let neighbors = vec![own.iter().map(|v| v * scale + 1.0).collect::<Vec<f32>>()];
            let factory = || Box::new(RandomSampling::new(0.5, 9)) as Box<dyn ShareStrategy>;
            let out = mix(&factory, &own, &neighbors, &Robust::NormClip { tau });
            let dev: f64 = out
                .iter()
                .zip(&own)
                .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
                .sum::<f64>()
                .sqrt();
            prop_assert!(dev <= tau + 1e-3, "deviation {dev} exceeds tau {tau}");
        }

        /// Row-stochasticity through the full strategy stack: a constant
        /// cluster is a fixed point of every rule (dense and sparse wires
        /// alike) — removed mass lands in the self entry, never vanishes.
        #[test]
        fn constant_cluster_is_a_fixed_point_of_every_rule(
            own in proptest::collection::vec(-3.0f32..3.0, 8..64),
            peers in 1usize..4,
            rule_pick in 0usize..4,
        ) {
            let rule = match rule_pick {
                0 => Robust::None,
                1 => Robust::TrimmedMean { trim: 0.4 },
                2 => Robust::Median,
                _ => Robust::NormClip { tau: 0.25 },
            };
            let neighbors = vec![own.clone(); peers];
            for factory in [
                (|| Box::new(FullSharing::new()) as Box<dyn ShareStrategy>)
                    as fn() -> Box<dyn ShareStrategy>,
                || Box::new(RandomSampling::new(0.6, 17)) as Box<dyn ShareStrategy>,
            ] {
                let out = mix(&factory, &own, &neighbors, &rule);
                for (a, b) in own.iter().zip(&out) {
                    prop_assert!(
                        (a - b).abs() < 1e-5,
                        "{rule:?} moved a constant cluster: {a} -> {b}"
                    );
                }
            }
        }
    }
}

mod adversarial_inputs {
    //! No strategy may panic on arbitrary neighbour bytes — a malformed or
    //! malicious message must surface as `Err`, never as a crash (the
    //! simulator stands in for real sockets, where garbage is a fact of
    //! life).

    use jwins::strategies::{
        ChocoConfig, ChocoSgd, Jwins, JwinsConfig, PowerGossip, PowerGossipConfig,
        QuantizedSharing, RandomModelWalk,
    };
    use jwins::strategy::{Outbound, ReceivedMessage, ShareStrategy};
    use proptest::prelude::*;

    fn params(dim: usize) -> Vec<f32> {
        (0..dim).map(|i| (i as f32 * 0.17).sin()).collect()
    }

    fn deliver_garbage(strategy: &mut dyn ShareStrategy, bytes: &[u8]) {
        let x = params(64);
        strategy.init(&x);
        let _ = strategy
            .make_outbound(0, &x, &[1])
            .expect("own message construction succeeds");
        let msg = ReceivedMessage {
            from: 1,
            round: 0,
            weight: 0.5,
            edge_weight: 0.5,
            bytes,
        };
        // Must not panic; Err or Ok are both acceptable outcomes.
        let _ = strategy.aggregate(0, &x, 0.5, &[msg]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn jwins_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let mut s = Jwins::new(JwinsConfig::paper_default(), 3);
            deliver_garbage(&mut s, &bytes);
        }

        #[test]
        fn choco_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let mut s = ChocoSgd::new(ChocoConfig::budget_20());
            deliver_garbage(&mut s, &bytes);
        }

        #[test]
        fn power_gossip_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let mut s = PowerGossip::new(PowerGossipConfig::global(1), 0, 7);
            deliver_garbage(&mut s, &bytes);
        }

        #[test]
        fn quantized_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let mut s = QuantizedSharing::new(255, 5);
            deliver_garbage(&mut s, &bytes);
        }

        #[test]
        fn rmw_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let mut s = RandomModelWalk::new(5);
            deliver_garbage(&mut s, &bytes);
        }
    }

    #[test]
    fn own_messages_always_decode() {
        // Round-trip sanity across all strategies: a node's own wire image
        // is always accepted by a peer instance of the same strategy.
        let x = params(64);
        let y: Vec<f32> = x.iter().map(|v| v * 0.9 + 0.01).collect();
        let mut a = Jwins::new(JwinsConfig::paper_default(), 1);
        let mut b = Jwins::new(JwinsConfig::paper_default(), 2);
        a.init(&x);
        b.init(&y);
        let Outbound::Broadcast(msg) = a.make_outbound(0, &x, &[1]).unwrap() else {
            panic!("jwins broadcasts")
        };
        let _ = b.make_outbound(0, &y, &[0]).unwrap();
        b.aggregate(
            0,
            &y,
            0.5,
            &[ReceivedMessage {
                from: 0,
                round: 0,
                weight: 0.5,
                edge_weight: 0.5,
                bytes: &msg.bytes,
            }],
        )
        .expect("well-formed peer message accepted");
    }
}
