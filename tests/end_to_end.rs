//! End-to-end integration tests: full pipeline per workload at tiny scale.
//!
//! Each test wires data generation → non-IID partitioning → models →
//! topology → strategy → engine and asserts the learning outcome plus the
//! byte-accounting invariants the experiment harness relies on.

use jwins::config::TrainConfig;
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{FullSharing, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{celeba_like, cifar_like, femnist_like, ImageConfig};
use jwins_data::ratings::{movielens_like, RatingConfig};
use jwins_data::text::{shakespeare_like, TextConfig};
use jwins_nn::models::{gn_lenet, leaf_cnn, CharLstm, MatrixFactorization};
use jwins_topology::dynamic::StaticTopology;

fn base_config(rounds: usize) -> TrainConfig {
    let mut c = TrainConfig::new(rounds);
    c.local_steps = 2;
    c.batch_size = 8;
    c.lr = 0.1;
    c.eval_every = 0; // final eval only
    c.eval_test_samples = 96;
    c.threads = 2;
    c
}

fn jwins_strategy(node: usize) -> Box<dyn ShareStrategy> {
    Box::new(Jwins::new(JwinsConfig::paper_default(), 9000 + node as u64))
}

#[test]
fn cifar_like_with_gn_lenet_learns_above_chance() {
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, 4, 2, 5);
    let trainer = Trainer::builder(base_config(20))
        .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                gn_lenet(img.channels, img.height, img.width, img.classes, 4, 7),
                jwins_strategy(node),
            )
        })
        .build()
        .unwrap();
    let result = trainer.run().unwrap();
    let chance = 1.0 / img.classes as f64;
    assert!(
        result.final_accuracy() > chance * 1.5,
        "accuracy {} vs chance {}",
        result.final_accuracy(),
        chance
    );
    assert_byte_accounting(&result);
}

#[test]
fn femnist_like_with_leaf_cnn_learns_above_chance() {
    let img = ImageConfig::tiny();
    let data = femnist_like(&img, 4, 8, 2);
    let trainer = Trainer::builder(base_config(20))
        .topology(StaticTopology::random_regular(4, 2, 1).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                leaf_cnn(img.channels, img.height, img.width, img.classes, 3, 16, 5),
                jwins_strategy(node),
            )
        })
        .build()
        .unwrap();
    let result = trainer.run().unwrap();
    let chance = 1.0 / img.classes as f64;
    assert!(
        result.final_accuracy() > chance * 1.5,
        "accuracy {}",
        result.final_accuracy()
    );
}

#[test]
fn celeba_like_binary_attribute_is_learned() {
    let mut img = ImageConfig::tiny();
    img.classes = 2;
    img.train_per_unit = 32;
    let data = celeba_like(&img, 4, 8, 9);
    let trainer = Trainer::builder(base_config(20))
        .topology(StaticTopology::random_regular(4, 2, 2).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                leaf_cnn(img.channels, img.height, img.width, 2, 3, 8, 3),
                jwins_strategy(node),
            )
        })
        .build()
        .unwrap();
    let result = trainer.run().unwrap();
    assert!(
        result.final_accuracy() > 0.6,
        "binary accuracy {}",
        result.final_accuracy()
    );
}

#[test]
fn movielens_like_matrix_factorization_beats_global_mean() {
    let cfg = RatingConfig::tiny();
    let data = movielens_like(&cfg, 4, 3);
    let mut config = base_config(40);
    config.lr = 0.3;
    let users = data.users;
    let items = data.items;
    let trainer = Trainer::builder(config)
        .topology(StaticTopology::random_regular(4, 2, 4).unwrap())
        .test_set(data.partitioned.test.clone())
        .nodes(data.partitioned.node_train.clone(), |node| {
            (
                MatrixFactorization::new(users, items, 4, 11),
                jwins_strategy(node),
            )
        })
        .build()
        .unwrap();
    let result = trainer.run().unwrap();
    // Global-mean predictor RMSE on this data is ≈ the rating stddev (≥ 0.7);
    // collaborative MF must beat it.
    let last = result.final_record().unwrap();
    assert!(last.test_rmse < 0.9, "rmse {}", last.test_rmse);
}

#[test]
fn shakespeare_like_char_lstm_beats_chance() {
    let cfg = TextConfig::tiny();
    let data = shakespeare_like(&cfg, 4, 4, 8);
    let mut config = base_config(80);
    config.lr = 0.8;
    config.local_steps = 3;
    let trainer = Trainer::builder(config)
        .topology(StaticTopology::random_regular(4, 2, 6).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (CharLstm::new(cfg.vocab, 8, 16, 5), jwins_strategy(node))
        })
        .build()
        .unwrap();
    let result = trainer.run().unwrap();
    let chance = 1.0 / cfg.vocab as f64;
    // The tiny corpus caps the ceiling well below the paper's Shakespeare
    // numbers (overfitting sets in fast on 96 windows); clearly-above-chance
    // is the meaningful bar here.
    assert!(
        result.final_accuracy() > chance * 1.25,
        "next-char accuracy {} vs chance {}",
        result.final_accuracy(),
        chance
    );
}

/// Payload + metadata must cover every byte the transport counted.
fn assert_byte_accounting(result: &RunResult) {
    let t = &result.total_traffic;
    assert_eq!(
        t.payload_sent + t.metadata_sent,
        t.bytes_sent,
        "payload {} + metadata {} != total {}",
        t.payload_sent,
        t.metadata_sent,
        t.bytes_sent
    );
    assert_eq!(
        t.bytes_sent, t.bytes_received,
        "every sent byte is received"
    );
    let last = result.final_record().unwrap();
    assert!(last.cum_bytes_per_node > 0.0);
}

#[test]
fn byte_accounting_consistency_across_strategies() {
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, 4, 2, 5);
    for which in ["full", "jwins"] {
        let trainer = Trainer::builder(base_config(5))
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                let model = gn_lenet(img.channels, img.height, img.width, img.classes, 4, 7);
                let strategy: Box<dyn ShareStrategy> = if which == "full" {
                    Box::new(FullSharing::new())
                } else {
                    Box::new(Jwins::new(JwinsConfig::paper_default(), node as u64))
                };
                (model, strategy)
            })
            .build()
            .unwrap();
        let result = trainer.run().unwrap();
        assert_byte_accounting(&result);
    }
}

#[test]
fn jwins_sends_fewer_bytes_than_full_sharing_for_equal_rounds() {
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, 4, 2, 5);
    let run = |jwins: bool| {
        let trainer = Trainer::builder(base_config(10))
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                let model = gn_lenet(img.channels, img.height, img.width, img.classes, 4, 7);
                let strategy: Box<dyn ShareStrategy> = if jwins {
                    Box::new(Jwins::new(JwinsConfig::paper_default(), node as u64))
                } else {
                    Box::new(FullSharing::new())
                };
                (model, strategy)
            })
            .build()
            .unwrap();
        trainer.run().unwrap()
    };
    let full = run(false);
    let sparse = run(true);
    let ratio = sparse.total_traffic.bytes_sent as f64 / full.total_traffic.bytes_sent as f64;
    // E[α] ≈ 34%; with metadata overhead the ratio lands well below 0.8.
    assert!(ratio < 0.8, "jwins/full byte ratio {ratio:.2}");
    assert!(ratio > 0.15, "suspiciously few bytes ({ratio:.3})");
}
