//! PowerGossip under asynchronous gossip, faults and repair.
//!
//! The per-edge warm starts are round-versioned (see the edge-state
//! versioning contract on `jwins::strategy::ShareStrategy`), which makes
//! three guarantees testable at the engine level:
//!
//! 1. under a *degenerate* heterogeneity profile the event-driven engine
//!    reproduces the bulk-synchronous PowerGossip run bit-for-bit (modulo
//!    the substrates' different wall-clock models);
//! 2. under real heterogeneity *with* a fault plan and topology repair the
//!    run is bit-identical at `threads` ∈ {1, 2, 8};
//! 3. a dropped or expired half-handshake never panics and always converges
//!    back to the deterministic fresh planes (proptest), and the engine
//!    tells every survivor to forget a permanently crashed peer's edges.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{PowerGossip, PowerGossipConfig};
use jwins::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_net::ByteBreakdown;
use jwins_nn::models::mlp_classifier;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;
use jwins_topology::repair::RepairPolicy;
use std::sync::{Arc, Mutex};

const NODES: usize = 8;

fn power_gossip(node: usize) -> Box<dyn ShareStrategy> {
    Box::new(PowerGossip::new(PowerGossipConfig::global(1), node, 42))
}

fn run_degenerate(execution: ExecutionMode) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), 6, 2, 11);
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 8;
    cfg.lr = 0.1;
    cfg.eval_every = 2;
    cfg.execution = execution;
    cfg.heterogeneity = HeterogeneityProfile::default();
    Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(6, 2, 13).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), power_gossip(node))
        })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn degenerate_profile_matches_sync_engine_bitwise() {
    let sync = run_degenerate(ExecutionMode::BulkSynchronous);
    let event = run_degenerate(ExecutionMode::EventDriven);
    assert_eq!(sync.rounds_run, event.rounds_run);
    assert_eq!(sync.total_traffic, event.total_traffic);
    assert_eq!(sync.records.len(), event.records.len());
    for (s, e) in sync.records.iter().zip(&event.records) {
        assert_eq!(s.round, e.round);
        assert_eq!(s.train_loss.to_bits(), e.train_loss.to_bits(), "train loss");
        assert_eq!(s.test_loss.to_bits(), e.test_loss.to_bits(), "test loss");
        assert_eq!(
            s.test_accuracy.to_bits(),
            e.test_accuracy.to_bits(),
            "accuracy"
        );
        assert_eq!(s.mean_alpha.to_bits(), e.mean_alpha.to_bits(), "alpha");
        assert_eq!(s.cum_bytes_per_node, e.cum_bytes_per_node);
        assert_eq!(s.cum_payload_per_node, e.cum_payload_per_node);
        assert_eq!(s.cum_metadata_per_node, e.cum_metadata_per_node);
        assert_eq!(e.mean_staleness_s, 0.0, "degenerate profile must be fresh");
        // sim_time_s intentionally differs: the barrier model charges
        // latency + max-bytes/bandwidth per round, the event clock charges
        // what its (here: instantaneous) links actually cost.
    }
    assert!(
        event.final_record().unwrap().test_accuracy > 0.25,
        "lockstep async PowerGossip still learns"
    );
}

/// One crash+resync rejoin, one permanent crash, a staleness cap,
/// stragglers and degree-preserving repair: the full chaos PowerGossip was
/// previously refused under, replayed at several thread counts.
fn run_chaos(threads: usize) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![
            FaultOutage {
                rejoin: RejoinMode::Resync,
                ..FaultOutage::new(1, 2.5, 3.0)
            },
            FaultOutage::new(3, 7.5, f64::INFINITY),
        ]),
        staleness: StalenessPolicy::drop_after_rounds(2),
    };
    cfg.repair = RepairPolicy::DegreePreserving;
    Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), power_gossip(node))
        })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

#[test]
fn chaos_run_is_identical_at_1_2_and_8_threads() {
    let t1 = run_chaos(1);
    let t2 = run_chaos(2);
    let t8 = run_chaos(8);
    // The workload must be non-degenerate, or the comparison proves little.
    let last = t1.records.last().expect("records recorded");
    assert!(last.crashes >= 2, "crashes replayed: {}", last.crashes);
    assert!(last.rejoins >= 1, "rejoins replayed: {}", last.rejoins);
    assert!(last.edges_rewired > 0, "repair actually rewired");
    assert!(
        t1.records.iter().any(|r| r.mean_staleness_s > 0.0),
        "stale mixes observed"
    );
    assert!(
        t1.records
            .iter()
            .all(|r| r.test_accuracy.is_finite() && r.train_loss.is_finite()),
        "no corrupted per-edge state may leak into the metrics"
    );
    t1.assert_bit_identical(&t2, "power-gossip chaos threads 1 vs 2");
    t1.assert_bit_identical(&t8, "power-gossip chaos threads 1 vs 8");
}

/// A probe that records which peers the engine told it to forget.
#[derive(Debug)]
struct ForgetProbe {
    node: usize,
    forgotten: Arc<Mutex<Vec<(usize, usize)>>>,
}

impl ShareStrategy for ForgetProbe {
    fn name(&self) -> &'static str {
        "forget-probe"
    }

    fn make_message(&mut self, round: usize, _params: &[f32]) -> jwins::Result<OutMessage> {
        Ok(OutMessage::new(
            (round as u64).to_le_bytes().to_vec(),
            ByteBreakdown {
                payload: 8,
                metadata: 0,
            },
        ))
    }

    fn aggregate(
        &mut self,
        _round: usize,
        params: &[f32],
        _self_weight: f64,
        _received: &[ReceivedMessage<'_>],
    ) -> jwins::Result<Vec<f32>> {
        Ok(params.to_vec())
    }

    fn forget_edge(&mut self, peer: usize) {
        self.forgotten.lock().unwrap().push((self.node, peer));
    }
}

#[test]
fn permanent_crash_makes_every_survivor_forget_the_peer() {
    let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.eval_every = 0;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![FaultOutage::new(2, 2.5, f64::INFINITY)]),
        ..FaultConfig::default()
    };
    let forgotten = Arc::new(Mutex::new(Vec::new()));
    let result = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (
                mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                Box::new(ForgetProbe {
                    node,
                    forgotten: Arc::clone(&forgotten),
                }) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(result.records.last().is_some_and(|r| r.crashes == 1));
    let seen = forgotten.lock().unwrap().clone();
    for survivor in [0usize, 1, 3] {
        assert!(
            seen.contains(&(survivor, 2)),
            "survivor {survivor} was never told to forget the dead peer: {seen:?}"
        );
    }
    assert!(
        !seen.iter().any(|&(node, _)| node == 2),
        "the dead node itself is not asked to forget"
    );
}

#[test]
fn warm_rejoin_after_a_mid_round_crash_resumes_cleanly() {
    // Uniform compute over slow links: every node's TrainDone fires at
    // t=1.0 but its Mix only after the serialized transfers, so a crash at
    // t=1.1 is guaranteed to land *between* make_outbound and aggregate —
    // the round is abandoned with the strategy's half-open state. The Warm
    // rejoin (the `FaultOutage` default) keeps that state, and the next
    // round's make_outbound must treat the stale pending round as an
    // abandoned handshake rather than a protocol violation that aborts the
    // whole run.
    use jwins_sim::{ComputeProfile, LinkProfile};
    let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.lr = 0.1;
    cfg.eval_every = 0;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile {
        compute: ComputeProfile::Uniform,
        links: LinkProfile::Uniform {
            latency_s: 0.02,
            bandwidth_bps: 1_000.0,
        },
    };
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![FaultOutage::new(1, 1.1, 2.0)]),
        ..FaultConfig::default()
    };
    let result = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), power_gossip(node))
        })
        .build()
        .unwrap()
        .run()
        .expect("a warm rejoin after a mid-round crash must not abort the run");
    assert_eq!(result.rounds_run, 6);
    let last = result.records.last().unwrap();
    assert_eq!(last.crashes, 1);
    assert_eq!(last.rejoins, 1);
    assert!(last.test_accuracy.is_finite());
}

mod half_handshake_faults {
    //! Strategy-level proptest: arbitrary per-direction message drops never
    //! panic, and a full blackout always converges back to the fresh
    //! planes, from which the edge re-pairs cleanly.

    use jwins::strategies::{PowerGossip, PowerGossipConfig, FRESH_VERSION, HISTORY_WINDOW};
    use jwins::strategy::{OutMessage, Outbound, ReceivedMessage, ShareStrategy};
    use proptest::prelude::*;

    fn params(dim: usize, phase: f32) -> Vec<f32> {
        (0..dim).map(|i| (i as f32 * 0.17 + phase).sin()).collect()
    }

    fn halves(
        a: &mut PowerGossip,
        b: &mut PowerGossip,
        round: usize,
        xa: &[f32],
        xb: &[f32],
    ) -> (OutMessage, OutMessage) {
        let Outbound::PerEdge(mut va) = a.make_outbound(round, xa, &[1]).unwrap() else {
            panic!("per-edge")
        };
        let Outbound::PerEdge(mut vb) = b.make_outbound(round, xb, &[0]).unwrap() else {
            panic!("per-edge")
        };
        (va.remove(0).unwrap(), vb.remove(0).unwrap())
    }

    fn aggregate_one(
        node: &mut PowerGossip,
        round: usize,
        x: &[f32],
        from: usize,
        msg: Option<&OutMessage>,
    ) -> Vec<f32> {
        let received: Vec<ReceivedMessage<'_>> = msg
            .iter()
            .map(|m| ReceivedMessage {
                from,
                round,
                weight: 0.5,
                edge_weight: 0.5,
                bytes: &m.bytes,
            })
            .collect();
        node.aggregate(round, x, 0.5, &received).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn dropped_halves_never_panic_and_converge_back_to_fresh(
            drops in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..20)
        ) {
            let config = PowerGossipConfig::global(1);
            let mut a = PowerGossip::new(config.clone(), 0, 7);
            let mut b = PowerGossip::new(config, 1, 7);
            let mut xa = params(49, 0.0);
            let mut xb = params(49, 0.9);
            a.init(&xa);
            b.init(&xb);
            let mut round = 0usize;
            // Arbitrary per-direction losses: whatever the pattern, no
            // panic and no non-finite parameter may ever appear.
            for &(deliver_ab, deliver_ba) in &drops {
                let (m_a, m_b) = halves(&mut a, &mut b, round, &xa, &xb);
                xa = aggregate_one(&mut a, round, &xa, 1, deliver_ba.then_some(&m_b));
                xb = aggregate_one(&mut b, round, &xb, 0, deliver_ab.then_some(&m_a));
                prop_assert!(xa.iter().chain(&xb).all(|v| v.is_finite()));
                round += 1;
            }
            // Full blackout past the history window: every outstanding
            // half-handshake expires and both sides must be back on the
            // deterministic fresh planes.
            for _ in 0..HISTORY_WINDOW + 1 {
                let _ = halves(&mut a, &mut b, round, &xa, &xb);
                xa = aggregate_one(&mut a, round, &xa, 1, None);
                xb = aggregate_one(&mut b, round, &xb, 0, None);
                round += 1;
            }
            prop_assert_eq!(a.edge_version(1), Some(FRESH_VERSION));
            prop_assert_eq!(b.edge_version(0), Some(FRESH_VERSION));
            // Connectivity returns: fresh pairs fresh and the warm chain
            // regrows in lockstep on both endpoints.
            for _ in 0..2 {
                let (m_a, m_b) = halves(&mut a, &mut b, round, &xa, &xb);
                xa = aggregate_one(&mut a, round, &xa, 1, Some(&m_b));
                xb = aggregate_one(&mut b, round, &xb, 0, Some(&m_a));
                round += 1;
            }
            prop_assert_eq!(a.edge_version(1), Some(2));
            prop_assert_eq!(b.edge_version(0), Some(2));
            prop_assert!(xa.iter().chain(&xb).all(|v| v.is_finite()));
        }
    }
}
