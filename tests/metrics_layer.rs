//! The metrics & critical-path layer regression suite.
//!
//! Extends the observer-effect contract of `tests/trace_determinism.rs` to
//! the `jwins_metrics` layer:
//!
//! 1. **Attachment is a bit-no-op.** Turning on `TrainConfig::metrics`
//!    (which rides the tracer as one more sink) must not change a single
//!    bit of any `RoundRecord`, at any worker thread count — while still
//!    producing the Prometheus/CSV exports.
//! 2. **The critical path is self-consistent.** Its segments tile the
//!    span `[0, bound]` exactly (durations sum to the reported
//!    time-to-accuracy bound) and the blame shares sum to 1.
//! 3. **Analysis is thread-invariant.** The rendered critical-path report
//!    and the registry's CSV time series are built from deterministic
//!    event fields only, so they are byte-identical across 1/2/8 worker
//!    threads for the same seed.
//!
//! The workload is the same chaos configuration the trace suite uses:
//! crashes, a rejoin, staleness decay, repair, stragglers and mid-round
//! checkpoints, so every registry counter is exercised.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_adversary::{AttackBehavior, AttackPlan, Robust};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultOutage, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_metrics::{CriticalPath, MetricsConfig, MetricsRegistry, DEFAULT_WINDOW_S};
use jwins_nn::models::mlp_classifier;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;
use jwins_topology::repair::RepairPolicy;
use jwins_trace::{MemorySink, TraceEvent};

const NODES: usize = 8;

fn chaos_config(threads: usize) -> TrainConfig {
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 6;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.threads = threads;
    cfg.execution = ExecutionMode::EventDriven;
    cfg.time_model.compute_s = 1.0;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 3.0, 0.002, 1.0e6);
    cfg.faults = FaultConfig {
        plan: FaultPlan::Scripted(vec![
            FaultOutage {
                rejoin: RejoinMode::Resync,
                ..FaultOutage::new(1, 2.5, 3.0)
            },
            FaultOutage::new(3, 7.5, f64::INFINITY),
        ]),
        staleness: StalenessPolicy::decay_after_rounds(1, 0.5),
    };
    cfg.repair = RepairPolicy::DegreePreserving;
    cfg.eval_interval_s = Some(1.5);
    cfg
}

/// The chaos workload with adversaries on top: a quarter of the cluster
/// sign-flips from the start, screened by a trimmed mean deep enough to
/// trim at degree 3.
fn byz_config(threads: usize) -> TrainConfig {
    let mut cfg = chaos_config(threads);
    cfg.attack = AttackPlan::RandomFraction {
        fraction: 0.25,
        from_s: 0.0,
        until_s: f64::INFINITY,
        behavior: AttackBehavior::SignFlip,
    };
    cfg.robust = Robust::TrimmedMean { trim: 0.34 };
    cfg
}

/// Runs `cfg` with an optional `TrainConfig::metrics` override and an
/// optional extra memory sink.
fn run_config(
    mut cfg: TrainConfig,
    metrics: Option<MetricsConfig>,
    memory: Option<MemorySink>,
) -> RunResult {
    if let Some(metrics) = metrics {
        cfg.metrics = metrics;
    }
    let data = cifar_like(&ImageConfig::tiny(), NODES, 2, 5);
    let mut builder = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(NODES, 3, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            let strategy: Box<dyn ShareStrategy> =
                Box::new(Jwins::new(JwinsConfig::paper_default(), 100 + node as u64));
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), strategy)
        });
    if let Some(memory) = memory {
        builder = builder.trace_sink(Box::new(memory));
    }
    builder.build().unwrap().run().unwrap()
}

/// Runs the honest chaos workload (the original suite's entry point).
fn run(threads: usize, metrics: Option<MetricsConfig>, memory: Option<MemorySink>) -> RunResult {
    run_config(chaos_config(threads), metrics, memory)
}

/// A per-test scratch path under the target-adjacent temp dir.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jwins-metrics-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Attaching the metrics layer through `TrainConfig::metrics` changes no
/// bit of any `RoundRecord`, at any thread count — and the export files
/// land with real content.
#[test]
fn metrics_attachment_is_a_bit_noop() {
    let plain = run(1, None, None);
    assert!(
        plain.records.last().is_some_and(|r| r.crashes >= 2),
        "non-degenerate workload"
    );
    for threads in [1usize, 2, 8] {
        let prom = scratch(&format!("attach-{threads}.prom"));
        let csv = scratch(&format!("attach-{threads}.csv"));
        let metrics = MetricsConfig {
            prometheus_path: Some(prom.to_string_lossy().into_owned()),
            csv_path: Some(csv.to_string_lossy().into_owned()),
            window_s: DEFAULT_WINDOW_S,
        };
        let with_metrics = run(threads, Some(metrics), None);
        plain.assert_bit_identical(
            &with_metrics,
            &format!("plain/1-thread vs metrics-attached/{threads}-thread"),
        );
        let prom_text = std::fs::read_to_string(&prom).expect("prometheus export written");
        assert!(
            prom_text.contains("jwins_node_bytes_sent_total{node=\"0\"}"),
            "export carries per-node series"
        );
        assert!(
            prom_text.contains("jwins_node_crashes_total"),
            "lifecycle counters exported"
        );
        let csv_text = std::fs::read_to_string(&csv).expect("csv export written");
        assert!(csv_text.starts_with("window_start_s,scope,id,metric,value\n"));
        assert!(csv_text.lines().count() > 10, "csv has a real time series");
    }
}

/// The critical path's segments tile `[0, bound]` exactly and the blame
/// shares sum to 1 — the self-consistency contract of the analyzer.
#[test]
fn critical_path_is_self_consistent() {
    let memory = MemorySink::new();
    let _ = run(1, None, Some(memory.clone()));
    let events = memory.events();
    let path = CriticalPath::analyze(&events, None).expect("path reconstructs");
    assert!(path.bound_ns > 0);
    assert_eq!(
        path.total_segment_ns(),
        path.bound_ns,
        "segments tile the whole span with no gap or overlap"
    );
    let share_sum: f64 = path.blame.iter().map(|b| b.share).sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-9,
        "blame shares sum to {share_sum}"
    );
    // Segments are chronological and contiguous.
    for pair in path.segments.windows(2) {
        assert_eq!(pair[0].end_ns, pair[1].start_ns, "contiguous tiling");
    }
    assert_eq!(path.segments.first().map(|s| s.start_ns), Some(0));
    assert_eq!(path.segments.last().map(|s| s.end_ns), Some(path.bound_ns));
    // Targeting an accuracy the run reaches moves the bound earlier (or
    // keeps it); the self-consistency invariants hold there too.
    let first_eval_acc = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Eval { accuracy, .. } => Some(*accuracy),
            _ => None,
        })
        .expect("run evaluates");
    let targeted = CriticalPath::analyze(&events, Some(first_eval_acc)).expect("targeted path");
    assert!(targeted.target_reached);
    assert!(targeted.bound_ns <= path.bound_ns);
    assert_eq!(targeted.total_segment_ns(), targeted.bound_ns);
}

/// The critical-path report and the registry CSV are byte-identical across
/// worker-thread counts: both consume only deterministic event fields.
#[test]
fn analysis_reports_are_thread_invariant() {
    let report = |threads: usize| -> (String, String) {
        let memory = MemorySink::new();
        let _ = run(threads, None, Some(memory.clone()));
        let events = memory.events();
        let path = CriticalPath::analyze(&events, None).expect("path reconstructs");
        let registry = MetricsRegistry::from_events(DEFAULT_WINDOW_S, &events);
        (path.render(), registry.to_csv())
    };
    let (render1, csv1) = report(1);
    let (render2, csv2) = report(2);
    let (render8, csv8) = report(8);
    assert!(!render1.is_empty() && !csv1.is_empty());
    assert_eq!(
        render1, render2,
        "critical-path report differs at 2 threads"
    );
    assert_eq!(
        render1, render8,
        "critical-path report differs at 8 threads"
    );
    assert_eq!(csv1, csv2, "metrics CSV differs at 2 threads");
    assert_eq!(csv1, csv8, "metrics CSV differs at 8 threads");
}

/// The registry folded from a live run agrees with the run's own record
/// stream on the cross-checkable totals.
#[test]
fn registry_totals_agree_with_round_records() {
    let memory = MemorySink::new();
    let result = run(1, None, Some(memory.clone()));
    let registry = MetricsRegistry::from_events(DEFAULT_WINDOW_S, &memory.events());
    let last = result.records.last().expect("records recorded");
    assert_eq!(u64::from(registry.run_facts().nodes), NODES as u64);
    assert_eq!(
        registry
            .node_stats()
            .values()
            .map(|n| n.crashes)
            .sum::<u64>(),
        last.crashes,
        "crash totals agree"
    );
    assert_eq!(
        registry
            .node_stats()
            .values()
            .map(|n| n.rejoins)
            .sum::<u64>(),
        last.rejoins,
        "rejoin totals agree"
    );
    assert_eq!(
        registry
            .node_stats()
            .values()
            .map(|n| n.msgs_expired)
            .sum::<u64>(),
        last.messages_expired,
        "expiry totals agree"
    );
    assert!(
        (registry.run_facts().final_accuracy - last.test_accuracy).abs() < 1e-12,
        "final accuracy agrees"
    );
}

/// An attacked run's injected/clipped counters reach both exports — the
/// Prometheus text carries per-node totals, the CSV carries the windowed
/// series — and both are byte-identical across worker thread counts once
/// the wall-clock side channel (`jwins_phase_wall_seconds`) is set aside.
#[test]
fn adversarial_counters_reach_both_exports_thread_invariantly() {
    let export = |threads: usize| -> (String, String, RunResult) {
        let memory = MemorySink::new();
        let result = run_config(byz_config(threads), None, Some(memory.clone()));
        let registry = MetricsRegistry::from_events(DEFAULT_WINDOW_S, &memory.events());
        let prom: String = registry
            .to_prometheus()
            .lines()
            .filter(|l| !l.contains("jwins_phase_wall_seconds"))
            .collect::<Vec<_>>()
            .join("\n");
        (prom, registry.to_csv(), result)
    };
    let (prom1, csv1, result) = export(1);
    let last = result.records.last().expect("evaluated");
    assert!(last.attacks_injected > 0, "attack plan never fired");
    assert!(last.mass_clipped > 0.0, "trimmed mean never trimmed");
    assert!(
        prom1.contains("jwins_node_attacks_injected_total"),
        "injection counter missing from Prometheus export"
    );
    assert!(
        prom1.contains("jwins_node_robust_clipped_total")
            && prom1.contains("jwins_node_robust_mass_clipped_total"),
        "robust counters missing from Prometheus export"
    );
    assert!(
        csv1.lines().any(|l| l.contains(",attacks_injected,")),
        "injection series missing from CSV export"
    );
    let (prom2, csv2, _) = export(2);
    let (prom8, csv8, _) = export(8);
    assert_eq!(prom1, prom2, "Prometheus export differs at 2 threads");
    assert_eq!(prom1, prom8, "Prometheus export differs at 8 threads");
    assert_eq!(csv1, csv2, "CSV export differs at 2 threads");
    assert_eq!(csv1, csv8, "CSV export differs at 8 threads");
}

/// Registry totals folded from an attacked trace agree with the run's own
/// records on the adversarial counters.
#[test]
fn adversarial_registry_totals_agree_with_round_records() {
    let memory = MemorySink::new();
    let result = run_config(byz_config(1), None, Some(memory.clone()));
    let registry = MetricsRegistry::from_events(DEFAULT_WINDOW_S, &memory.events());
    let last = result.records.last().expect("records recorded");
    assert_eq!(
        registry
            .node_stats()
            .values()
            .map(|n| n.attacks_injected)
            .sum::<u64>(),
        last.attacks_injected,
        "injection totals agree"
    );
    let mass: f64 = registry.node_stats().values().map(|n| n.mass_clipped).sum();
    assert!(
        (mass - last.mass_clipped).abs() < 1e-9,
        "clipped-mass totals agree: {mass} vs {}",
        last.mass_clipped
    );
    assert!(
        registry
            .node_stats()
            .values()
            .map(|n| n.robust_clipped)
            .sum::<u64>()
            > 0,
        "clip events were folded"
    );
}

/// The critical path still tiles `[0, bound]` exactly on an attacked
/// trace: `AttackInject`/`RobustClip` events enrich the stream without
/// breaking the analyzer's span accounting.
#[test]
fn critical_path_tiles_exactly_on_an_attacked_trace() {
    let memory = MemorySink::new();
    let _ = run_config(byz_config(1), None, Some(memory.clone()));
    let events = memory.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::AttackInject { .. })),
        "workload is actually adversarial"
    );
    let path = CriticalPath::analyze(&events, None).expect("path reconstructs");
    assert!(path.bound_ns > 0);
    assert_eq!(
        path.total_segment_ns(),
        path.bound_ns,
        "segments tile the whole span with no gap or overlap"
    );
    let share_sum: f64 = path.blame.iter().map(|b| b.share).sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-9,
        "blame shares sum to {share_sum}"
    );
    for pair in path.segments.windows(2) {
        assert_eq!(pair[0].end_ns, pair[1].start_ns, "contiguous tiling");
    }
}
