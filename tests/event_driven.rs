//! Integration tests for the event-driven simulation runtime.
//!
//! The two hard guarantees of `ExecutionMode::EventDriven`:
//!
//! 1. with a *degenerate* heterogeneity profile (uniform compute,
//!    instantaneous links) it reproduces the bulk-synchronous engine
//!    **bit-for-bit** — same accuracies, same losses, same traffic — for
//!    sparsifying strategies too, not just full sharing;
//! 2. with real heterogeneity it stays **deterministic**: replays from the
//!    same seed are identical, worker-thread count never changes results,
//!    and staleness appears exactly when links/compute make messages late.

use jwins::config::{ExecutionMode, TrainConfig};
use jwins::engine::Trainer;
use jwins::metrics::RunResult;
use jwins::strategies::{ChocoConfig, ChocoSgd, FullSharing, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::mlp_classifier;
use jwins_sim::{ComputeProfile, HeterogeneityProfile, LinkProfile};
use jwins_topology::dynamic::StaticTopology;

type StrategyFactory = fn(usize) -> Box<dyn ShareStrategy>;

fn run_once(
    execution: ExecutionMode,
    heterogeneity: HeterogeneityProfile,
    threads: usize,
    strategy: StrategyFactory,
) -> RunResult {
    let data = cifar_like(&ImageConfig::tiny(), 6, 2, 11);
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 8;
    cfg.lr = 0.1;
    cfg.eval_every = 2;
    cfg.threads = threads;
    cfg.execution = execution;
    cfg.heterogeneity = heterogeneity;
    Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(6, 2, 13).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |node| {
            (mlp_classifier(2 * 8 * 8, &[8], 4, 7), strategy(node))
        })
        .build()
        .unwrap()
        .run()
        .unwrap()
}

fn assert_bitwise_equal_modulo_time(sync: &RunResult, event: &RunResult) {
    assert_eq!(sync.rounds_run, event.rounds_run);
    assert_eq!(sync.total_traffic, event.total_traffic);
    assert_eq!(sync.records.len(), event.records.len());
    for (s, e) in sync.records.iter().zip(&event.records) {
        assert_eq!(s.round, e.round);
        assert_eq!(s.train_loss.to_bits(), e.train_loss.to_bits(), "train loss");
        assert_eq!(s.test_loss.to_bits(), e.test_loss.to_bits(), "test loss");
        assert_eq!(
            s.test_accuracy.to_bits(),
            e.test_accuracy.to_bits(),
            "accuracy"
        );
        assert_eq!(s.test_rmse.to_bits(), e.test_rmse.to_bits(), "rmse");
        assert_eq!(s.mean_alpha.to_bits(), e.mean_alpha.to_bits(), "alpha");
        assert_eq!(s.cum_bytes_per_node, e.cum_bytes_per_node);
        assert_eq!(s.cum_payload_per_node, e.cum_payload_per_node);
        assert_eq!(s.cum_metadata_per_node, e.cum_metadata_per_node);
        assert_eq!(e.mean_staleness_s, 0.0, "degenerate profile must be fresh");
        // sim_time_s intentionally differs: the barrier model charges
        // latency + max-bytes/bandwidth per round, the event clock charges
        // what its (here: instantaneous) links actually cost.
    }
}

fn full_sharing(_node: usize) -> Box<dyn ShareStrategy> {
    Box::new(FullSharing::new())
}

fn jwins_strategy(node: usize) -> Box<dyn ShareStrategy> {
    Box::new(Jwins::new(JwinsConfig::paper_default(), 900 + node as u64))
}

fn choco(_node: usize) -> Box<dyn ShareStrategy> {
    Box::new(ChocoSgd::new(ChocoConfig::budget_20()))
}

#[test]
fn degenerate_event_mode_reproduces_sync_for_full_sharing() {
    let sync = run_once(
        ExecutionMode::BulkSynchronous,
        HeterogeneityProfile::default(),
        1,
        full_sharing,
    );
    let event = run_once(
        ExecutionMode::EventDriven,
        HeterogeneityProfile::default(),
        1,
        full_sharing,
    );
    assert_bitwise_equal_modulo_time(&sync, &event);
}

#[test]
fn degenerate_event_mode_reproduces_sync_for_jwins() {
    let sync = run_once(
        ExecutionMode::BulkSynchronous,
        HeterogeneityProfile::default(),
        1,
        jwins_strategy,
    );
    let event = run_once(
        ExecutionMode::EventDriven,
        HeterogeneityProfile::default(),
        1,
        jwins_strategy,
    );
    assert_bitwise_equal_modulo_time(&sync, &event);
}

#[test]
fn degenerate_event_mode_reproduces_sync_for_choco() {
    let sync = run_once(
        ExecutionMode::BulkSynchronous,
        HeterogeneityProfile::default(),
        1,
        choco,
    );
    let event = run_once(
        ExecutionMode::EventDriven,
        HeterogeneityProfile::default(),
        1,
        choco,
    );
    assert_bitwise_equal_modulo_time(&sync, &event);
}

/// A zero-variance profile that is *not* the `Default` value must still
/// degrade exactly: degeneracy is a property of the physics, not of which
/// enum variant was picked.
#[test]
fn zero_variance_stragglers_also_degrade_exactly() {
    let profile = HeterogeneityProfile {
        compute: ComputeProfile::Stragglers {
            fraction: 0.0,
            slowdown: 9.0,
        },
        links: LinkProfile::Instant,
    };
    assert!(profile.is_degenerate());
    let sync = run_once(
        ExecutionMode::BulkSynchronous,
        HeterogeneityProfile::default(),
        1,
        full_sharing,
    );
    let event = run_once(ExecutionMode::EventDriven, profile, 1, full_sharing);
    assert_bitwise_equal_modulo_time(&sync, &event);
}

#[test]
fn heterogeneous_runs_replay_identically_across_seed_and_threads() {
    let profile = || HeterogeneityProfile {
        compute: ComputeProfile::LogNormal { sigma: 0.6 },
        links: LinkProfile::LogNormal {
            latency_s: 0.004,
            bandwidth_bps: 2.0e6,
            sigma: 0.5,
        },
    };
    let a = run_once(ExecutionMode::EventDriven, profile(), 1, jwins_strategy);
    let b = run_once(ExecutionMode::EventDriven, profile(), 1, jwins_strategy);
    let c = run_once(ExecutionMode::EventDriven, profile(), 4, jwins_strategy);
    for other in [&b, &c] {
        assert_eq!(a.rounds_run, other.rounds_run);
        assert_eq!(a.total_traffic, other.total_traffic);
        assert_eq!(a.records.len(), other.records.len());
        for (x, y) in a.records.iter().zip(&other.records) {
            assert_eq!(x.test_accuracy.to_bits(), y.test_accuracy.to_bits());
            assert_eq!(x.test_loss.to_bits(), y.test_loss.to_bits());
            assert_eq!(x.train_loss.to_bits(), y.train_loss.to_bits());
            assert_eq!(x.sim_time_s.to_bits(), y.sim_time_s.to_bits());
            assert_eq!(x.mean_staleness_s.to_bits(), y.mean_staleness_s.to_bits());
        }
    }
}

#[test]
fn slow_links_produce_staleness_and_stretch_the_clock() {
    // 64 kB/s links: a full model broadcast takes longer than a round's
    // compute, so mixes consume messages from earlier rounds.
    let slow_links = HeterogeneityProfile {
        compute: ComputeProfile::Uniform,
        links: LinkProfile::Uniform {
            latency_s: 0.02,
            bandwidth_bps: 64_000.0,
        },
    };
    let fresh = run_once(
        ExecutionMode::EventDriven,
        HeterogeneityProfile::default(),
        1,
        full_sharing,
    );
    let stale = run_once(ExecutionMode::EventDriven, slow_links, 1, full_sharing);
    let fresh_last = fresh.final_record().unwrap();
    let stale_last = stale.final_record().unwrap();
    assert_eq!(fresh_last.mean_staleness_s, 0.0);
    assert!(
        stale_last.mean_staleness_s > 0.0,
        "thin links must leave messages in flight"
    );
    assert!(
        stale_last.sim_time_s > fresh_last.sim_time_s,
        "transfer time must show up on the clock"
    );
    // Async gossip drops nothing: every sent message is still accounted.
    assert_eq!(
        stale.total_traffic.messages_sent,
        fresh.total_traffic.messages_sent
    );
}

#[test]
fn event_mode_supports_early_stop_on_target() {
    let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
    let mut cfg = TrainConfig::quick_test();
    cfg.rounds = 60;
    cfg.lr = 0.1;
    cfg.eval_every = 1;
    cfg.target_accuracy = Some(0.3);
    cfg.execution = ExecutionMode::EventDriven;
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 2.0, 0.001, 1.0e6);
    let result = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
        .test_set(data.test)
        .nodes(data.node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .unwrap()
        .run()
        .unwrap();
    let hit = result.reached_target.expect("tiny task reaches 30%");
    assert!(result.rounds_run < 60, "stopped at {}", result.rounds_run);
    assert_eq!(hit.round + 1, result.rounds_run);
    assert!(hit.sim_time_s > 0.0);
}
