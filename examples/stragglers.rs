//! Straggler demo: the same training run on a barrier vs the event-driven
//! runtime when a quarter of the cluster computes 4× slower.
//!
//! ```sh
//! cargo run --release --example stragglers
//! cargo run --release --example stragglers -- --trace /tmp/stragglers
//! cargo run --release --example stragglers -- --transport channel
//! cargo run --release --example stragglers -- --nodes 1000
//! ```
//!
//! Under the barrier, every round waits for the slowest node, so the whole
//! cluster runs at straggler speed. Under event-driven async gossip each
//! node keeps its own clock and mixes whatever neighbour models have
//! arrived — the fast majority stops paying for the slow minority, at the
//! price of mixing slightly stale information (reported per evaluation).
//!
//! With `--trace <prefix>` each mode writes its structured trace to
//! `<prefix>-<mode>.jsonl`; compare the two with the `trace_report` bin to
//! see the stragglers' compute share and where mixing staleness comes from.
//! With `--metrics <prefix>` each mode also exports its metrics
//! aggregation to `<prefix>-<mode>.prom` and `<prefix>-<mode>.csv` through
//! the in-engine `MetricsSink` (`TrainConfig::metrics`).
//!
//! With `--transport channel` the same config runs on real OS threads
//! instead: one thread per node, framed messages over in-process channels,
//! wall-clock time. Straggler *injection* does not apply there — the real
//! host is the time model — so the run reports measured flight latency and
//! wall-clock rounds rather than the barrier-vs-async comparison.
//!
//! With `--nodes N` the cluster scales past the default 8 nodes (the
//! sharded event engine handles thousands; above 16 nodes the per-node
//! datasets cycle through 16 templates so data generation stays cheap).

use jwins::config::{ChannelTransportConfig, ExecutionMode, TrainConfig, TransportKind};
use jwins::engine::Trainer;
use jwins::strategies::FullSharing;
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_net::TimeModel;
use jwins_nn::models::{mlp_classifier, ClassSample};
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;

use jwins_repro::smoke;

/// The value of a `--<name> <prefix>` flag, if given.
fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == name {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value")),
            );
        }
    }
    None
}

/// The node count from `--nodes N`, defaulting to `default`.
fn node_count(default: usize) -> usize {
    let nodes = flag_value("--nodes").map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--nodes {v:?} is not a node count"))
    });
    assert!(
        nodes >= 5,
        "--nodes needs at least 5 nodes for this topology"
    );
    nodes
}

/// Per-node train shards plus the shared test set. Above 16 nodes the
/// datasets cycle through 16 templates, so `--nodes 10000` costs the same
/// data generation as 16.
fn node_data(nodes: usize, seed: u64) -> (Vec<Vec<ClassSample>>, Vec<ClassSample>) {
    let templates = nodes.min(16);
    let data = cifar_like(&ImageConfig::tiny(), templates, 2, seed);
    let train = (0..nodes)
        .map(|i| data.node_train[i % templates].clone())
        .collect();
    (train, data.test)
}

/// A feasible gossip degree: 3-regular graphs need an even `n * 3`.
fn degree(nodes: usize) -> usize {
    if nodes.is_multiple_of(2) {
        3
    } else {
        4
    }
}

fn run(
    nodes: usize,
    mode: ExecutionMode,
    trace_jsonl: Option<String>,
    metrics_prefix: Option<&str>,
) -> jwins::metrics::RunResult {
    let (node_train, test) = node_data(nodes, 42);
    let mut cfg = TrainConfig::new(if smoke() { 6 } else { 30 });
    cfg.local_steps = 2;
    cfg.batch_size = 8;
    cfg.lr = 0.1;
    cfg.eval_every = if smoke() { 2 } else { 5 };
    cfg.eval_test_samples = 128;
    cfg.execution = mode;
    match mode {
        ExecutionMode::BulkSynchronous => {
            // The barrier waits for the 4× straggler every round.
            cfg.time_model = TimeModel::edge_100mbit(0.05 * 4.0);
        }
        ExecutionMode::EventDriven => {
            cfg.time_model = TimeModel::edge_100mbit(0.05);
            // A quarter of the nodes are 4× slower; 100 Mbit/s links, 5 ms latency.
            cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 4.0, 0.005, 100.0e6 / 8.0);
        }
        _ => unreachable!("example covers both execution modes"),
    }
    cfg.trace.jsonl_path = trace_jsonl;
    if let Some(prefix) = metrics_prefix {
        cfg.metrics.prometheus_path = Some(format!("{prefix}.prom"));
        cfg.metrics.csv_path = Some(format!("{prefix}.csv"));
    }
    let trainer = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(nodes, degree(nodes), 7).expect("feasible graph"))
        .test_set(test)
        .nodes(node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[16], 4, 42),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment");
    trainer.run().expect("run completes")
}

/// The same cluster on the real-concurrency channel backend: no simulated
/// stragglers (the host's actual scheduling jitter is the heterogeneity),
/// wall-clock time instead of virtual time.
fn run_channel(nodes: usize, trace_jsonl: Option<String>, metrics_prefix: Option<&str>) {
    let (node_train, test) = node_data(nodes, 42);
    let mut cfg = TrainConfig::new(if smoke() { 6 } else { 30 });
    cfg.local_steps = 2;
    cfg.batch_size = 8;
    cfg.lr = 0.1;
    cfg.eval_every = if smoke() { 2 } else { 5 };
    cfg.eval_test_samples = 128;
    cfg.transport = TransportKind::Channel(ChannelTransportConfig::default());
    cfg.trace.jsonl_path = trace_jsonl.clone();
    if let Some(prefix) = metrics_prefix {
        cfg.metrics.prometheus_path = Some(format!("{prefix}.prom"));
        cfg.metrics.csv_path = Some(format!("{prefix}.csv"));
    }
    let trainer = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(nodes, degree(nodes), 7).expect("feasible graph"))
        .test_set(test)
        .nodes(node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[16], 4, 42),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment");
    let result = trainer.run().expect("run completes");
    println!(
        "== real OS-thread channels ({nodes} node threads) ==\n\
         note: simulated stragglers/event-driven execution are virtual-time \
         features;\nthe real backend measures the host instead of modelling it.\n"
    );
    println!("round  accuracy  wall-time[s]  staleness[s]");
    for r in &result.records {
        println!(
            "{:>5}  {:>8.3}  {:>12.2}  {:>12.4}",
            r.round + 1,
            r.test_accuracy,
            r.sim_time_s,
            r.mean_staleness_s
        );
    }
    if let Some(latency) = result.measured_latency_s {
        println!(
            "\nmeasured mean flight latency: {:.3} ms — feed it back to the sim \
             oracle with `jwins::crosscheck::oracle_profile`",
            latency * 1e3
        );
    }
    if let Some(jsonl) = &trace_jsonl {
        println!(
            "trace written to {jsonl} (wall-clock stamps from concurrent \
             threads — summarize with `trace_report {jsonl}`, but `--check` \
             expects virtual-time monotonicity and does not apply)"
        );
    }
}

fn main() {
    const TARGET: f64 = 0.99;
    let prefix = flag_value("--trace");
    let metrics = flag_value("--metrics");
    let nodes = node_count(8);
    match flag_value("--transport").as_deref() {
        Some("channel") => {
            let jsonl = prefix.as_ref().map(|p| format!("{p}-channel.jsonl"));
            let metrics_prefix = metrics.as_ref().map(|p| format!("{p}-channel"));
            run_channel(nodes, jsonl, metrics_prefix.as_deref());
            return;
        }
        None | Some("sim") => {}
        Some(other) => panic!("--transport {other}: expected `sim` or `channel`"),
    }
    println!(
        "straggler cluster: {nodes} nodes, a quarter of them 4x slower, \
         100 Mbit/s links\n"
    );
    let mut time_to_target = Vec::new();
    for (name, slug, mode) in [
        (
            "barrier (waits for straggler)",
            "barrier",
            ExecutionMode::BulkSynchronous,
        ),
        (
            "event-driven async gossip",
            "async",
            ExecutionMode::EventDriven,
        ),
    ] {
        let jsonl = prefix.as_ref().map(|p| format!("{p}-{slug}.jsonl"));
        let metrics_prefix = metrics.as_ref().map(|p| format!("{p}-{slug}"));
        let result = run(nodes, mode, jsonl.clone(), metrics_prefix.as_deref());
        if let Some(jsonl) = &jsonl {
            println!("trace written to {jsonl} (inspect with `trace_report {jsonl}`)");
        }
        if let Some(p) = &metrics_prefix {
            println!("metrics exports written to {p}.prom and {p}.csv");
        }
        println!("== {name} ==");
        println!("round  accuracy  sim-time[s]  staleness[s]");
        for r in &result.records {
            println!(
                "{:>5}  {:>8.3}  {:>11.1}  {:>12.4}",
                r.round + 1,
                r.test_accuracy,
                r.sim_time_s,
                r.mean_staleness_s
            );
        }
        let hit = result
            .records
            .iter()
            .find(|r| r.test_accuracy >= TARGET)
            .map(|r| r.sim_time_s);
        match hit {
            Some(t) => println!(
                "time to {:.0}% accuracy: {t:.2} simulated seconds\n",
                TARGET * 100.0
            ),
            None => println!("never reached {:.0}% accuracy\n", TARGET * 100.0),
        }
        time_to_target.push(hit);
    }
    if let (Some(Some(sync_t)), Some(Some(async_t))) =
        (time_to_target.first(), time_to_target.get(1))
    {
        println!(
            "Same data, same links: async gossip reaches {:.0}% accuracy in \
             {async_t:.2}s vs {sync_t:.2}s behind the barrier ({:.1}x faster), \
             because fast nodes keep training instead of waiting for the \
             stragglers — at the price of mixing slightly stale models.",
            TARGET * 100.0,
            sync_t / async_t
        );
    }
}
