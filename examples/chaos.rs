//! Chaos demo: a 16-node asynchronous run where a quarter of the cluster
//! crashes mid-round and rejoins, with and without a staleness cap.
//!
//! ```sh
//! cargo run --release --example chaos
//! cargo run --release --example chaos -- --trace /tmp/chaos
//! cargo run --release --example chaos -- --transport channel
//! cargo run --release --example chaos -- --nodes 1000
//! ```
//!
//! The fault engine kills the victims' in-flight messages at the crash and
//! destroys deliveries to the dead hosts; survivors keep gossiping around
//! the hole. When the victims rejoin (warm, with their last model), their
//! now-ancient parameters re-enter the mix — unless a staleness cap drops
//! over-age messages and renormalizes their weight into the self-weight.
//! The run prints each evaluation (crash/rejoin counters included) and the
//! simulated time to a target accuracy for both policies.
//!
//! With `--trace <prefix>` each policy's run writes its full structured
//! trace to `<prefix>-<policy>.jsonl` (summarize or validate it with the
//! `trace_report` bin), and the example prints the flight-recorder tail —
//! the last events before the run ended, the same buffer a panicking run
//! dumps to stderr. With `--metrics <prefix>` each run also exports its
//! metrics aggregation to `<prefix>-<policy>.prom` (Prometheus text) and
//! `<prefix>-<policy>.csv` (windowed time series) via the in-engine
//! `MetricsSink` — the `TrainConfig::metrics` path, proven a bit-no-op by
//! `tests/metrics_layer.rs`.
//!
//! With `--transport channel` the cluster runs on real OS threads (one per
//! node) instead of the virtual-time sim. Fault injection, simulated
//! stragglers and the event-driven clock are virtual-time features the
//! real backend rejects, so they are dropped (with a printed note): the
//! run shows the same 16-node gossip under real concurrency, measured
//! flight latency included.
//!
//! With `--nodes N` the cluster scales past the default 16 nodes — the
//! correlated outage still takes out a quarter of whatever is running.
//! Above 16 nodes the per-node datasets cycle through 16 templates so
//! data generation stays cheap at any scale.

use jwins::config::{ChannelTransportConfig, ExecutionMode, TrainConfig, TransportKind};
use jwins::engine::Trainer;
use jwins::strategies::FullSharing;
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_fault::{FaultConfig, FaultPlan, RejoinMode, StalenessPolicy};
use jwins_nn::models::{mlp_classifier, ClassSample};
use jwins_sim::HeterogeneityProfile;
use jwins_topology::dynamic::StaticTopology;

use jwins_repro::smoke;
use jwins_trace::FlightRecorder;

/// The value of a `--<name> <prefix>` flag, if given.
fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == name {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value")),
            );
        }
    }
    None
}

/// The node count from `--nodes N`, defaulting to `default`.
fn node_count(default: usize) -> usize {
    let nodes = flag_value("--nodes").map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("--nodes {v:?} is not a node count"))
    });
    assert!(
        nodes >= 5,
        "--nodes needs at least 5 nodes for this topology"
    );
    nodes
}

/// Per-node train shards plus the shared test set. Above 16 nodes the
/// datasets cycle through 16 templates, so `--nodes 10000` costs the same
/// data generation as 16.
fn node_data(nodes: usize, seed: u64) -> (Vec<Vec<ClassSample>>, Vec<ClassSample>) {
    let templates = nodes.min(16);
    let data = cifar_like(&ImageConfig::tiny(), templates, 2, seed);
    let train = (0..nodes)
        .map(|i| data.node_train[i % templates].clone())
        .collect();
    (train, data.test)
}

fn run(
    nodes: usize,
    staleness: StalenessPolicy,
    trace_jsonl: Option<String>,
    metrics_prefix: Option<&str>,
    flight: Option<FlightRecorder>,
) -> jwins::metrics::RunResult {
    let (node_train, test) = node_data(nodes, 42);
    let mut cfg = TrainConfig::new(if smoke() { 8 } else { 30 });
    cfg.local_steps = 1;
    cfg.batch_size = 8;
    cfg.lr = 0.02;
    cfg.eval_every = 2;
    cfg.eval_test_samples = 128;
    cfg.time_model.compute_s = 1.0;
    cfg.execution = ExecutionMode::EventDriven;
    // 4 of 16 nodes are 4x slower; 100 Mbit/s links with 5 ms latency.
    cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 4.0, 0.005, 100.0e6 / 8.0);
    // A quarter of the cluster dies together at t = 6.5 s — mid-round for
    // fast (1 s/round) and slow (4 s/round) nodes alike — and rejoins warm
    // 8 s later with whatever model it crashed with.
    cfg.faults = FaultConfig {
        plan: FaultPlan::CorrelatedOutage {
            fraction: 0.25,
            at_s: 6.5,
            down_s: 8.0,
            rejoin: RejoinMode::Warm,
        },
        staleness,
    };
    cfg.trace.jsonl_path = trace_jsonl;
    if let Some(prefix) = metrics_prefix {
        cfg.metrics.prometheus_path = Some(format!("{prefix}.prom"));
        cfg.metrics.csv_path = Some(format!("{prefix}.csv"));
    }
    let mut builder = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(nodes, 4, 7).expect("feasible graph"))
        .test_set(test)
        .nodes(node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[16], 4, 42),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        });
    // A shared-handle flight recorder: the clone we keep sees everything
    // the attached sink recorded, so the tail can be printed post-run.
    if let Some(flight) = flight {
        builder = builder.trace_sink(Box::new(flight));
    }
    let trainer = builder.build().expect("valid experiment");
    trainer.run().expect("run completes")
}

/// The same 16-node cluster on real OS-thread channels. The fault engine,
/// straggler profile and event-driven clock are virtual-time features —
/// `TrainConfig::validate` rejects them on the real backend — so this arm
/// drops them and shows the gossip itself under real concurrency.
fn run_channel(nodes: usize, trace_jsonl: Option<String>, metrics_prefix: Option<&str>) {
    let (node_train, test) = node_data(nodes, 42);
    let mut cfg = TrainConfig::new(if smoke() { 8 } else { 30 });
    cfg.local_steps = 1;
    cfg.batch_size = 8;
    cfg.lr = 0.02;
    cfg.eval_every = 2;
    cfg.eval_test_samples = 128;
    cfg.transport = TransportKind::Channel(ChannelTransportConfig::default());
    cfg.trace.jsonl_path = trace_jsonl.clone();
    if let Some(prefix) = metrics_prefix {
        cfg.metrics.prometheus_path = Some(format!("{prefix}.prom"));
        cfg.metrics.csv_path = Some(format!("{prefix}.csv"));
    }
    let trainer = Trainer::builder(cfg)
        .topology(StaticTopology::random_regular(nodes, 4, 7).expect("feasible graph"))
        .test_set(test)
        .nodes(node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[16], 4, 42),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment");
    let result = trainer.run().expect("run completes");
    println!(
        "== real OS-thread channels ({nodes} node threads) ==\n\
         note: fault injection, simulated stragglers and the event-driven \
         clock are\nvirtual-time features — dropped on the real backend, \
         which measures the host\ninstead of modelling it.\n"
    );
    println!("round  accuracy  wall-time[s]  staleness[s]");
    for r in &result.records {
        println!(
            "{:>5}  {:>8.3}  {:>12.2}  {:>12.4}",
            r.round + 1,
            r.test_accuracy,
            r.sim_time_s,
            r.mean_staleness_s
        );
    }
    if let Some(latency) = result.measured_latency_s {
        println!(
            "\nmeasured mean flight latency: {:.3} ms — replay it in the sim \
             with `jwins::crosscheck::oracle_profile`",
            latency * 1e3
        );
    }
    if let Some(jsonl) = &trace_jsonl {
        println!(
            "trace written to {jsonl} (wall-clock stamps from concurrent \
             threads — summarize with `trace_report {jsonl}`, but `--check` \
             expects virtual-time monotonicity and does not apply)"
        );
    }
}

fn main() {
    const TARGET: f64 = 0.9;
    let prefix = flag_value("--trace");
    let metrics = flag_value("--metrics");
    let nodes = node_count(16);
    match flag_value("--transport").as_deref() {
        Some("channel") => {
            let jsonl = prefix.as_ref().map(|p| format!("{p}-channel.jsonl"));
            let metrics_prefix = metrics.as_ref().map(|p| format!("{p}-channel"));
            run_channel(nodes, jsonl, metrics_prefix.as_deref());
            return;
        }
        None | Some("sim") => {}
        Some(other) => panic!("--transport {other}: expected `sim` or `channel`"),
    }
    println!(
        "chaos cluster: {nodes} nodes, a quarter of them 4x slower, 100 Mbit/s \
         links;\na quarter of the cluster crashes at t=6.5s and rejoins at t=14.5s\n"
    );
    let mut time_to_target = Vec::new();
    for (name, slug, staleness) in [
        (
            "no staleness cap (mix anything)",
            "uncapped",
            StalenessPolicy::unbounded(),
        ),
        (
            "staleness cap k=2 (drop older)",
            "capped",
            StalenessPolicy::drop_after_rounds(2),
        ),
    ] {
        let jsonl = prefix.as_ref().map(|p| format!("{p}-{slug}.jsonl"));
        let metrics_prefix = metrics.as_ref().map(|p| format!("{p}-{slug}"));
        let flight = prefix
            .as_ref()
            .map(|_| FlightRecorder::with_byte_bound(2048));
        let result = run(
            nodes,
            staleness,
            jsonl.clone(),
            metrics_prefix.as_deref(),
            flight.clone(),
        );
        if let Some(p) = &metrics_prefix {
            println!("metrics exports written to {p}.prom and {p}.csv");
        }
        println!("== {name} ==");
        println!("round  accuracy  sim-time[s]  staleness[s]  crashes  rejoins  expired");
        for r in &result.records {
            println!(
                "{:>5}  {:>8.3}  {:>11.1}  {:>12.4}  {:>7}  {:>7}  {:>7}",
                r.round + 1,
                r.test_accuracy,
                r.sim_time_s,
                r.mean_staleness_s,
                r.crashes,
                r.rejoins,
                r.messages_expired
            );
        }
        let dropped = result.total_traffic.messages_dropped;
        let hit = result
            .records
            .iter()
            .find(|r| r.test_accuracy >= TARGET)
            .map(|r| r.sim_time_s);
        match hit {
            Some(t) => println!(
                "crash-killed messages: {dropped}; time to {:.0}% accuracy: \
                 {t:.2} simulated seconds\n",
                TARGET * 100.0
            ),
            None => println!(
                "crash-killed messages: {dropped}; never reached {:.0}% accuracy\n",
                TARGET * 100.0
            ),
        }
        if let (Some(jsonl), Some(flight)) = (&jsonl, &flight) {
            println!("full trace written to {jsonl} (inspect with `trace_report {jsonl}`)");
            let tail = flight.dump();
            let show = tail.len().min(5);
            println!(
                "flight-recorder tail ({} of {} retained events — what a \
                 panicking run would dump):",
                show,
                tail.len()
            );
            for event in &tail[tail.len() - show..] {
                println!("  {}", serde::json::to_string(event));
            }
            println!();
        }
        time_to_target.push(hit);
    }
    if let (Some(Some(uncapped)), Some(Some(capped))) =
        (time_to_target.first(), time_to_target.get(1))
    {
        println!(
            "Same crashes, same links: time to {:.0}% accuracy is {uncapped:.2}s \
             without a cap vs {capped:.2}s with k=2. The cap drops the rejoining \
             nodes' ancient models from the mix (weight renormalized into the \
             self-weight) — freshness it buys on hard non-IID tasks, information \
             it costs on easy ones. Sweep the trade with `cargo bench --bench \
             ext_staleness`.",
            TARGET * 100.0
        );
    }
}
