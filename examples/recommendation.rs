//! Decentralized recommendation via matrix factorization — the paper's
//! MovieLens workload shape.
//!
//! Users are grouped onto nodes (each node holds whole users, the LEAF-style
//! non-IID regime) and nodes collaboratively factorize the rating matrix
//! while sharing sparse wavelet coefficients.
//!
//! Run with: `cargo run --release --example recommendation`

use jwins::config::TrainConfig;
use jwins::engine::Trainer;
use jwins::strategies::{FullSharing, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::ratings::{movielens_like, RatingConfig};
use jwins_nn::models::MatrixFactorization;
use jwins_topology::dynamic::StaticTopology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 8;
    let cfg = RatingConfig::small();
    let data = movielens_like(&cfg, nodes, 11);
    println!(
        "dataset: {} users × {} items (rank-{} ground truth), {} test ratings",
        data.users,
        data.items,
        cfg.true_rank,
        data.partitioned.test.len()
    );

    // `JWINS_SMOKE=1` (the CI examples-smoke job) shrinks the run to seconds.
    let smoke = jwins_repro::smoke();
    let rounds = if smoke { 8 } else { 150 };
    let mut config = TrainConfig::new(rounds);
    config.local_steps = 3;
    config.batch_size = 16;
    config.lr = 0.3;
    config.eval_every = rounds.min(50);

    for use_jwins in [false, true] {
        let trainer = Trainer::builder(config.clone())
            .topology(StaticTopology::random_regular(nodes, 4, 5)?)
            .test_set(data.partitioned.test.clone())
            .nodes(data.partitioned.node_train.clone(), |node| {
                let model = MatrixFactorization::new(data.users, data.items, 8, 21);
                let strategy: Box<dyn ShareStrategy> = if use_jwins {
                    Box::new(Jwins::new(JwinsConfig::paper_default(), 50 + node as u64))
                } else {
                    Box::new(FullSharing::new())
                };
                (model, strategy)
            })
            .build()?;
        let result = trainer.run()?;
        let last = result.final_record().expect("evaluated");
        println!(
            "{:<14} test RMSE {:.3}  within-half-star {:4.1}%  sent/node {:>7.2} MiB",
            result.strategy,
            last.test_rmse,
            last.test_accuracy * 100.0,
            last.cum_bytes_per_node / (1024.0 * 1024.0)
        );
    }
    Ok(())
}
