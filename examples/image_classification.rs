//! Decentralized image classification with GN-LeNet on label-sharded
//! non-IID data — the paper's CIFAR-10 workload shape.
//!
//! Compares JWINS, random sampling (budget-matched at 37%) and full sharing
//! over a 4-regular graph, printing learning curves and network usage.
//!
//! Run with: `cargo run --release --example image_classification`

use jwins::config::TrainConfig;
use jwins::engine::Trainer;
use jwins::strategies::{FullSharing, Jwins, JwinsConfig, RandomSampling};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::gn_lenet;
use jwins_topology::dynamic::StaticTopology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 12;
    let mut img = ImageConfig::cifar_small();
    img.train_per_unit = 96; // keep the example snappy
    let data = cifar_like(&img, nodes, 2, 1);
    println!(
        "dataset: {} classes, {} train samples across {nodes} nodes (2 shards each), {} test",
        img.classes,
        data.train_len(),
        data.test.len()
    );

    // `JWINS_SMOKE=1` (the CI examples-smoke job) shrinks the run to seconds.
    let smoke = jwins_repro::smoke();
    let rounds = if smoke { 6 } else { 100 };
    let mut config = TrainConfig::new(rounds);
    config.local_steps = 2;
    config.batch_size = 8;
    config.lr = 0.08;
    config.eval_every = rounds.min(25);
    config.eval_test_samples = 160;

    for which in ["full-sharing", "random-sampling", "jwins"] {
        let trainer = Trainer::builder(config.clone())
            .topology(StaticTopology::random_regular(nodes, 4, 3)?)
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                let model = gn_lenet(img.channels, img.height, img.width, img.classes, 8, 5);
                let strategy: Box<dyn ShareStrategy> = match which {
                    "full-sharing" => Box::new(FullSharing::new()),
                    "random-sampling" => Box::new(RandomSampling::new(0.37, config.seed)),
                    _ => Box::new(Jwins::new(JwinsConfig::paper_default(), 77 + node as u64)),
                };
                (model, strategy)
            })
            .build()?;
        let result = trainer.run()?;
        println!("\n== {which} ==");
        for r in &result.records {
            println!(
                "  round {:>4}: accuracy {:5.1}%  test loss {:.3}  sent/node {:>7.2} MiB",
                r.round + 1,
                r.test_accuracy * 100.0,
                r.test_loss,
                r.cum_bytes_per_node / (1024.0 * 1024.0)
            );
        }
    }
    Ok(())
}
