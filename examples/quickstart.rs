//! Quickstart: train a small model decentralized with JWINS and compare the
//! bytes on the wire against full-sharing D-PSGD.
//!
//! Run with: `cargo run --release --example quickstart`

use jwins::config::TrainConfig;
use jwins::engine::Trainer;
use jwins::strategies::{FullSharing, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::mlp_classifier;
use jwins_topology::dynamic::StaticTopology;

use jwins_repro::smoke;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 nodes, 4-regular random graph, label-sharded non-IID data.
    let nodes = 8;
    let data = cifar_like(&ImageConfig::tiny(), nodes, 2, 42);
    let features = ImageConfig::tiny().pixels();
    let classes = ImageConfig::tiny().classes;

    let rounds = if smoke() { 6 } else { 60 };
    let mut config = TrainConfig::new(rounds);
    config.local_steps = 2;
    config.batch_size = 8;
    config.lr = 0.1;
    config.eval_every = rounds / 3;

    let mut results = Vec::new();
    for use_jwins in [false, true] {
        let trainer = Trainer::builder(config.clone())
            .topology(StaticTopology::random_regular(nodes, 4, 7)?)
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                let model = mlp_classifier(features, &[32], classes, 42);
                let strategy: Box<dyn ShareStrategy> = if use_jwins {
                    Box::new(Jwins::new(JwinsConfig::paper_default(), 1000 + node as u64))
                } else {
                    Box::new(FullSharing::new())
                };
                (model, strategy)
            })
            .build()?;
        let result = trainer.run()?;
        println!(
            "{:<14} final accuracy {:5.1}%  total sent {:>8.2} MiB",
            result.strategy,
            result.final_accuracy() * 100.0,
            result.total_traffic.bytes_sent as f64 / (1024.0 * 1024.0),
        );
        results.push(result);
    }

    let full = &results[0];
    let jwins = &results[1];
    let savings = 100.0
        * (1.0 - jwins.total_traffic.bytes_sent as f64 / full.total_traffic.bytes_sent as f64);
    println!("\nJWINS network savings vs full-sharing: {savings:.1}%");
    println!(
        "accuracy gap: {:+.1} percentage points",
        (jwins.final_accuracy() - full.final_accuracy()) * 100.0
    );
    Ok(())
}
