//! Node churn: decentralized training while nodes leave and rejoin.
//!
//! The paper argues JWINS is "flexible to nodes leaving and joining" because
//! it keeps no per-neighbour replicas (§V). This example runs the same
//! workload three ways — no churn, random per-round dropout, and a scripted
//! outage — and shows training survives all of them, with CHOCO-SGD's
//! error-feedback state degrading where JWINS does not.
//!
//! Run with: `cargo run --release --example node_churn`

use jwins::config::TrainConfig;
use jwins::cutoff::AlphaDistribution;
use jwins::engine::Trainer;
use jwins::participation::{AlwaysOn, Outage, ParticipationModel, RandomDropout, ScriptedOutages};
use jwins::strategies::{ChocoConfig, ChocoSgd, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::mlp_classifier;
use jwins_topology::dynamic::StaticTopology;

use jwins_repro::smoke;

fn run(
    participation: impl ParticipationModel + 'static,
    use_jwins: bool,
) -> Result<f64, Box<dyn std::error::Error>> {
    let nodes = 8;
    let data = cifar_like(&ImageConfig::tiny(), nodes, 2, 42);
    let features = ImageConfig::tiny().pixels();
    let classes = ImageConfig::tiny().classes;

    let mut config = TrainConfig::new(if smoke() { 12 } else { 80 });
    config.local_steps = 2;
    config.batch_size = 8;
    config.lr = 0.1;
    config.eval_every = 0; // evaluate at the end only

    let trainer = Trainer::builder(config)
        .topology(StaticTopology::random_regular(nodes, 4, 7)?)
        .participation(participation)
        .test_set(data.test.clone())
        .nodes(data.node_train.clone(), |node| {
            let model = mlp_classifier(features, &[32], classes, 42);
            let strategy: Box<dyn ShareStrategy> = if use_jwins {
                Box::new(Jwins::new(
                    JwinsConfig::with_alpha(AlphaDistribution::budget_20()),
                    1000 + node as u64,
                ))
            } else {
                Box::new(ChocoSgd::new(ChocoConfig::budget_20()))
            };
            (model, strategy)
        })
        .build()?;
    Ok(trainer.run()?.final_accuracy())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One node disappears for the middle half of the run, another flaps
    // (outage rounds scale with the smoke-shortened run).
    let scripted = if smoke() {
        ScriptedOutages::default()
            .with_outage(Outage::new(3, 3, 9))
            .with_outage(Outage::new(5, 4, 5))
            .with_outage(Outage::new(5, 7, 8))
    } else {
        ScriptedOutages::default()
            .with_outage(Outage::new(3, 20, 60))
            .with_outage(Outage::new(5, 30, 35))
            .with_outage(Outage::new(5, 45, 50))
    };

    println!(
        "{:<24} {:>12} {:>12}",
        "participation", "jwins@20%", "choco@20%"
    );
    for (name, jwins_acc, choco_acc) in [
        ("always-on", run(AlwaysOn, true)?, run(AlwaysOn, false)?),
        (
            "30% random dropout",
            run(RandomDropout::new(0.3, 9), true)?,
            run(RandomDropout::new(0.3, 9), false)?,
        ),
        (
            "scripted outages",
            run(scripted.clone(), true)?,
            run(scripted.clone(), false)?,
        ),
    ] {
        println!(
            "{name:<24} {:>11.1}% {:>11.1}%",
            jwins_acc * 100.0,
            choco_acc * 100.0
        );
    }
    println!("\nJWINS keeps no per-neighbour state, so absent nodes simply rejoin;");
    println!("CHOCO's neighbour aggregate goes stale every round a message is missed.");
    Ok(())
}
