//! Byzantine demo: a 16-node cluster where a quarter of the nodes
//! sign-flip everything they share, defended (or not) by a robust
//! aggregation rule at the mixing layer.
//!
//! ```sh
//! cargo run --release --example byzantine
//! cargo run --release --example byzantine -- --trace /tmp/byz
//! ```
//!
//! The attack plan marks a seeded 25% of the cluster Byzantine for the
//! whole run; each attacker's outgoing messages are perturbed at build
//! time (its own training stays honest, so the damage travels only over
//! the wire). The example runs the same cluster three times — plain
//! averaging, coordinate-wise trimmed mean, coordinate-wise median — and
//! prints each evaluation with the injected-message and screened-mass
//! counters, then the final accuracy side by side.
//!
//! With `--trace <prefix>` each run writes its structured trace to
//! `<prefix>-<rule>.jsonl` (inspect with the `trace_report` bin; the
//! `AttackInject`/`RobustClip` events mark every perturbed message and
//! every screening aggregation).

use jwins::config::TrainConfig;
use jwins::engine::Trainer;
use jwins::strategies::FullSharing;
use jwins::strategy::ShareStrategy;
use jwins_adversary::{AttackBehavior, AttackPlan, Robust};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::mlp_classifier;
use jwins_topology::dynamic::DynamicRegular;

use jwins_repro::smoke;

/// The value of a `--<name> <prefix>` flag, if given.
fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == name {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a path prefix")),
            );
        }
    }
    None
}

fn run(robust: Robust, trace_jsonl: Option<String>) -> jwins::metrics::RunResult {
    let nodes = 16;
    let data = cifar_like(&ImageConfig::tiny(), nodes, 2, 42);
    let mut cfg = TrainConfig::new(if smoke() { 6 } else { 24 });
    cfg.local_steps = 1;
    cfg.batch_size = 8;
    cfg.lr = 0.05;
    cfg.eval_every = 2;
    cfg.eval_test_samples = 128;
    // A quarter of the cluster, drawn from the run seed, flips the sign of
    // every parameter it shares, from the first round to the last.
    cfg.attack = AttackPlan::RandomFraction {
        fraction: 0.25,
        from_s: 0.0,
        until_s: f64::INFINITY,
        behavior: AttackBehavior::SignFlip,
    };
    cfg.robust = robust;
    cfg.trace.jsonl_path = trace_jsonl;
    let trainer = Trainer::builder(cfg)
        // Re-randomized each round so no honest node is stuck next to more
        // attackers than the trim depth covers.
        .topology(DynamicRegular::new(nodes, 10, 7).expect("feasible graph"))
        .test_set(data.test)
        .nodes(data.node_train, |_| {
            (
                mlp_classifier(2 * 8 * 8, &[16], 4, 42),
                Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
            )
        })
        .build()
        .expect("valid experiment");
    trainer.run().expect("run completes")
}

fn main() {
    println!(
        "byzantine cluster: 16 nodes on a per-round random 10-regular graph;\n\
         a seeded 25% sign-flip everything they share, all run long\n"
    );
    let prefix = flag_value("--trace");
    let mut finals = Vec::new();
    for (name, slug, rule) in [
        ("plain averaging (undefended)", "none", Robust::None),
        (
            "trimmed mean (trim 0.45)",
            "trimmed",
            Robust::TrimmedMean { trim: 0.45 },
        ),
        ("coordinate-wise median", "median", Robust::Median),
    ] {
        let jsonl = prefix.as_ref().map(|p| format!("{p}-{slug}.jsonl"));
        let result = run(rule, jsonl.clone());
        println!("== {name} ==");
        println!("round  accuracy  injected  mass-clipped");
        for r in &result.records {
            println!(
                "{:>5}  {:>8.3}  {:>8}  {:>12.3}",
                r.round + 1,
                r.test_accuracy,
                r.attacks_injected,
                r.mass_clipped
            );
        }
        let last = result.final_record().expect("evaluated");
        println!("final accuracy: {:.1}%", last.test_accuracy * 100.0);
        if let Some(jsonl) = &jsonl {
            println!("full trace written to {jsonl} (inspect with `trace_report {jsonl}`)");
        }
        println!();
        finals.push(last.test_accuracy);
    }
    if let [plain, trimmed, median] = finals[..] {
        println!(
            "Same attackers, same graph: plain averaging ends at {:.1}% while \
             trimmed mean holds {:.1}% and median {:.1}%. The sign-flipped \
             contributions are coordinate extremes once the honest cluster \
             tightens, so rank-based screening removes exactly the adversarial \
             tail. Sweep fractions, rules and strategies with `cargo bench \
             --bench ext_byzantine`.",
            plain * 100.0,
            trimmed * 100.0,
            median * 100.0
        );
    }
}
