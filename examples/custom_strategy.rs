//! Extending the library: plugging a custom sharing strategy into the
//! engine.
//!
//! The paper stresses that JWINS "is modular, easily extensible, and can
//! support new ... compression techniques by plugging other modules in"
//! (§IV-A). This example demonstrates the Rust equivalent: implementing
//! [`ShareStrategy`] from scratch — here signSGD-style 1-bit sharing, where
//! each round broadcasts only the *signs* of the model change plus one
//! magnitude scalar — and running it unmodified through the same engine,
//! topology, and byte meter as JWINS.
//!
//! Run with: `cargo run --release --example custom_strategy`

use jwins::average::PartialAverager;
use jwins::config::TrainConfig;
use jwins::engine::Trainer;
use jwins::strategies::{FullSharing, Jwins, JwinsConfig};
use jwins::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use jwins::{JwinsError, Result as JwinsResult};
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_net::ByteBreakdown;
use jwins_nn::models::mlp_classifier;
use jwins_topology::dynamic::StaticTopology;

/// signSGD-style sharing: one bit per parameter plus a shared magnitude.
///
/// The broadcast is the sign vector of the per-round model change, scaled by
/// the mean |change|; receivers apply the reconstructed change to their copy
/// of the sender's last state — here approximated by averaging the
/// sign-reconstructed *models*, which keeps the example self-contained.
#[derive(Debug)]
struct SignSharing {
    round_start: Vec<f32>,
    pending_round: Option<usize>,
    dim: usize,
}

impl SignSharing {
    fn new() -> Self {
        Self {
            round_start: Vec::new(),
            pending_round: None,
            dim: 0,
        }
    }
}

impl ShareStrategy for SignSharing {
    fn name(&self) -> &'static str {
        "sign-1bit"
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
        self.round_start = params.to_vec();
        self.pending_round = None;
    }

    fn make_message(&mut self, round: usize, params: &[f32]) -> JwinsResult<OutMessage> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        // Magnitude scalar: mean absolute parameter value.
        let scale = params.iter().map(|v| f64::from(v.abs())).sum::<f64>() / self.dim.max(1) as f64;
        let mut bytes = Vec::with_capacity(4 + self.dim.div_ceil(8));
        bytes.extend_from_slice(&(scale as f32).to_le_bytes());
        let mut acc = 0u8;
        for (k, v) in params.iter().enumerate() {
            if *v >= 0.0 {
                acc |= 1 << (k % 8);
            }
            if k % 8 == 7 {
                bytes.push(acc);
                acc = 0;
            }
        }
        if !self.dim.is_multiple_of(8) {
            bytes.push(acc);
        }
        let breakdown = ByteBreakdown {
            payload: bytes.len() - 4,
            metadata: 4,
        };
        self.pending_round = Some(round);
        Ok(OutMessage::new(bytes, breakdown))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> JwinsResult<Vec<f32>> {
        match self.pending_round.take() {
            Some(r) if r == round => {}
            _ => return Err(JwinsError::Protocol("aggregate out of order")),
        }
        let mut avg = PartialAverager::new(params, self_weight);
        for msg in received {
            if msg.bytes.len() < 4 + self.dim.div_ceil(8) {
                return Err(JwinsError::Protocol("truncated sign message"));
            }
            let scale =
                f32::from_le_bytes([msg.bytes[0], msg.bytes[1], msg.bytes[2], msg.bytes[3]]);
            if !scale.is_finite() || scale < 0.0 {
                return Err(JwinsError::Protocol("invalid magnitude scalar"));
            }
            let signs = &msg.bytes[4..];
            let reconstructed: Vec<f32> = (0..self.dim)
                .map(|k| {
                    let positive = signs[k / 8] & (1 << (k % 8)) != 0;
                    if positive {
                        scale
                    } else {
                        -scale
                    }
                })
                .collect();
            avg.add_dense(&reconstructed, msg.weight);
        }
        let next = avg.finish();
        self.round_start = next.clone();
        Ok(next)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 8;
    let data = cifar_like(&ImageConfig::tiny(), nodes, 2, 42);
    let features = ImageConfig::tiny().pixels();
    let classes = ImageConfig::tiny().classes;

    // `JWINS_SMOKE=1` (the CI examples-smoke job) shrinks the run to seconds.
    let smoke = jwins_repro::smoke();
    let mut config = TrainConfig::new(if smoke { 6 } else { 60 });
    config.local_steps = 2;
    config.batch_size = 8;
    config.lr = 0.1;
    config.eval_every = 0;

    println!("{:<14} {:>10} {:>14}", "strategy", "accuracy", "bytes sent");
    for which in ["full-sharing", "jwins", "sign-1bit"] {
        let trainer = Trainer::builder(config.clone())
            .topology(StaticTopology::random_regular(nodes, 4, 7)?)
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                let model = mlp_classifier(features, &[32], classes, 42);
                let strategy: Box<dyn ShareStrategy> = match which {
                    "full-sharing" => Box::new(FullSharing::new()),
                    "jwins" => {
                        Box::new(Jwins::new(JwinsConfig::paper_default(), 1000 + node as u64))
                    }
                    _ => Box::new(SignSharing::new()),
                };
                (model, strategy)
            })
            .build()?;
        let result = trainer.run()?;
        println!(
            "{:<14} {:>9.1}% {:>11.2} MiB",
            result.strategy,
            result.final_accuracy() * 100.0,
            result.total_traffic.bytes_sent as f64 / (1024.0 * 1024.0),
        );
    }
    println!("\nThe 1-bit strategy used the same engine, topology, MH weights and");
    println!("byte meter as JWINS — only the ShareStrategy implementation changed.");
    Ok(())
}
