//! Decentralized next-character prediction with a stacked LSTM — the paper's
//! Shakespeare workload shape.
//!
//! Each node holds the text of distinct "roles" (clients) whose character
//! distributions differ, and the cluster learns the shared language
//! structure by exchanging sparse wavelet coefficients of the LSTM weights.
//!
//! Run with: `cargo run --release --example char_lstm`

use jwins::config::TrainConfig;
use jwins::engine::Trainer;
use jwins::strategies::{Jwins, JwinsConfig, RandomSampling};
use jwins::strategy::ShareStrategy;
use jwins_data::text::{shakespeare_like, TextConfig};
use jwins_nn::models::CharLstm;
use jwins_topology::dynamic::StaticTopology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 6;
    let cfg = TextConfig::small();
    let data = shakespeare_like(&cfg, nodes, nodes, 13);
    println!(
        "dataset: vocab {}, seq len {}, {} train windows across {nodes} nodes",
        cfg.vocab,
        cfg.seq_len,
        data.train_len()
    );

    // `JWINS_SMOKE=1` (the CI examples-smoke job) shrinks the run to seconds.
    let smoke = jwins_repro::smoke();
    let rounds = if smoke { 4 } else { 40 };
    let mut config = TrainConfig::new(rounds);
    config.local_steps = 2;
    config.batch_size = 8;
    config.lr = 0.5;
    config.eval_every = rounds.min(10);
    config.eval_test_samples = 64;

    for which in ["random-sampling", "jwins"] {
        let trainer = Trainer::builder(config.clone())
            .topology(StaticTopology::random_regular(nodes, 3, 9)?)
            .test_set(data.test.clone())
            .nodes(data.node_train.clone(), |node| {
                let model = CharLstm::new(cfg.vocab, 8, 32, 3);
                let strategy: Box<dyn ShareStrategy> = match which {
                    "random-sampling" => Box::new(RandomSampling::new(0.37, config.seed)),
                    _ => Box::new(Jwins::new(JwinsConfig::paper_default(), 31 + node as u64)),
                };
                (model, strategy)
            })
            .build()?;
        let result = trainer.run()?;
        println!("\n== {which} ==");
        for r in &result.records {
            println!(
                "  round {:>3}: next-char accuracy {:5.1}%  test loss {:.3}  sent/node {:>6.2} MiB",
                r.round + 1,
                r.test_accuracy * 100.0,
                r.test_loss,
                r.cum_bytes_per_node / (1024.0 * 1024.0)
            );
        }
    }
    Ok(())
}
