//! Low communication budgets: JWINS vs CHOCO-SGD (paper §IV-D).
//!
//! At 20% and 10% of the full-sharing budget, JWINS's two-point randomized
//! cut-off lets every node periodically share its whole model while CHOCO
//! sends a fixed TopK slice and needs its γ hyperparameter tuned. This
//! example reproduces the comparison shape on a laptop-scale workload.
//!
//! Run with: `cargo run --release --example budget_comparison`

use jwins::config::TrainConfig;
use jwins::cutoff::AlphaDistribution;
use jwins::engine::Trainer;
use jwins::strategies::{ChocoConfig, ChocoSgd, Jwins, JwinsConfig};
use jwins::strategy::ShareStrategy;
use jwins_data::images::{cifar_like, ImageConfig};
use jwins_nn::models::mlp_classifier;
use jwins_topology::dynamic::StaticTopology;

use jwins_repro::smoke;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 8;
    let img = ImageConfig::tiny();
    let data = cifar_like(&img, nodes, 2, 3);

    let rounds = if smoke() { 8 } else { 120 };
    let mut config = TrainConfig::new(rounds);
    config.local_steps = 2;
    config.batch_size = 8;
    config.lr = 0.1;
    config.eval_every = rounds;

    for (label, alpha, choco) in [
        (
            "20% budget",
            AlphaDistribution::budget_20(),
            ChocoConfig::budget_20(),
        ),
        (
            "10% budget",
            AlphaDistribution::budget_10(),
            ChocoConfig::budget_10(),
        ),
    ] {
        println!("\n=== {label} ===");
        for which in ["choco", "jwins"] {
            let alpha = alpha.clone();
            let choco = choco.clone();
            let trainer = Trainer::builder(config.clone())
                .topology(StaticTopology::random_regular(nodes, 4, 17)?)
                .test_set(data.test.clone())
                .nodes(data.node_train.clone(), |node| {
                    let model = mlp_classifier(img.pixels(), &[32], img.classes, 9);
                    let strategy: Box<dyn ShareStrategy> = if which == "choco" {
                        Box::new(ChocoSgd::new(choco.clone()))
                    } else {
                        Box::new(Jwins::new(
                            JwinsConfig::with_alpha(alpha.clone()),
                            400 + node as u64,
                        ))
                    };
                    (model, strategy)
                })
                .build()?;
            let result = trainer.run()?;
            let last = result.final_record().expect("evaluated");
            println!(
                "  {:<10} accuracy {:5.1}%  sent/node {:>7.3} MiB  sim time {:>6.1}s",
                result.strategy,
                last.test_accuracy * 100.0,
                last.cum_bytes_per_node / (1024.0 * 1024.0),
                last.sim_time_s
            );
        }
    }
    Ok(())
}
