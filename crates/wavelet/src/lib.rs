//! Multilevel discrete wavelet transform (DWT) built from scratch.
//!
//! JWINS ("Get More for Less in Decentralized Learning Systems", ICDCS 2023,
//! §III-A) represents models and model *changes* in the wavelet-frequency
//! domain: a four-level decomposition with Symlet-2 wavelets. Because a
//! single coarse-level coefficient summarizes a whole neighbourhood of
//! parameters, a sparse wavelet vector with `K` nonzeros packs more
//! information than `K` raw parameters — which is why wavelet-domain TopK
//! loses less on sparsification (paper Figure 2).
//!
//! This crate provides what the paper obtained from PyWavelets:
//!
//! - [`family::Wavelet`]: orthogonal filter banks — Haar, Daubechies
//!   (`db1`–`db8`), Symlets (`sym2`–`sym8`, with `sym2 ≡ db2`), Coiflets.
//! - [`transform`]: one analysis/synthesis level with **periodization**
//!   boundary handling, which keeps the transform critically sampled and
//!   exactly orthogonal for even lengths.
//! - [`multilevel::Dwt`]: `wavedec`/`waverec`-style multilevel transforms over
//!   arbitrary-length vectors, with a [`multilevel::CoeffLayout`] describing
//!   the `[cA_J | cD_J | … | cD_1]` packing so sparsifiers can operate on a
//!   single flat coefficient vector.
//!
//! Internally all arithmetic is `f64`; the public API speaks `f32` because
//! model parameters (and the bytes on the wire) are 32-bit.
//!
//! # Example
//!
//! ```
//! use jwins_wavelet::{Wavelet, Dwt};
//!
//! # fn main() -> Result<(), jwins_wavelet::WaveletError> {
//! let dwt = Dwt::new(Wavelet::sym2(), 4)?;
//! let signal: Vec<f32> = (0..100).map(|i| (i as f32 * 0.1).sin()).collect();
//! let coeffs = dwt.forward(&signal);
//! let recovered = dwt.inverse(&coeffs)?;
//! for (a, b) in signal.iter().zip(&recovered) {
//!     assert!((a - b).abs() < 1e-4);
//! }
//! # Ok(())
//! # }
//! ```

pub mod family;
pub mod multilevel;
pub mod transform;

pub use family::Wavelet;
pub use multilevel::{CoeffLayout, Dwt, WaveletCoeffs};

use std::error::Error;
use std::fmt;

/// Errors produced by wavelet transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaveletError {
    /// Zero decomposition levels were requested.
    ZeroLevels,
    /// A coefficient vector does not match the layout it claims to follow.
    LayoutMismatch {
        /// Length the layout requires.
        expected: usize,
        /// Length supplied.
        actual: usize,
    },
    /// The named wavelet is not in the built-in table.
    UnknownWavelet(String),
}

impl fmt::Display for WaveletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveletError::ZeroLevels => write!(f, "at least one decomposition level required"),
            WaveletError::LayoutMismatch { expected, actual } => {
                write!(
                    f,
                    "coefficient length {actual} does not match layout ({expected})"
                )
            }
            WaveletError::UnknownWavelet(name) => write!(f, "unknown wavelet: {name}"),
        }
    }
}

impl Error for WaveletError {}
