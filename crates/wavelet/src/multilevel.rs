//! Multilevel DWT over arbitrary-length `f32` vectors.
//!
//! JWINS flattens an entire model into one parameter vector and transforms it
//! with a 4-level Symlet-2 decomposition. Model sizes are arbitrary, so each
//! level pads odd inputs by repeating the final sample (the same choice
//! PyWavelets makes in periodization mode); the [`CoeffLayout`] records the
//! true lengths so the inverse can truncate the padding away and recover the
//! input bit-for-bit (up to `f32` rounding).
//!
//! Coefficients are packed `[cA_J | cD_J | cD_{J-1} | … | cD_1]` — coarsest
//! first, matching `pywt.wavedec` — so a TopK sparsifier can treat the whole
//! transform as one flat vector while the layout stays recoverable.

use crate::family::Wavelet;
use crate::transform::{analyze, synthesize};
use crate::WaveletError;

/// Describes how a flat coefficient vector maps back onto decomposition
/// levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoeffLayout {
    /// Original signal length.
    input_len: usize,
    /// Per level, from finest (level 1) to coarsest (level J): the length of
    /// the signal *entering* that level, pre-padding.
    level_input_lens: Vec<usize>,
    /// Length of the final approximation band.
    approx_len: usize,
    /// Detail band lengths, finest (level 1) first.
    detail_lens: Vec<usize>,
}

impl CoeffLayout {
    /// Computes the layout for a signal of `input_len` decomposed `levels`
    /// times. Levels stop early once the approximation shrinks to a single
    /// coefficient, mirroring `pywt.dwt_max_level` behaviour.
    pub fn plan(input_len: usize, levels: usize) -> Self {
        let mut level_input_lens = Vec::with_capacity(levels);
        let mut detail_lens = Vec::with_capacity(levels);
        let mut cur = input_len;
        for _ in 0..levels {
            if cur < 2 {
                break;
            }
            level_input_lens.push(cur);
            let padded = cur + cur % 2;
            detail_lens.push(padded / 2);
            cur = padded / 2;
        }
        Self {
            input_len,
            approx_len: cur,
            level_input_lens,
            detail_lens,
        }
    }

    /// Original signal length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Number of levels actually performed (may be less than requested for
    /// very short signals).
    pub fn levels(&self) -> usize {
        self.detail_lens.len()
    }

    /// Total number of coefficients in the flat packing.
    pub fn coeff_len(&self) -> usize {
        self.approx_len + self.detail_lens.iter().sum::<usize>()
    }

    /// Range of the final approximation band within the flat vector.
    pub fn approx_range(&self) -> std::ops::Range<usize> {
        0..self.approx_len
    }

    /// Range of the detail band for `level` (1 = finest) within the flat
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or exceeds [`Self::levels`].
    pub fn detail_range(&self, level: usize) -> std::ops::Range<usize> {
        assert!(
            (1..=self.levels()).contains(&level),
            "level {level} out of 1..={}",
            self.levels()
        );
        // Packing order: approx, then details coarsest→finest.
        let mut start = self.approx_len;
        for l in (level + 1..=self.levels()).rev() {
            start += self.detail_lens[l - 1];
        }
        start..start + self.detail_lens[level - 1]
    }
}

/// A flat coefficient vector plus the layout needed to invert it.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletCoeffs {
    /// The packed coefficients, `[cA_J | cD_J | … | cD_1]`.
    pub data: Vec<f32>,
    layout: CoeffLayout,
}

impl WaveletCoeffs {
    /// Wraps an externally produced coefficient vector (e.g. averaged
    /// coefficients received from neighbours) in a layout.
    ///
    /// # Errors
    ///
    /// Returns [`WaveletError::LayoutMismatch`] when lengths disagree.
    pub fn from_parts(data: Vec<f32>, layout: CoeffLayout) -> Result<Self, WaveletError> {
        if data.len() != layout.coeff_len() {
            return Err(WaveletError::LayoutMismatch {
                expected: layout.coeff_len(),
                actual: data.len(),
            });
        }
        Ok(Self { data, layout })
    }

    /// The layout describing this packing.
    pub fn layout(&self) -> &CoeffLayout {
        &self.layout
    }

    /// Number of coefficients.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether there are no coefficients.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A multilevel DWT engine: a wavelet plus a level count.
///
/// JWINS's configuration is `Dwt::new(Wavelet::sym2(), 4)`.
#[derive(Debug, Clone)]
pub struct Dwt {
    wavelet: Wavelet,
    levels: usize,
}

impl Dwt {
    /// Creates a multilevel transform.
    ///
    /// # Errors
    ///
    /// Returns [`WaveletError::ZeroLevels`] when `levels == 0`.
    pub fn new(wavelet: Wavelet, levels: usize) -> Result<Self, WaveletError> {
        if levels == 0 {
            return Err(WaveletError::ZeroLevels);
        }
        Ok(Self { wavelet, levels })
    }

    /// The wavelet in use.
    pub fn wavelet(&self) -> &Wavelet {
        &self.wavelet
    }

    /// Requested decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Layout for a signal of the given length under this configuration.
    pub fn layout_for(&self, input_len: usize) -> CoeffLayout {
        CoeffLayout::plan(input_len, self.levels)
    }

    /// Forward transform: signal → packed coefficients.
    pub fn forward(&self, signal: &[f32]) -> WaveletCoeffs {
        let layout = self.layout_for(signal.len());
        let mut cur: Vec<f64> = signal.iter().map(|&v| f64::from(v)).collect();
        // Details collected coarsest-last; we reverse while packing.
        let mut details: Vec<Vec<f64>> = Vec::with_capacity(layout.levels());
        for level in 0..layout.levels() {
            debug_assert_eq!(cur.len(), layout.level_input_lens[level]);
            if cur.len() % 2 == 1 {
                let last = *cur.last().expect("len >= 2 guaranteed by plan");
                cur.push(last);
            }
            let (approx, detail) = analyze(&self.wavelet, &cur);
            details.push(detail);
            cur = approx;
        }
        let mut data = Vec::with_capacity(layout.coeff_len());
        data.extend(cur.iter().map(|&v| v as f32));
        for detail in details.iter().rev() {
            data.extend(detail.iter().map(|&v| v as f32));
        }
        debug_assert_eq!(data.len(), layout.coeff_len());
        WaveletCoeffs { data, layout }
    }

    /// Inverse transform: packed coefficients → signal.
    ///
    /// # Errors
    ///
    /// Returns [`WaveletError::LayoutMismatch`] if the coefficient vector was
    /// built for a different configuration (different length).
    pub fn inverse(&self, coeffs: &WaveletCoeffs) -> Result<Vec<f32>, WaveletError> {
        let layout = &coeffs.layout;
        if coeffs.data.len() != layout.coeff_len() {
            return Err(WaveletError::LayoutMismatch {
                expected: layout.coeff_len(),
                actual: coeffs.data.len(),
            });
        }
        let mut cur: Vec<f64> = coeffs.data[layout.approx_range()]
            .iter()
            .map(|&v| f64::from(v))
            .collect();
        for level in (1..=layout.levels()).rev() {
            let detail: Vec<f64> = coeffs.data[layout.detail_range(level)]
                .iter()
                .map(|&v| f64::from(v))
                .collect();
            let mut signal = synthesize(&self.wavelet, &cur, &detail);
            // Remove the pad inserted when this level's input was odd.
            signal.truncate(layout.level_input_lens[level - 1]);
            cur = signal;
        }
        Ok(cur.iter().map(|&v| v as f32).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * 0.37).sin() * 3.0 + i as f32 * 0.01)
            .collect()
    }

    #[test]
    fn zero_levels_rejected() {
        assert_eq!(
            Dwt::new(Wavelet::sym2(), 0).unwrap_err(),
            WaveletError::ZeroLevels
        );
    }

    #[test]
    fn layout_even_power_of_two() {
        let layout = CoeffLayout::plan(64, 4);
        assert_eq!(layout.levels(), 4);
        assert_eq!(layout.coeff_len(), 64); // critically sampled
        assert_eq!(layout.approx_range(), 0..4);
        assert_eq!(layout.detail_range(4), 4..8);
        assert_eq!(layout.detail_range(1), 32..64);
    }

    #[test]
    fn layout_odd_lengths_grow_minimally() {
        let layout = CoeffLayout::plan(101, 4);
        // 101 → pad 102 → 51 → pad 52 → 26 → 13 → pad 14 → 7
        assert_eq!(layout.levels(), 4);
        assert_eq!(layout.detail_lens, vec![51, 26, 13, 7]);
        assert_eq!(layout.approx_len, 7);
        assert_eq!(layout.coeff_len(), 104);
    }

    #[test]
    fn layout_stops_early_for_tiny_signals() {
        let layout = CoeffLayout::plan(3, 10);
        // 3 → pad 4 → 2 → 1, stop: only two levels possible.
        assert_eq!(layout.levels(), 2);
        assert_eq!(layout.approx_len, 1);
    }

    #[test]
    fn roundtrip_power_of_two() {
        let dwt = Dwt::new(Wavelet::sym2(), 4).unwrap();
        let x = ramp(256);
        let coeffs = dwt.forward(&x);
        assert_eq!(coeffs.len(), 256);
        let y = dwt.inverse(&coeffs).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_awkward_lengths() {
        for n in [1usize, 2, 3, 5, 7, 9, 17, 33, 101, 1023, 4097] {
            for wname in ["haar", "sym2", "db4", "sym5"] {
                let dwt = Dwt::new(Wavelet::by_name(wname).unwrap(), 4).unwrap();
                let x = ramp(n);
                let coeffs = dwt.forward(&x);
                let y = dwt.inverse(&coeffs).unwrap();
                assert_eq!(y.len(), n, "{wname} n={n}");
                for (a, b) in x.iter().zip(&y) {
                    assert!((a - b).abs() < 1e-3, "{wname} n={n}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn coarse_coefficients_summarize_neighbourhoods() {
        // An impulse in the input influences only O(filter_len · 2^level)
        // coefficients per band, while a coarse coefficient flows back into a
        // whole neighbourhood — the locality JWINS exploits. Verify that
        // zeroing everything except the coarse band still reconstructs the
        // low-frequency trend: reconstruction error must be far below the
        // signal energy for a smooth signal.
        let dwt = Dwt::new(Wavelet::sym2(), 4).unwrap();
        let x: Vec<f32> = (0..512).map(|i| (i as f32 * 0.01).sin() * 5.0).collect();
        let mut coeffs = dwt.forward(&x);
        let keep = coeffs.layout().approx_range().end;
        for v in coeffs.data.iter_mut().skip(keep) {
            *v = 0.0;
        }
        let y = dwt.inverse(&coeffs).unwrap();
        let err: f32 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        let energy: f32 = x.iter().map(|a| a * a).sum();
        assert!(
            err < energy * 0.05,
            "coarse-only reconstruction error {err} vs energy {energy}"
        );
    }

    #[test]
    fn from_parts_validates_length() {
        let dwt = Dwt::new(Wavelet::sym2(), 4).unwrap();
        let layout = dwt.layout_for(100);
        assert!(WaveletCoeffs::from_parts(vec![0.0; 3], layout.clone()).is_err());
        assert!(WaveletCoeffs::from_parts(vec![0.0; layout.coeff_len()], layout).is_ok());
    }

    #[test]
    fn detail_ranges_partition_the_vector() {
        let layout = CoeffLayout::plan(777, 4);
        let mut covered = vec![false; layout.coeff_len()];
        for i in layout.approx_range() {
            covered[i] = true;
        }
        for level in 1..=layout.levels() {
            for i in layout.detail_range(level) {
                assert!(!covered[i], "overlap at {i} (level {level})");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "gaps in coverage");
    }

    #[test]
    fn energy_preserved_on_even_chain() {
        // 256 halves evenly four times: the transform is exactly orthonormal.
        let dwt = Dwt::new(Wavelet::daubechies(3).unwrap(), 4).unwrap();
        let x = ramp(256);
        let coeffs = dwt.forward(&x);
        let ex: f64 = x.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let ec: f64 = coeffs
            .data
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum();
        assert!((ex - ec).abs() < ex * 1e-5, "{ex} vs {ec}");
    }

    proptest! {
        #[test]
        fn roundtrip_any_length_any_wavelet(
            n in 1usize..600,
            levels in 1usize..6,
            widx in 0usize..18,
            seed in any::<u64>(),
        ) {
            let name = Wavelet::all_names()[widx];
            let dwt = Dwt::new(Wavelet::by_name(name).unwrap(), levels).unwrap();
            let mut s = seed | 1;
            let x: Vec<f32> = (0..n).map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s >> 16) as f32 / (1u64 << 48) as f32) * 4.0 - 2.0
            }).collect();
            let coeffs = dwt.forward(&x);
            let y = dwt.inverse(&coeffs).unwrap();
            prop_assert_eq!(y.len(), n);
            for (a, b) in x.iter().zip(&y) {
                prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
            }
        }

        #[test]
        fn coeff_len_is_within_padding_bound(n in 1usize..5000, levels in 1usize..7) {
            let layout = CoeffLayout::plan(n, levels);
            // Each level adds at most one padding slot at that level's scale;
            // total overhead is bounded by the number of levels.
            prop_assert!(layout.coeff_len() >= n);
            prop_assert!(layout.coeff_len() <= n + layout.levels() * 2);
        }
    }
}
