//! Orthogonal wavelet filter banks.
//!
//! Each family is defined by its *scaling* (lowpass reconstruction) filter
//! `rec_lo`; the remaining three filters follow from the quadrature-mirror
//! relations used by PyWavelets:
//!
//! ```text
//! rec_hi[k] = (-1)^k · rec_lo[L-1-k]
//! dec_lo[k] = rec_lo[L-1-k]
//! dec_hi[k] = rec_hi[L-1-k]
//! ```
//!
//! The coefficient tables are the standard Daubechies/Symlet/Coiflet values
//! (identical to PyWavelets); `sym2` is numerically identical to `db2`, the
//! filter JWINS uses. Orthogonality (`Σ h[m]·h[m+2j] = δ_j`) is asserted by
//! the tests below, which is what guarantees perfect reconstruction of the
//! periodized transform in [`crate::transform`].

use crate::WaveletError;

/// Daubechies scaling filters `db1..db8` (reconstruction lowpass).
const DB: [&[f64]; 8] = [
    // db1 / Haar
    &[
        std::f64::consts::FRAC_1_SQRT_2,
        std::f64::consts::FRAC_1_SQRT_2,
    ],
    // db2 (== sym2)
    &[
        0.48296291314469025,
        0.836516303737469,
        0.22414386804185735,
        -0.12940952255092145,
    ],
    // db3
    &[
        0.3326705529509569,
        0.8068915093133388,
        0.4598775021193313,
        -0.13501102001039084,
        -0.08544127388224149,
        0.035226291882100656,
    ],
    // db4
    &[
        0.23037781330885523,
        0.7148465705525415,
        0.6308807679295904,
        -0.02798376941698385,
        -0.18703481171888114,
        0.030841381835986965,
        0.032883011666982945,
        -0.010597401784997278,
    ],
    // db5
    &[
        0.160102397974125,
        0.6038292697974729,
        0.7243085284385744,
        0.13842814590110342,
        -0.24229488706619015,
        -0.03224486958502952,
        0.07757149384006515,
        -0.006241490213011705,
        -0.012580751999015526,
        0.003335725285001549,
    ],
    // db6
    &[
        0.11154074335008017,
        0.4946238903983854,
        0.7511339080215775,
        0.3152503517092432,
        -0.22626469396516913,
        -0.12976686756709563,
        0.09750160558707936,
        0.02752286553001629,
        -0.031582039318031156,
        0.0005538422009938016,
        0.004777257511010651,
        -0.00107730108499558,
    ],
    // db7
    &[
        0.07785205408506236,
        0.39653931948230575,
        0.7291320908465551,
        0.4697822874053586,
        -0.14390600392910627,
        -0.22403618499416572,
        0.07130921926705004,
        0.08061260915107307,
        -0.03802993693503463,
        -0.01657454163101562,
        0.012550998556013784,
        0.00042957797300470274,
        -0.0018016407039998328,
        0.0003537138000010399,
    ],
    // db8
    &[
        0.05441584224308161,
        0.3128715909144659,
        0.6756307362980128,
        0.5853546836548691,
        -0.015829105256023893,
        -0.2840155429624281,
        0.00047248457399797254,
        0.128747426620186,
        -0.01736930100202211,
        -0.04408825393106472,
        0.013981027917015516,
        0.008746094047015655,
        -0.00487035299301066,
        -0.0003917403729959771,
        0.0006754494059985568,
        -0.00011747678400228192,
    ],
];

/// Symlet scaling filters `sym2..sym8`.
const SYM: [&[f64]; 7] = [
    // sym2 == db2
    &[
        0.48296291314469025,
        0.836516303737469,
        0.22414386804185735,
        -0.12940952255092145,
    ],
    // sym3 == db3
    &[
        0.3326705529509569,
        0.8068915093133388,
        0.4598775021193313,
        -0.13501102001039084,
        -0.08544127388224149,
        0.035226291882100656,
    ],
    // sym4
    &[
        0.032_223_100_604_042_7,
        -0.012603967262037833,
        -0.09921954357684722,
        0.29785779560527736,
        0.8037387518059161,
        0.49761866763201545,
        -0.02963552764599851,
        -0.07576571478927333,
    ],
    // sym5
    &[
        0.019538882735286728,
        -0.021101834024758855,
        -0.17532808990845047,
        0.01660210576452232,
        0.6339789634582119,
        0.7234076904024206,
        0.1993975339773936,
        -0.039134249302383094,
        0.029519490925774643,
        0.027333068345077982,
    ],
    // sym6
    &[
        -0.007800708325034148,
        0.0017677118642428036,
        0.04472490177066578,
        -0.021060292512300564,
        -0.07263752278646252,
        0.3379294217276218,
        0.787641141030194,
        0.4910559419267466,
        -0.048311742585633,
        -0.11799011114819057,
        0.0034907120842174702,
        0.015404109327027373,
    ],
    // sym7
    &[
        0.010268176708511255,
        0.004010244871533663,
        -0.10780823770381774,
        -0.14004724044296152,
        0.2886296317515146,
        0.767764317003164,
        0.5361019170917628,
        0.017441255086855827,
        -0.049552834937127255,
        0.0678926935013727,
        0.03051551316596357,
        -0.01263630340325193,
        -0.0010473848886829163,
        0.002681814568257878,
    ],
    // sym8
    &[
        0.0018899503327594609,
        -0.0003029205147213668,
        -0.01495225833704823,
        0.003808752013890615,
        0.049137179673607506,
        -0.027219029917056003,
        -0.05194583810770904,
        0.3644418948353314,
        0.7771857517005235,
        0.4813596512583722,
        -0.061273359067658524,
        -0.1432942383508097,
        0.007607487324917605,
        0.03169508781149298,
        -0.0005421323317911481,
        -0.0033824159510061256,
    ],
];

/// Coiflet scaling filters `coif1..coif2`.
const COIF: [&[f64]; 2] = [
    &[
        -0.01565572813546454,
        -0.0727326195128539,
        0.38486484686420286,
        0.8525720202122554,
        0.3378976624578092,
        -0.0727326195128539,
    ],
    &[
        -0.000720549445364512,
        -0.0018232088707029932,
        0.0056114348193944995,
        0.023680171946334084,
        -0.0594344186464569,
        -0.0764885990783064,
        0.41700518442169254,
        0.8127236354455423,
        0.3861100668211622,
        -0.06737255472196302,
        -0.04146493678175915,
        0.016387336463522112,
    ],
];

/// An orthogonal wavelet: the four filters of a two-channel filter bank.
#[derive(Debug, Clone, PartialEq)]
pub struct Wavelet {
    name: &'static str,
    dec_lo: Vec<f64>,
    dec_hi: Vec<f64>,
    rec_lo: Vec<f64>,
    rec_hi: Vec<f64>,
}

impl Wavelet {
    fn from_rec_lo(name: &'static str, rec_lo: &[f64]) -> Self {
        let len = rec_lo.len();
        let rec_lo: Vec<f64> = rec_lo.to_vec();
        let rec_hi: Vec<f64> = (0..len)
            .map(|k| {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                sign * rec_lo[len - 1 - k]
            })
            .collect();
        let dec_lo: Vec<f64> = rec_lo.iter().rev().copied().collect();
        let dec_hi: Vec<f64> = rec_hi.iter().rev().copied().collect();
        Self {
            name,
            dec_lo,
            dec_hi,
            rec_lo,
            rec_hi,
        }
    }

    /// Haar wavelet (synonym for [`Wavelet::daubechies`]`(1)`).
    pub fn haar() -> Self {
        Self::from_rec_lo("haar", DB[0])
    }

    /// Symlet-2, the wavelet JWINS uses (numerically identical to `db2`).
    pub fn sym2() -> Self {
        Self::from_rec_lo("sym2", SYM[0])
    }

    /// Daubechies wavelet of the given order (1–8).
    ///
    /// # Errors
    ///
    /// Returns [`WaveletError::UnknownWavelet`] for orders outside 1–8.
    pub fn daubechies(order: usize) -> Result<Self, WaveletError> {
        static NAMES: [&str; 8] = ["db1", "db2", "db3", "db4", "db5", "db6", "db7", "db8"];
        if !(1..=8).contains(&order) {
            return Err(WaveletError::UnknownWavelet(format!("db{order}")));
        }
        Ok(Self::from_rec_lo(NAMES[order - 1], DB[order - 1]))
    }

    /// Symlet wavelet of the given order (2–8).
    ///
    /// # Errors
    ///
    /// Returns [`WaveletError::UnknownWavelet`] for orders outside 2–8.
    pub fn symlet(order: usize) -> Result<Self, WaveletError> {
        static NAMES: [&str; 7] = ["sym2", "sym3", "sym4", "sym5", "sym6", "sym7", "sym8"];
        if !(2..=8).contains(&order) {
            return Err(WaveletError::UnknownWavelet(format!("sym{order}")));
        }
        Ok(Self::from_rec_lo(NAMES[order - 2], SYM[order - 2]))
    }

    /// Coiflet wavelet of the given order (1–2).
    ///
    /// # Errors
    ///
    /// Returns [`WaveletError::UnknownWavelet`] for orders outside 1–2.
    pub fn coiflet(order: usize) -> Result<Self, WaveletError> {
        static NAMES: [&str; 2] = ["coif1", "coif2"];
        if !(1..=2).contains(&order) {
            return Err(WaveletError::UnknownWavelet(format!("coif{order}")));
        }
        Ok(Self::from_rec_lo(NAMES[order - 1], COIF[order - 1]))
    }

    /// Looks a wavelet up by its PyWavelets-style name (`"haar"`, `"db4"`,
    /// `"sym2"`, `"coif1"`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`WaveletError::UnknownWavelet`] for unrecognized names.
    pub fn by_name(name: &str) -> Result<Self, WaveletError> {
        if name == "haar" {
            return Ok(Self::haar());
        }
        let parse = |prefix: &str| -> Option<usize> {
            name.strip_prefix(prefix).and_then(|s| s.parse().ok())
        };
        if let Some(order) = parse("db") {
            return Self::daubechies(order);
        }
        if let Some(order) = parse("sym") {
            return Self::symlet(order);
        }
        if let Some(order) = parse("coif") {
            return Self::coiflet(order);
        }
        Err(WaveletError::UnknownWavelet(name.to_owned()))
    }

    /// All built-in wavelet names, for sweeps/ablations.
    pub fn all_names() -> Vec<&'static str> {
        let mut names = vec!["haar"];
        names.extend(
            (1..=8).map(|o| ["db1", "db2", "db3", "db4", "db5", "db6", "db7", "db8"][o - 1]),
        );
        names.extend(
            (2..=8).map(|o| ["sym2", "sym3", "sym4", "sym5", "sym6", "sym7", "sym8"][o - 2]),
        );
        names.extend(["coif1", "coif2"]);
        names
    }

    /// PyWavelets-style name of this wavelet.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Filter length (number of taps).
    pub fn filter_len(&self) -> usize {
        self.dec_lo.len()
    }

    /// Decomposition (analysis) lowpass filter.
    pub fn dec_lo(&self) -> &[f64] {
        &self.dec_lo
    }

    /// Decomposition (analysis) highpass filter.
    pub fn dec_hi(&self) -> &[f64] {
        &self.dec_hi
    }

    /// Reconstruction (synthesis) lowpass filter.
    pub fn rec_lo(&self) -> &[f64] {
        &self.rec_lo
    }

    /// Reconstruction (synthesis) highpass filter.
    pub fn rec_hi(&self) -> &[f64] {
        &self.rec_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    fn all_wavelets() -> Vec<Wavelet> {
        Wavelet::all_names()
            .into_iter()
            .map(|n| Wavelet::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn lowpass_sums_to_sqrt2() {
        for w in all_wavelets() {
            let sum: f64 = w.dec_lo().iter().sum();
            assert!(
                (sum - std::f64::consts::SQRT_2).abs() < 1e-7,
                "{}: Σ dec_lo = {sum}",
                w.name()
            );
        }
    }

    #[test]
    fn highpass_sums_to_zero() {
        for w in all_wavelets() {
            let sum: f64 = w.dec_hi().iter().sum();
            assert!(sum.abs() < 1e-7, "{}: Σ dec_hi = {sum}", w.name());
        }
    }

    #[test]
    fn unit_energy() {
        for w in all_wavelets() {
            let e: f64 = w.dec_lo().iter().map(|h| h * h).sum();
            assert!((e - 1.0).abs() < 1e-8, "{}: ‖dec_lo‖² = {e}", w.name());
        }
    }

    /// Σ h[m]·h[m+2j] = δ_j — double-shift orthogonality, the property that
    /// makes the periodized transform invertible.
    #[test]
    fn double_shift_orthogonality() {
        for w in all_wavelets() {
            let h = w.dec_lo();
            let g = w.dec_hi();
            let len = h.len();
            for j in 1..len / 2 {
                let dot_h: f64 = (0..len - 2 * j).map(|m| h[m] * h[m + 2 * j]).sum();
                let dot_g: f64 = (0..len - 2 * j).map(|m| g[m] * g[m + 2 * j]).sum();
                assert!(
                    dot_h.abs() < TOL,
                    "{}: <h, h shift {j}> = {dot_h}",
                    w.name()
                );
                assert!(
                    dot_g.abs() < TOL,
                    "{}: <g, g shift {j}> = {dot_g}",
                    w.name()
                );
            }
            // Cross-orthogonality at every even shift (both directions).
            for j in 0..len / 2 {
                let cross: f64 = (0..len - 2 * j).map(|m| h[m + 2 * j] * g[m]).sum();
                let cross2: f64 = (0..len - 2 * j).map(|m| h[m] * g[m + 2 * j]).sum();
                assert!(
                    cross.abs() < TOL,
                    "{}: <h shift {j}, g> = {cross}",
                    w.name()
                );
                assert!(
                    cross2.abs() < TOL,
                    "{}: <h, g shift {j}> = {cross2}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn sym2_is_db2() {
        let sym2 = Wavelet::sym2();
        let db2 = Wavelet::daubechies(2).unwrap();
        assert_eq!(sym2.dec_lo(), db2.dec_lo());
        assert_eq!(sym2.dec_hi(), db2.dec_hi());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(Wavelet::by_name("haar").unwrap().filter_len(), 2);
        assert_eq!(Wavelet::by_name("db4").unwrap().filter_len(), 8);
        assert_eq!(Wavelet::by_name("sym8").unwrap().filter_len(), 16);
        assert!(Wavelet::by_name("db9").is_err());
        assert!(Wavelet::by_name("sym1").is_err());
        assert!(Wavelet::by_name("nonsense").is_err());
    }

    #[test]
    fn filters_are_consistent() {
        for w in all_wavelets() {
            let len = w.filter_len();
            for k in 0..len {
                assert!((w.dec_lo()[k] - w.rec_lo()[len - 1 - k]).abs() < TOL);
                assert!((w.dec_hi()[k] - w.rec_hi()[len - 1 - k]).abs() < TOL);
            }
        }
    }

    /// db2 has two vanishing moments: the highpass filter annihilates
    /// constant and linear sequences.
    #[test]
    fn db2_vanishing_moments() {
        let w = Wavelet::daubechies(2).unwrap();
        let g = w.dec_hi();
        let moment0: f64 = g.iter().sum();
        let moment1: f64 = g.iter().enumerate().map(|(k, v)| k as f64 * v).sum();
        assert!(moment0.abs() < 1e-8);
        assert!(moment1.abs() < 1e-7);
    }
}
