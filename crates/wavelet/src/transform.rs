//! Single-level periodized analysis and synthesis.
//!
//! With periodization, a length-`N` (even) signal maps to `N/2` approximation
//! plus `N/2` detail coefficients — critically sampled, no growth. The
//! analysis operator with rows `{dec_lo, dec_hi}` shifted by two (indices
//! taken mod `N`) is *orthonormal* for the orthogonal families in
//! [`crate::family`], so synthesis is simply its transpose. Implementing the
//! inverse as the transpose sidesteps every filter-alignment convention
//! pitfall and is verified by exhaustive roundtrip tests.

use crate::family::Wavelet;

/// One analysis level: `signal` (even length `N`) → `(approx, detail)` of
/// length `N/2` each.
///
/// # Panics
///
/// Panics if `signal.len()` is odd or zero (callers pad first — see
/// [`crate::multilevel`]).
pub fn analyze(wavelet: &Wavelet, signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = signal.len();
    assert!(
        n > 0 && n.is_multiple_of(2),
        "analysis needs a nonzero even length"
    );
    let h = wavelet.dec_lo();
    let g = wavelet.dec_hi();
    let taps = h.len();
    let half = n / 2;
    let mut approx = vec![0.0; half];
    let mut detail = vec![0.0; half];
    for k in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        let base = 2 * k;
        for m in 0..taps {
            let x = signal[(base + m) % n];
            a += h[m] * x;
            d += g[m] * x;
        }
        approx[k] = a;
        detail[k] = d;
    }
    (approx, detail)
}

/// One synthesis level: `(approx, detail)` of equal length `N/2` → signal of
/// length `N`. Exact inverse of [`analyze`] (transpose of an orthonormal
/// operator).
///
/// # Panics
///
/// Panics if the halves differ in length or are empty.
pub fn synthesize(wavelet: &Wavelet, approx: &[f64], detail: &[f64]) -> Vec<f64> {
    assert_eq!(approx.len(), detail.len(), "halves must have equal length");
    assert!(!approx.is_empty(), "synthesis needs nonempty coefficients");
    let h = wavelet.dec_lo();
    let g = wavelet.dec_hi();
    let taps = h.len();
    let n = approx.len() * 2;
    let mut signal = vec![0.0; n];
    for k in 0..approx.len() {
        let base = 2 * k;
        let a = approx[k];
        let d = detail[k];
        for m in 0..taps {
            signal[(base + m) % n] += h[m] * a + g[m] * d;
        }
    }
    signal
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn haar_known_values() {
        let w = Wavelet::haar();
        let x = [1.0, 1.0, -1.0, -1.0];
        let (a, d) = analyze(&w, &x);
        let s = std::f64::consts::SQRT_2;
        assert_close(&a, &[s, -s], 1e-12, "approx");
        assert_close(&d, &[0.0, 0.0], 1e-12, "detail");
    }

    #[test]
    fn haar_detail_captures_oscillation() {
        let w = Wavelet::haar();
        let x = [1.0, -1.0, 1.0, -1.0];
        let (a, d) = analyze(&w, &x);
        let s = std::f64::consts::SQRT_2;
        assert_close(&a, &[0.0, 0.0], 1e-12, "approx");
        // dec_hi = [-1/√2, 1/√2] under the QMF convention used here, so the
        // alternating signal lands on -√2 in every detail slot.
        assert_close(&d, &[-s, -s], 1e-12, "detail");
    }

    #[test]
    fn constant_signal_has_zero_details_for_all_wavelets() {
        for name in Wavelet::all_names() {
            let w = Wavelet::by_name(name).unwrap();
            let x = vec![3.5; 32];
            let (a, d) = analyze(&w, &x);
            for v in &d {
                assert!(v.abs() < 1e-9, "{name}: detail {v}");
            }
            // Approx coefficients carry the scaled constant.
            for v in &a {
                assert!((v - 3.5 * std::f64::consts::SQRT_2).abs() < 1e-9, "{name}");
            }
        }
    }

    #[test]
    fn roundtrip_every_wavelet_small_even_lengths() {
        for name in Wavelet::all_names() {
            let w = Wavelet::by_name(name).unwrap();
            for n in [2usize, 4, 6, 8, 10, 16, 30, 64] {
                let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 17) as f64 - 8.0).collect();
                let (a, d) = analyze(&w, &x);
                assert_eq!(a.len(), n / 2);
                let y = synthesize(&w, &a, &d);
                assert_close(&x, &y, 1e-9, &format!("{name} n={n}"));
            }
        }
    }

    /// Orthonormality ⇒ energy preservation (Parseval).
    #[test]
    fn energy_is_preserved() {
        for name in ["haar", "db2", "db4", "sym4", "coif1"] {
            let w = Wavelet::by_name(name).unwrap();
            let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() * 2.0).collect();
            let ex: f64 = x.iter().map(|v| v * v).sum();
            let (a, d) = analyze(&w, &x);
            let ec: f64 = a.iter().chain(&d).map(|v| v * v).sum();
            assert!((ex - ec).abs() < 1e-9 * ex, "{name}: {ex} vs {ec}");
        }
    }

    #[test]
    fn smooth_signals_compact_into_approx() {
        // db4 has 4 vanishing moments; a cubic (away from the wrap) should
        // put almost all energy into the approximation band.
        let w = Wavelet::daubechies(4).unwrap();
        let x: Vec<f64> = (0..128).map(|i| ((i as f64) * 0.05).sin()).collect();
        let (a, d) = analyze(&w, &x);
        let ea: f64 = a.iter().map(|v| v * v).sum();
        let ed: f64 = d.iter().map(|v| v * v).sum();
        assert!(ed < ea * 0.01, "detail energy {ed} vs approx {ea}");
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        let _ = analyze(&Wavelet::haar(), &[1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn roundtrip_random_signals(
            half_n in 1usize..100,
            seed in any::<u64>(),
            widx in 0usize..18,
        ) {
            let name = Wavelet::all_names()[widx];
            let w = Wavelet::by_name(name).unwrap();
            let n = half_n * 2;
            let mut s = seed | 1;
            let x: Vec<f64> = (0..n).map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                ((s >> 16) as f64 / (1u64 << 48) as f64) * 20.0 - 10.0
            }).collect();
            let (a, d) = analyze(&w, &x);
            let y = synthesize(&w, &a, &d);
            for (u, v) in x.iter().zip(&y) {
                prop_assert!((u - v).abs() < 1e-8, "{} vs {}", u, v);
            }
        }
    }
}
