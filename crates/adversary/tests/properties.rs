//! Property tests for the adversary crate's two contracts: deterministic
//! plan expansion and robust-rule screening bounds.

use jwins_adversary::{
    apply_behavior, AttackBehavior, AttackPlan, AttackTimeline, AttackWindow, Robust,
    RobustAccumulator,
};
use jwins_sim::SimTime;
use proptest::prelude::*;

fn behaviors() -> impl Strategy<Value = AttackBehavior> {
    prop_oneof![
        (0.01f64..10.0).prop_map(|std| AttackBehavior::Garbage { std }),
        Just(AttackBehavior::SignFlip),
        (-8.0f64..8.0).prop_map(|factor| AttackBehavior::Scale { factor }),
        ((0.01f64..1.0), (0.01f64..4.0))
            .prop_map(|(rate, amplitude)| AttackBehavior::Drift { rate, amplitude }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expansion is a pure function of `(plan, n, seed)`: two expansions
    /// agree exactly, and the attacker count honors the fraction.
    #[test]
    fn random_fraction_expansion_is_seed_stable(
        seed in any::<u64>(),
        n in 2usize..64,
        fraction in 0.0f64..1.0,
        behavior in behaviors(),
    ) {
        let plan = AttackPlan::RandomFraction {
            fraction,
            from_s: 0.0,
            until_s: f64::INFINITY,
            behavior,
        };
        let a = AttackTimeline::expand(&plan, n, seed).unwrap();
        let b = AttackTimeline::expand(&plan, n, seed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.window_count(), (fraction * n as f64).round() as usize);
        prop_assert!(a.attackers().iter().all(|&node| node < n));
    }

    /// Scripted windows are half-open: a node is Byzantine on
    /// `[from, until)` and honest everywhere else.
    #[test]
    fn windows_are_half_open_in_time(
        node in 0usize..8,
        from_ms in 0u64..10_000,
        len_ms in 1u64..10_000,
        behavior in behaviors(),
    ) {
        let from_s = from_ms as f64 * 1e-3;
        let until_s = (from_ms + len_ms) as f64 * 1e-3;
        let plan = AttackPlan::Scripted(vec![AttackWindow::new(node, from_s, until_s, behavior)]);
        let t = AttackTimeline::expand(&plan, 8, 0).unwrap();
        let start = SimTime::from_secs_f64(from_s);
        let end = SimTime::from_secs_f64(until_s);
        prop_assert!(t.behavior_at(node, start).is_some());
        prop_assert!(t.behavior_at(node, SimTime(end.0 - 1)).is_some());
        prop_assert!(t.behavior_at(node, end).is_none());
        if start.0 > 0 {
            prop_assert!(t.behavior_at(node, SimTime(start.0 - 1)).is_none());
        }
        let other = (node + 1) % 8;
        prop_assert!(t.behavior_at(other, start).is_none());
    }

    /// Perturbations depend only on `(behavior, seed, node, round)` — and
    /// always leave the vector finite and wire-encodable.
    #[test]
    fn perturbations_are_pure_and_finite(
        behavior in behaviors(),
        seed in any::<u64>(),
        node in 0usize..64,
        round in 0usize..1000,
        base in proptest::collection::vec(-10.0f32..10.0, 1..128),
    ) {
        let mut a = base.clone();
        let mut b = base.clone();
        apply_behavior(behavior, seed, node, round, &mut a);
        apply_behavior(behavior, seed, node, round, &mut b);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|v| v.is_finite()));
    }

    /// Trimmed mean (deep enough to out-trim the attackers) and median
    /// stay inside the coordinate range spanned by the honest inputs and
    /// the node's own value, for any minority of arbitrarily-placed
    /// Byzantine contributions (`f < n/2`).
    #[test]
    fn trimmed_mean_and_median_are_bounded_by_honest_range(
        own in proptest::collection::vec(-5.0f32..5.0, 4..32),
        honest_offsets in proptest::collection::vec(-1.0f32..1.0, 2..6),
        byz_count in 1usize..3,
        byz_value in prop_oneof![Just(-1.0e6f32), Just(1.0e6f32), -2.0f32..2.0],
    ) {
        // f < n/2: strictly more honest neighbors than Byzantine ones.
        prop_assume!(honest_offsets.len() > byz_count);
        let dim = own.len();
        let honest: Vec<Vec<f32>> = honest_offsets
            .iter()
            .map(|o| own.iter().map(|v| v + o).collect())
            .collect();
        for rule in [Robust::TrimmedMean { trim: 0.49 }, Robust::Median] {
            let mut acc = RobustAccumulator::new(&own, 1.0, rule);
            for h in &honest {
                acc.add_dense(h, 1.0);
            }
            for _ in 0..byz_count {
                acc.add_dense(&vec![byz_value; dim], 1.0);
            }
            let (out, _) = acc.finish();
            for k in 0..dim {
                let mut lo = own[k];
                let mut hi = own[k];
                for h in &honest {
                    lo = lo.min(h[k]);
                    hi = hi.max(h[k]);
                }
                prop_assert!(
                    out[k] >= lo - 1e-4 && out[k] <= hi + 1e-4,
                    "{rule:?} coord {k}: {} outside honest range [{lo}, {hi}]",
                    out[k]
                );
            }
        }
    }

    /// Norm clipping caps the aggregate's deviation from the own vector at
    /// `tau`, and leaves in-budget contributions untouched (identical to
    /// plain averaging).
    #[test]
    fn norm_clip_never_increases_the_deviation(
        own in proptest::collection::vec(-3.0f32..3.0, 2..32),
        deltas in proptest::collection::vec(
            (proptest::collection::vec(-10.0f32..10.0, 2..32), 0.1f64..2.0),
            1..4
        ),
        tau in 0.1f64..5.0,
    ) {
        let mut clipped = RobustAccumulator::new(&own, 1.0, Robust::NormClip { tau });
        let mut plain = RobustAccumulator::new(&own, 1.0, Robust::None);
        let mut max_dev = 0.0f64;
        for (delta, weight) in &deltas {
            let contribution: Vec<f32> = own
                .iter()
                .zip(delta.iter().cycle())
                .map(|(v, d)| v + d)
                .collect();
            let dev: f64 = contribution
                .iter()
                .zip(&own)
                .map(|(c, o)| (f64::from(*c) - f64::from(*o)).powi(2))
                .sum::<f64>()
                .sqrt();
            max_dev = max_dev.max(dev);
            clipped.add_dense(&contribution, *weight);
            plain.add_dense(&contribution, *weight);
        }
        let (out, stats) = clipped.finish();
        let out_dev: f64 = out
            .iter()
            .zip(&own)
            .map(|(c, o)| (f64::from(*c) - f64::from(*o)).powi(2))
            .sum::<f64>()
            .sqrt();
        prop_assert!(
            out_dev <= tau + 1e-3,
            "aggregate drifted {out_dev} > tau {tau}"
        );
        if max_dev <= tau {
            // Nothing out of budget: the rule is exactly plain averaging.
            prop_assert_eq!(stats.clipped, 0);
            prop_assert_eq!(out, plain.finish().0);
        }
    }

    /// Row-stochasticity: with every input equal to the own vector, all
    /// rules return it unchanged — removed mass is renormalized into the
    /// self entry, never lost.
    #[test]
    fn constant_input_is_a_fixed_point_of_every_rule(
        own in proptest::collection::vec(-4.0f32..4.0, 1..48),
        weights in proptest::collection::vec(0.05f64..2.0, 1..6),
        rule_pick in 0usize..4,
    ) {
        let rule = match rule_pick {
            0 => Robust::None,
            1 => Robust::TrimmedMean { trim: 0.45 },
            2 => Robust::Median,
            _ => Robust::NormClip { tau: 0.5 },
        };
        let mut acc = RobustAccumulator::new(&own, 1.0, rule);
        for w in &weights {
            acc.add_dense(&own, *w);
        }
        let (out, _) = acc.finish();
        for (o, v) in own.iter().zip(&out) {
            prop_assert!((o - v).abs() < 1e-5, "{rule:?} moved {o} to {v}");
        }
    }
}
