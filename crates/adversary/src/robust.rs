//! Robust aggregation rules applied at the mixing layer.
//!
//! A [`RobustAccumulator`] is a drop-in replacement for the engine's plain
//! partial averager: strategies feed it their own parameters plus every
//! decoded neighbor contribution, and [`RobustAccumulator::finish`] applies
//! the configured [`Robust`] rule before averaging. The invariant shared
//! with `StalenessPolicy::downweight_row` is **row stochasticity**: any
//! mass a rule removes (trimmed entries, clipped norm excess) is
//! renormalized over the surviving entries — self included — so the
//! effective mixing row still sums to one and an all-honest, all-equal
//! input is a fixed point.

use serde::{Deserialize, Serialize};

/// Which robust aggregation rule the mixing layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Robust {
    /// Plain weighted averaging (the pre-existing engine behavior).
    #[default]
    None,
    /// Coordinate-wise trimmed mean: per coordinate, drop the
    /// `floor(trim * received)` largest and smallest neighbor values; their
    /// weight is renormalized over the surviving entries (self included).
    TrimmedMean {
        /// Per-side trim fraction of received contributions, in `[0, 0.5)`.
        trim: f64,
    },
    /// Coordinate-wise weighted median over self + neighbor values. A pure
    /// selection rule: no partial mass is clipped, so its
    /// [`RobustStats`] stay zero.
    Median,
    /// Per-message norm clip: a contribution's deviation from the node's
    /// own parameters is rescaled to at most `tau`; the scaled-away mass
    /// implicitly stays with the own value.
    NormClip {
        /// Maximum allowed L2 deviation from the receiver's parameters.
        tau: f64,
    },
}

impl Robust {
    /// Whether this is the plain-averaging no-op.
    pub fn is_none(&self) -> bool {
        matches!(self, Robust::None)
    }

    /// Validates rule parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Robust::None | Robust::Median => Ok(()),
            Robust::TrimmedMean { trim } => {
                if (0.0..0.5).contains(&trim) {
                    Ok(())
                } else {
                    Err(format!("trim fraction {trim} outside [0, 0.5)"))
                }
            }
            Robust::NormClip { tau } => {
                if tau > 0.0 && tau.is_finite() {
                    Ok(())
                } else {
                    Err(format!("norm-clip tau {tau} must be positive and finite"))
                }
            }
        }
    }
}

/// What a robust rule removed during one aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RobustStats {
    /// Trimmed mean: coordinate entries dropped. Norm clip: messages
    /// rescaled. Median: always zero (selection removes nothing).
    pub clipped: u64,
    /// Mixing weight removed from the row and renormalized over the
    /// survivors — trimmed weight averaged over coordinates, or
    /// `Σ weight·(1−scale)` for norm clip.
    pub mass: f64,
}

impl RobustStats {
    /// Merges another aggregation's stats into this one.
    pub fn absorb(&mut self, other: RobustStats) {
        self.clipped += other.clipped;
        self.mass += other.mass;
    }

    /// Whether nothing was removed.
    pub fn is_zero(&self) -> bool {
        self.clipped == 0 && self.mass == 0.0
    }
}

/// One neighbor contribution: values over either all coordinates (dense)
/// or an explicit index set (sparse).
#[derive(Debug, Clone)]
struct Contribution {
    indices: Option<Vec<u32>>,
    values: Vec<f32>,
    weight: f64,
}

/// A partial averager with a robust rule applied at [`finish`].
///
/// The API mirrors the engine's plain averager (`new` / `add_sparse` /
/// `add_dense` / `finish`) so strategies can substitute it without
/// restructuring their decode paths. All arithmetic is in `f64`, and every
/// step is a deterministic fold over contributions **in insertion order**
/// (ties in coordinate sorts are broken by that order), so results are
/// bit-stable for bit-stable inputs.
///
/// [`finish`]: RobustAccumulator::finish
#[derive(Debug, Clone)]
pub struct RobustAccumulator {
    own: Vec<f64>,
    self_weight: f64,
    rule: Robust,
    contributions: Vec<Contribution>,
}

impl RobustAccumulator {
    /// Starts an aggregation from the node's own parameter vector.
    ///
    /// # Panics
    ///
    /// Panics when `self_weight` is not strictly positive (a zero self
    /// weight would leave trimmed mass with nowhere to go) or the rule is
    /// invalid — both are rejected much earlier at config validation.
    pub fn new(own: &[f32], self_weight: f64, rule: Robust) -> Self {
        assert!(
            self_weight > 0.0,
            "robust aggregation requires positive self weight, got {self_weight}"
        );
        rule.validate()
            .expect("robust rule validated at config time");
        Self {
            own: own.iter().map(|&v| f64::from(v)).collect(),
            self_weight,
            rule,
            contributions: Vec::new(),
        }
    }

    /// Adds a sparse contribution over `indices` (must be in-range and
    /// match `values` in length — the caller validates while decoding).
    pub fn add_sparse(&mut self, indices: &[u32], values: &[f32], weight: f64) {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.iter().all(|&i| (i as usize) < self.own.len()));
        self.contributions.push(Contribution {
            indices: Some(indices.to_vec()),
            values: values.to_vec(),
            weight,
        });
    }

    /// Adds a dense contribution over every coordinate.
    pub fn add_dense(&mut self, values: &[f32], weight: f64) {
        debug_assert_eq!(values.len(), self.own.len());
        self.contributions.push(Contribution {
            indices: None,
            values: values.to_vec(),
            weight,
        });
    }

    /// Applies the rule and returns the averaged vector plus what the rule
    /// removed.
    pub fn finish(mut self) -> (Vec<f32>, RobustStats) {
        match self.rule {
            Robust::None => (self.finish_plain(), RobustStats::default()),
            Robust::NormClip { tau } => {
                let stats = self.clip_norms(tau);
                (self.finish_plain(), stats)
            }
            Robust::TrimmedMean { trim } => self.finish_trimmed(trim),
            Robust::Median => (self.finish_median(), RobustStats::default()),
        }
    }

    /// Plain partial averaging: exactly the engine's default mixing.
    fn finish_plain(&self) -> Vec<f32> {
        let dim = self.own.len();
        let mut num: Vec<f64> = self.own.iter().map(|&v| v * self.self_weight).collect();
        let mut den = vec![self.self_weight; dim];
        for c in &self.contributions {
            match &c.indices {
                Some(indices) => {
                    for (&i, &v) in indices.iter().zip(&c.values) {
                        num[i as usize] += f64::from(v) * c.weight;
                        den[i as usize] += c.weight;
                    }
                }
                None => {
                    for (k, &v) in c.values.iter().enumerate() {
                        num[k] += f64::from(v) * c.weight;
                        den[k] += c.weight;
                    }
                }
            }
        }
        num.iter()
            .zip(&den)
            .map(|(&n, &d)| (n / d) as f32)
            .collect()
    }

    /// Rescales each contribution's deviation from `own` to L2 norm at
    /// most `tau`. Weights are untouched, so row sums are trivially
    /// preserved; the clipped-away deviation stays at the own value.
    fn clip_norms(&mut self, tau: f64) -> RobustStats {
        let mut stats = RobustStats::default();
        for c in &mut self.contributions {
            let norm_sq: f64 = match &c.indices {
                Some(indices) => indices
                    .iter()
                    .zip(&c.values)
                    .map(|(&i, &v)| {
                        let d = f64::from(v) - self.own[i as usize];
                        d * d
                    })
                    .sum(),
                None => c
                    .values
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| {
                        let d = f64::from(v) - self.own[k];
                        d * d
                    })
                    .sum(),
            };
            let norm = norm_sq.sqrt();
            if norm <= tau || norm == 0.0 {
                continue;
            }
            let scale = tau / norm;
            stats.clipped += 1;
            stats.mass += c.weight * (1.0 - scale);
            match c.indices.clone() {
                Some(indices) => {
                    for (&i, v) in indices.iter().zip(c.values.iter_mut()) {
                        let own = self.own[i as usize];
                        *v = (own + (f64::from(*v) - own) * scale) as f32;
                    }
                }
                None => {
                    for (k, v) in c.values.iter_mut().enumerate() {
                        let own = self.own[k];
                        *v = (own + (f64::from(*v) - own) * scale) as f32;
                    }
                }
            }
        }
        stats
    }

    /// Coordinate-wise trimmed mean. Per coordinate the `floor(trim * m)`
    /// smallest and largest of the `m` neighbor values present there are
    /// dropped and their weight is renormalized over the survivors (self
    /// entry included), so the effective row still sums to
    /// `self_weight + Σ present weights`. Renormalizing — rather than
    /// handing the trimmed weight to the self entry — keeps the mixing
    /// rate independent of the trim depth: a deep trim on an honest
    /// cluster still averages the kept center instead of freezing every
    /// node near its own model.
    fn finish_trimmed(self, trim: f64) -> (Vec<f32>, RobustStats) {
        let dim = self.own.len();
        let per_coord = self.per_coordinate();
        let mut out = vec![0.0f32; dim];
        let mut stats = RobustStats::default();
        for (k, entries) in per_coord.into_iter().enumerate() {
            // Entries are (value, weight) in insertion order; sort by value
            // with insertion order as the deterministic tiebreak.
            let mut sorted: Vec<(usize, f64, f64)> = entries
                .into_iter()
                .enumerate()
                .map(|(ord, (v, w))| (ord, v, w))
                .collect();
            sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let m = sorted.len();
            let cut = ((trim * m as f64).floor() as usize).min(m / 2);
            let mut num = self.own[k] * self.self_weight;
            let mut den = self.self_weight;
            for (pos, &(_, v, w)) in sorted.iter().enumerate() {
                if pos < cut || pos >= m - cut {
                    stats.clipped += 1;
                    stats.mass += w;
                } else {
                    num += v * w;
                    den += w;
                }
            }
            out[k] = (num / den) as f32;
        }
        // Mass is per-coordinate weight; report it averaged over the
        // dimension so it is comparable to a per-message weight.
        if dim > 0 {
            stats.mass /= dim as f64;
        }
        (out, stats)
    }

    /// Coordinate-wise weighted median over self + present neighbors:
    /// the smallest value whose cumulative weight reaches half the total.
    fn finish_median(self) -> Vec<f32> {
        let dim = self.own.len();
        let per_coord = self.per_coordinate();
        let mut out = vec![0.0f32; dim];
        for (k, entries) in per_coord.into_iter().enumerate() {
            let mut sorted: Vec<(usize, f64, f64)> =
                std::iter::once((self.own[k], self.self_weight))
                    .chain(entries)
                    .enumerate()
                    .map(|(ord, (v, w))| (ord, v, w))
                    .collect();
            sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let total: f64 = sorted.iter().map(|&(_, _, w)| w).sum();
            let mut acc = 0.0f64;
            let mut pick = sorted[sorted.len() - 1].1;
            for &(_, v, w) in &sorted {
                acc += w;
                if acc >= total / 2.0 {
                    pick = v;
                    break;
                }
            }
            out[k] = pick as f32;
        }
        out
    }

    /// Neighbor `(value, weight)` entries per coordinate, in contribution
    /// insertion order.
    fn per_coordinate(&self) -> Vec<Vec<(f64, f64)>> {
        let mut per: Vec<Vec<(f64, f64)>> = vec![Vec::new(); self.own.len()];
        for c in &self.contributions {
            match &c.indices {
                Some(indices) => {
                    for (&i, &v) in indices.iter().zip(&c.values) {
                        per[i as usize].push((f64::from(v), c.weight));
                    }
                }
                None => {
                    for (k, &v) in c.values.iter().enumerate() {
                        per[k].push((f64::from(v), c.weight));
                    }
                }
            }
        }
        per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(own: &[f32], rule: Robust) -> RobustAccumulator {
        RobustAccumulator::new(own, 1.0, rule)
    }

    #[test]
    fn none_matches_plain_partial_average() {
        let mut a = acc(&[1.0, 2.0], Robust::None);
        a.add_dense(&[3.0, 4.0], 1.0);
        a.add_sparse(&[1], &[8.0], 2.0);
        let (out, stats) = a.finish();
        assert!(stats.is_zero());
        assert!((out[0] - 2.0).abs() < 1e-6);
        // Coord 1: (2 + 4 + 16) / (1 + 1 + 2) = 5.5.
        assert!((out[1] - 5.5).abs() < 1e-6);
    }

    #[test]
    fn trimmed_mean_drops_the_outlier_and_keeps_the_row_sum() {
        let mut a = acc(&[0.0], Robust::TrimmedMean { trim: 0.34 });
        a.add_dense(&[0.1], 1.0);
        a.add_dense(&[100.0], 1.0); // Byzantine outlier.
        a.add_dense(&[-0.1], 1.0);
        let (out, stats) = a.finish();
        // One trimmed per side (floor(0.34 * 3) = 1): 100.0 and -0.1 go,
        // the survivors renormalize. Result (0*1 + 0.1*1) / 2.
        assert!((out[0] - 0.05).abs() < 1e-6, "got {}", out[0]);
        assert_eq!(stats.clipped, 2);
        assert!((stats.mass - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_constant_input_is_a_fixed_point() {
        let mut a = acc(&[7.0, 7.0, 7.0], Robust::TrimmedMean { trim: 0.4 });
        for _ in 0..5 {
            a.add_dense(&[7.0, 7.0, 7.0], 0.5);
        }
        let (out, _) = a.finish();
        for v in out {
            assert!((v - 7.0).abs() < 1e-6, "row sum not preserved: {v}");
        }
    }

    #[test]
    fn median_resists_a_minority_of_extremes() {
        let mut a = acc(&[0.0], Robust::Median);
        a.add_dense(&[0.2], 1.0);
        a.add_dense(&[-0.2], 1.0);
        a.add_dense(&[1.0e6], 1.0);
        let (out, stats) = a.finish();
        assert!(out[0].abs() <= 0.2, "median dragged to {}", out[0]);
        assert!(stats.is_zero(), "median is a pure selection");
    }

    #[test]
    fn norm_clip_caps_the_deviation_and_counts_messages() {
        let own = [0.0f32, 0.0];
        let mut a = acc(&own, Robust::NormClip { tau: 1.0 });
        a.add_dense(&[3.0, 4.0], 1.0); // Deviation norm 5 -> scaled by 0.2.
        a.add_dense(&[0.3, 0.4], 1.0); // Within tau: untouched.
        let (out, stats) = a.finish();
        assert_eq!(stats.clipped, 1);
        assert!((stats.mass - 0.8).abs() < 1e-9);
        // Clipped contribution becomes (0.6, 0.8): out = (0.6+0.3)/3 etc.
        assert!((out[0] - 0.3).abs() < 1e-6);
        assert!((out[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn sparse_coordinates_only_mix_where_present() {
        let mut a = acc(&[1.0, 1.0], Robust::TrimmedMean { trim: 0.4 });
        a.add_sparse(&[0], &[3.0], 1.0);
        let (out, _) = a.finish();
        // Coord 1 saw no neighbors: stays at own value exactly.
        assert!((out[0] - 2.0).abs() < 1e-6);
        assert!((out[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rule_validation() {
        assert!(Robust::TrimmedMean { trim: 0.5 }.validate().is_err());
        assert!(Robust::TrimmedMean { trim: -0.1 }.validate().is_err());
        assert!(Robust::NormClip { tau: 0.0 }.validate().is_err());
        assert!(Robust::None.validate().is_ok());
        assert!(Robust::None.is_none() && !Robust::Median.is_none());
    }
}
