//! Attack schedules: serde-configurable Byzantine plans expanded
//! deterministically into virtual-time attack windows.
//!
//! An [`AttackPlan`] is *generative*, exactly like `jwins_fault::FaultPlan`:
//! it expands a seed into a concrete [`AttackTimeline`] — a validated,
//! per-node list of attack windows with composable [`AttackBehavior`]s — so
//! a Byzantine cluster is exactly as reproducible as its data split. The
//! training engine consults the timeline at *message-build time*: a marked
//! node trains honestly but perturbs a **copy** of its parameters before
//! encoding the outbound message, so the attack composes with faults,
//! staleness, churn and repair (a crashed node builds no messages, hence
//! injects nothing).

use jwins_sim::SimTime;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How a Byzantine node corrupts the parameter vector it advertises.
///
/// Every behavior is *wire-valid*: the perturbed vector still encodes and
/// decodes through whatever `ShareStrategy` codec is in use, so the attack
/// poisons the mixing average instead of crashing honest decoders (byte
/// garbage is already rejected as `Err` by every strategy — see the
/// `adversarial_inputs` proptests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackBehavior {
    /// Replace the parameters with seeded uniform noise in `[-std, std]`
    /// (a garbage payload that still parses).
    Garbage {
        /// Noise half-width (`> 0`, finite).
        std: f64,
    },
    /// Advertise the negated parameters — the classic sign-flip attack.
    SignFlip,
    /// Advertise the parameters scaled by `factor` (e.g. `10.0` for a
    /// large-norm attack, `-4.0` for an amplified flip).
    Scale {
        /// Multiplier applied to every coordinate (finite).
        factor: f64,
    },
    /// Collude: drift the advertised parameters toward a target vector
    /// shared by *all* attackers (derived from the plan seed alone), moving
    /// a `rate` fraction of the way each injection.
    Drift {
        /// Per-injection step toward the target, in `(0, 1]`.
        rate: f64,
        /// Half-width of the shared target's coordinates (`> 0`, finite).
        amplitude: f64,
    },
}

impl AttackBehavior {
    /// Validates the behavior parameters.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AttackBehavior::Garbage { std } => {
                if std > 0.0 && std.is_finite() {
                    Ok(())
                } else {
                    Err(format!("garbage std {std} must be positive and finite"))
                }
            }
            AttackBehavior::SignFlip => Ok(()),
            AttackBehavior::Scale { factor } => {
                if factor.is_finite() {
                    Ok(())
                } else {
                    Err(format!("scale factor {factor} must be finite"))
                }
            }
            AttackBehavior::Drift { rate, amplitude } => {
                if !(rate > 0.0 && rate <= 1.0) {
                    return Err(format!("drift rate {rate} outside (0, 1]"));
                }
                if amplitude > 0.0 && amplitude.is_finite() {
                    Ok(())
                } else {
                    Err(format!(
                        "drift amplitude {amplitude} must be positive and finite"
                    ))
                }
            }
        }
    }
}

/// One planned attack window: `node` behaves Byzantine over
/// `[from_s, until_s)` in virtual time. An infinite `until_s` means the
/// node never reforms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackWindow {
    /// The node that turns Byzantine.
    pub node: usize,
    /// Virtual start of the window, in seconds.
    pub from_s: f64,
    /// Virtual end of the window, in seconds (`f64::INFINITY` = forever).
    pub until_s: f64,
    /// What the node does while Byzantine.
    pub behavior: AttackBehavior,
}

impl AttackWindow {
    /// A window over `[from_s, until_s)`.
    pub fn new(node: usize, from_s: f64, until_s: f64, behavior: AttackBehavior) -> Self {
        Self {
            node,
            from_s,
            until_s,
            behavior,
        }
    }

    /// A permanent attacker from `t = 0`.
    pub fn forever(node: usize, behavior: AttackBehavior) -> Self {
        Self::new(node, 0.0, f64::INFINITY, behavior)
    }
}

/// A serde-configurable Byzantine schedule.
///
/// Plans are expanded by [`AttackTimeline::expand`] deterministically in
/// `(plan, n, seed)`; the same experiment always sees the same attackers.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackPlan {
    /// No attackers (the degenerate plan — a strict engine no-op).
    #[default]
    None,
    /// Explicit attacker script ("node 3 sign-flips from t=10 s").
    Scripted(Vec<AttackWindow>),
    /// A seed-chosen `fraction` of nodes all attack with the same behavior
    /// over `[from_s, until_s)` — the sweep knob of the `ext_byzantine`
    /// bench.
    RandomFraction {
        /// Fraction of nodes that attack, in `[0, 1]`.
        fraction: f64,
        /// Virtual start of the attack, in seconds.
        from_s: f64,
        /// Virtual end of the attack, in seconds (`f64::INFINITY` = forever).
        until_s: f64,
        /// What the attackers do.
        behavior: AttackBehavior,
    },
}

impl AttackPlan {
    /// Whether this plan injects nothing.
    pub fn is_noop(&self) -> bool {
        match self {
            AttackPlan::None => true,
            AttackPlan::Scripted(windows) => windows.is_empty(),
            AttackPlan::RandomFraction { fraction, .. } => *fraction == 0.0,
        }
    }

    /// Validates plan parameters (node indices are checked at expansion,
    /// when the cluster size is known).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let window = |from_s: f64, until_s: f64| {
            // NaN bounds must fail validation: `!is_finite()` covers a NaN
            // start, and `until_s` gets an explicit NaN check because the
            // plain `<=` below would silently let one through.
            if !from_s.is_finite() || from_s < 0.0 {
                return Err(format!("attack start {from_s} must be finite and >= 0"));
            }
            if until_s.is_nan() || until_s <= from_s {
                return Err(format!(
                    "attack window [{from_s}, {until_s}) must have positive length"
                ));
            }
            Ok(())
        };
        match self {
            AttackPlan::None => Ok(()),
            AttackPlan::Scripted(windows) => {
                for w in windows {
                    window(w.from_s, w.until_s)?;
                    w.behavior.validate()?;
                }
                Ok(())
            }
            AttackPlan::RandomFraction {
                fraction,
                from_s,
                until_s,
                behavior,
            } => {
                if !(0.0..=1.0).contains(fraction) {
                    return Err(format!("attacker fraction {fraction} outside [0, 1]"));
                }
                window(*from_s, *until_s)?;
                behavior.validate()
            }
        }
    }
}

/// A concrete attack window in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Interval {
    node: usize,
    start: SimTime,
    end: SimTime,
    behavior: AttackBehavior,
}

/// A validated, expanded attack schedule: per-node non-overlapping windows,
/// queryable by time, plus the seeded perturbation each behavior applies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttackTimeline {
    intervals: Vec<Interval>,
    seed: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn uniform01(rng: &mut ChaCha8Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl AttackTimeline {
    /// Expands `plan` for an `n`-node cluster, deterministically in
    /// `(plan, n, seed)`.
    ///
    /// # Errors
    ///
    /// Rejects invalid plan parameters, out-of-range node indices and
    /// per-node overlapping windows.
    pub fn expand(plan: &AttackPlan, n: usize, seed: u64) -> Result<AttackTimeline, String> {
        plan.validate()?;
        let mut intervals: Vec<Interval> = Vec::new();
        let mut push = |node: usize, from_s: f64, until_s: f64, behavior: AttackBehavior| {
            intervals.push(Interval {
                node,
                start: SimTime::from_secs_f64(from_s),
                end: SimTime::from_secs_f64(until_s),
                behavior,
            });
        };
        match plan {
            AttackPlan::None => {}
            AttackPlan::Scripted(windows) => {
                for w in windows {
                    if w.node >= n {
                        return Err(format!("attack node {} outside cluster of {n}", w.node));
                    }
                    push(w.node, w.from_s, w.until_s, w.behavior);
                }
            }
            AttackPlan::RandomFraction {
                fraction,
                from_s,
                until_s,
                behavior,
            } => {
                let count = (fraction * n as f64).round() as usize;
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBAD_B02);
                use rand::seq::SliceRandom;
                order.shuffle(&mut rng);
                let mut attackers: Vec<usize> = order.into_iter().take(count).collect();
                attackers.sort_unstable();
                for node in attackers {
                    push(node, *from_s, *until_s, *behavior);
                }
            }
        }
        // Per-node windows must be disjoint: overlapping behaviors at one
        // instant would be ambiguous to apply.
        intervals.sort_by_key(|iv| (iv.node, iv.start, iv.end));
        for pair in intervals.windows(2) {
            if pair[0].node == pair[1].node && pair[1].start < pair[0].end {
                return Err(format!(
                    "node {} has overlapping attack windows",
                    pair[0].node
                ));
            }
        }
        for iv in &intervals {
            if iv.end <= iv.start {
                return Err(format!(
                    "node {} attack window rounds to zero length",
                    iv.node
                ));
            }
        }
        Ok(AttackTimeline { intervals, seed })
    }

    /// Whether the timeline contains no attack windows.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of attack windows.
    pub fn window_count(&self) -> usize {
        self.intervals.len()
    }

    /// Distinct nodes that attack at any point, ascending.
    pub fn attackers(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.intervals.iter().map(|iv| iv.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The behavior `node` exhibits at time `t`, if Byzantine then
    /// (windows are half-open: active on `[start, end)`).
    pub fn behavior_at(&self, node: usize, t: SimTime) -> Option<AttackBehavior> {
        self.intervals
            .iter()
            .find(|iv| iv.node == node && iv.start <= t && t < iv.end)
            .map(|iv| iv.behavior)
    }

    /// Applies `behavior` to a parameter vector copy, deterministically in
    /// `(plan seed, node, round)` — the engine calls this on the copy it
    /// feeds to message construction, never on the node's real model.
    ///
    /// Stochastic behaviors re-derive their RNG from scratch per call, so
    /// the perturbation is a pure function of its arguments (thread counts
    /// and event interleavings cannot move it).
    pub fn apply(&self, behavior: AttackBehavior, node: usize, round: usize, params: &mut [f32]) {
        apply_behavior(behavior, self.seed, node, round, params);
    }
}

/// The pure perturbation behind [`AttackTimeline::apply`], exposed for
/// property tests.
pub fn apply_behavior(
    behavior: AttackBehavior,
    seed: u64,
    node: usize,
    round: usize,
    params: &mut [f32],
) {
    match behavior {
        AttackBehavior::Garbage { std } => {
            let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(
                seed ^ ((node as u64) << 17) ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            for p in params.iter_mut() {
                *p = ((uniform01(&mut rng) * 2.0 - 1.0) * std) as f32;
            }
        }
        AttackBehavior::SignFlip => {
            for p in params.iter_mut() {
                *p = -*p;
            }
        }
        AttackBehavior::Scale { factor } => {
            for p in params.iter_mut() {
                *p = (f64::from(*p) * factor) as f32;
            }
        }
        AttackBehavior::Drift { rate, amplitude } => {
            // The target is shared by every attacker: it depends on the plan
            // seed and the coordinate index only.
            for (k, p) in params.iter_mut().enumerate() {
                let u =
                    splitmix64(seed ^ 0x007A_46E7 ^ (k as u64)) as f64 / (u64::MAX as f64 + 1.0);
                let target = (u * 2.0 - 1.0) * amplitude;
                *p = (f64::from(*p) + rate * (target - f64::from(*p))) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_expands_empty() {
        let t = AttackTimeline::expand(&AttackPlan::None, 8, 1).unwrap();
        assert!(t.is_empty());
        assert!(t.behavior_at(0, SimTime(123)).is_none());
        assert!(AttackPlan::None.is_noop());
        assert!(AttackPlan::Scripted(Vec::new()).is_noop());
    }

    #[test]
    fn scripted_window_is_half_open() {
        let plan = AttackPlan::Scripted(vec![AttackWindow::new(
            2,
            1.0,
            2.0,
            AttackBehavior::SignFlip,
        )]);
        let t = AttackTimeline::expand(&plan, 4, 0).unwrap();
        assert_eq!(t.window_count(), 1);
        assert_eq!(t.attackers(), vec![2]);
        assert!(t.behavior_at(2, SimTime::from_secs_f64(1.0)).is_some());
        assert!(t.behavior_at(2, SimTime::from_secs_f64(1.9)).is_some());
        assert!(t.behavior_at(2, SimTime::from_secs_f64(2.0)).is_none());
        assert!(t.behavior_at(1, SimTime::from_secs_f64(1.5)).is_none());
    }

    #[test]
    fn scripted_overlaps_and_bad_nodes_rejected() {
        let overlapping = AttackPlan::Scripted(vec![
            AttackWindow::new(1, 0.0, 2.0, AttackBehavior::SignFlip),
            AttackWindow::new(1, 1.0, 3.0, AttackBehavior::SignFlip),
        ]);
        assert!(AttackTimeline::expand(&overlapping, 4, 0).is_err());
        // Touching windows (end == next start) are fine: half-open.
        let touching = AttackPlan::Scripted(vec![
            AttackWindow::new(1, 0.0, 1.0, AttackBehavior::SignFlip),
            AttackWindow::new(1, 1.0, 2.0, AttackBehavior::Scale { factor: 2.0 }),
        ]);
        assert!(AttackTimeline::expand(&touching, 4, 0).is_ok());
        let oob = AttackPlan::Scripted(vec![AttackWindow::forever(4, AttackBehavior::SignFlip)]);
        assert!(AttackTimeline::expand(&oob, 4, 0).is_err());
    }

    #[test]
    fn random_fraction_is_deterministic_in_the_seed() {
        let plan = AttackPlan::RandomFraction {
            fraction: 0.25,
            from_s: 0.0,
            until_s: f64::INFINITY,
            behavior: AttackBehavior::SignFlip,
        };
        let a = AttackTimeline::expand(&plan, 16, 7).unwrap();
        let b = AttackTimeline::expand(&plan, 16, 7).unwrap();
        let c = AttackTimeline::expand(&plan, 16, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds pick different attackers");
        assert_eq!(a.window_count(), 4);
        assert!(a
            .attackers()
            .iter()
            .all(|&node| a.behavior_at(node, SimTime::ZERO).is_some()));
    }

    #[test]
    fn plan_validation_rejects_bad_numbers() {
        assert!(AttackBehavior::Garbage { std: 0.0 }.validate().is_err());
        assert!(AttackBehavior::Scale {
            factor: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(AttackBehavior::Drift {
            rate: 1.5,
            amplitude: 1.0
        }
        .validate()
        .is_err());
        assert!(
            AttackPlan::Scripted(vec![AttackWindow::new(
                0,
                2.0,
                2.0,
                AttackBehavior::SignFlip
            )])
            .validate()
            .is_err(),
            "zero-length window"
        );
        assert!(AttackPlan::RandomFraction {
            fraction: 1.5,
            from_s: 0.0,
            until_s: 1.0,
            behavior: AttackBehavior::SignFlip,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn perturbations_are_pure_functions_of_their_arguments() {
        let base: Vec<f32> = (0..32).map(|i| (i as f32 * 0.3).sin()).collect();
        for behavior in [
            AttackBehavior::Garbage { std: 2.0 },
            AttackBehavior::SignFlip,
            AttackBehavior::Scale { factor: -3.0 },
            AttackBehavior::Drift {
                rate: 0.5,
                amplitude: 1.0,
            },
        ] {
            let mut a = base.clone();
            let mut b = base.clone();
            apply_behavior(behavior, 42, 3, 5, &mut a);
            apply_behavior(behavior, 42, 3, 5, &mut b);
            assert_eq!(a, b, "{behavior:?} must be deterministic");
            assert!(a.iter().all(|v| v.is_finite()), "{behavior:?} stays finite");
            assert_ne!(a, base, "{behavior:?} actually perturbs");
        }
    }

    #[test]
    fn drift_targets_are_shared_across_attackers() {
        // Two different attackers fully drifted (rate = 1) land on the same
        // target vector — that is what "colluding" means.
        let mut a = vec![1.0f32; 16];
        let mut b = vec![-5.0f32; 16];
        let drift = AttackBehavior::Drift {
            rate: 1.0,
            amplitude: 2.0,
        };
        apply_behavior(drift, 9, 1, 0, &mut a);
        apply_behavior(drift, 9, 6, 3, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "colluders diverge: {x} vs {y}");
        }
    }
}
