//! Seeded Byzantine attack plans and robust aggregation for the engine.
//!
//! Two halves, one contract each:
//!
//! - [`AttackPlan`] → [`AttackTimeline`]: a serde-configurable schedule,
//!   expanded deterministically in `(plan, n, seed)`, marking nodes
//!   Byzantine over virtual-time windows with a composable
//!   [`AttackBehavior`] (garbage, sign-flip, scale, colluding drift). The
//!   engine injects the perturbation at *message-build time* on a copy of
//!   the sender's parameters, so attacks compose with faults, staleness,
//!   churn and repair — and a crashed node, which builds no messages,
//!   never injects.
//! - [`Robust`] → [`RobustAccumulator`]: mixing-layer defenses
//!   (trimmed-mean, coordinate-wise median, norm-clip) applied to
//!   `ShareStrategy` decode output. Removed mass folds back into the
//!   receiver's self-weight so the effective mixing row stays
//!   row-stochastic — the same contract `StalenessPolicy::downweight_row`
//!   keeps.
//!
//! ```
//! use jwins_adversary::{AttackBehavior, AttackPlan, AttackTimeline};
//! use jwins_sim::SimTime;
//!
//! let plan = AttackPlan::RandomFraction {
//!     fraction: 0.25,
//!     from_s: 0.0,
//!     until_s: f64::INFINITY,
//!     behavior: AttackBehavior::SignFlip,
//! };
//! let timeline = AttackTimeline::expand(&plan, 16, 42).unwrap();
//! assert_eq!(timeline.attackers().len(), 4);
//! let node = timeline.attackers()[0];
//! let mut advertised = vec![1.0f32, -2.0];
//! let behavior = timeline.behavior_at(node, SimTime::ZERO).unwrap();
//! timeline.apply(behavior, node, 0, &mut advertised);
//! assert_eq!(advertised, vec![-1.0, 2.0]);
//! ```

#![warn(missing_docs)]

mod plan;
mod robust;

pub use plan::{apply_behavior, AttackBehavior, AttackPlan, AttackTimeline, AttackWindow};
pub use robust::{Robust, RobustAccumulator, RobustStats};
