//! Mini-batch sampling.
//!
//! Each DL node draws random mini-batches from its local shard every local
//! step (Algorithm 1 line 3). The sampler is an explicit-state object so the
//! engine can give every node an independent, seeded stream — reproducibility
//! across runs is what lets the paper average five seeds.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Seeded with-replacement mini-batch sampler over an owned sample list.
#[derive(Debug, Clone)]
pub struct BatchSampler<S> {
    samples: Vec<S>,
    rng: ChaCha8Rng,
}

impl<S: Clone> BatchSampler<S> {
    /// Creates a sampler over `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty — a node with no data cannot train.
    pub fn new(samples: Vec<S>, seed: u64) -> Self {
        assert!(!samples.is_empty(), "cannot sample from an empty shard");
        Self {
            samples,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Number of samples in the underlying shard.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the shard is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Immutable view of the shard.
    pub fn samples(&self) -> &[S] {
        &self.samples
    }

    /// Draws a mini-batch of `size` samples uniformly with replacement.
    pub fn sample(&mut self, size: usize) -> Vec<S> {
        (0..size)
            .map(|_| self.samples[self.rng.gen_range(0..self.samples.len())].clone())
            .collect()
    }

    /// Number of mini-batches that constitute one "epoch" (the paper tunes
    /// rounds-per-epoch, so engines need this to convert).
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        self.samples.len().div_ceil(batch_size.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = BatchSampler::new((0..100u32).collect(), 5);
        let mut b = BatchSampler::new((0..100u32).collect(), 5);
        assert_eq!(a.sample(8), b.sample(8));
        let mut c = BatchSampler::new((0..100u32).collect(), 6);
        assert_ne!(a.sample(8), c.sample(8));
    }

    #[test]
    fn batches_have_requested_size() {
        let mut s = BatchSampler::new(vec![1u8, 2, 3], 0);
        assert_eq!(s.sample(10).len(), 10); // with replacement
        assert_eq!(s.sample(0).len(), 0);
    }

    #[test]
    fn epoch_math() {
        let s = BatchSampler::new((0..10u8).collect(), 0);
        assert_eq!(s.batches_per_epoch(4), 3);
        assert_eq!(s.batches_per_epoch(10), 1);
        assert_eq!(s.batches_per_epoch(16), 1);
    }

    #[test]
    #[should_panic(expected = "empty shard")]
    fn empty_shard_rejected() {
        let _ = BatchSampler::new(Vec::<u8>::new(), 0);
    }
}
