//! Shakespeare analogue: per-client Markov character streams.
//!
//! LEAF's Shakespeare task groups lines by the speaking role; each client's
//! text has its own style on top of the shared language. This generator
//! plants a global sparse character-transition matrix ("the language") and
//! blends it per client with a private transition matrix ("the role's
//! style"): clients share structure — so decentralized training helps — but
//! differ in distribution, so the partition is non-IID. Streams are cut into
//! fixed-length `(input, next-char target)` windows, the LEAF training
//! format.

use crate::partition::assign_clients;
use crate::{Partitioned, SeqSample};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Knobs for the character-stream generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TextConfig {
    /// Alphabet size (LEAF Shakespeare uses ~80 printable chars; a smaller
    /// alphabet keeps laptop models small with identical mechanics).
    pub vocab: usize,
    /// Sequence length of each training window.
    pub seq_len: usize,
    /// Training windows per client.
    pub train_per_client: usize,
    /// Test windows (drawn from the global language).
    pub test_windows: usize,
    /// Client style weight λ ∈ \[0,1\]: 0 = IID, 1 = fully private language.
    pub style_weight: f64,
    /// Sparsity: number of plausible successors per character.
    pub branching: usize,
}

impl TextConfig {
    /// Laptop-scale Shakespeare analogue.
    pub fn small() -> Self {
        Self {
            vocab: 24,
            seq_len: 16,
            train_per_client: 32,
            test_windows: 128,
            style_weight: 0.35,
            branching: 3,
        }
    }

    /// Minimal configuration for unit tests. Deliberately concentrated
    /// (`branching = 2`, mild styles) so even brief runs can demonstrably
    /// learn the structure.
    pub fn tiny() -> Self {
        Self {
            vocab: 8,
            seq_len: 8,
            train_per_client: 24,
            test_windows: 32,
            style_weight: 0.15,
            branching: 2,
        }
    }
}

/// Row-stochastic transition matrix stored dense (`vocab × vocab`).
fn random_transitions(vocab: usize, branching: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    let mut t = vec![0.0f64; vocab * vocab];
    for row in 0..vocab {
        // `branching` preferred successors get most of the mass; the rest is
        // smoothing so every transition stays possible.
        let mut mass_left = 0.9;
        for _ in 0..branching {
            let col = rng.gen_range(0..vocab);
            let p = rng.gen_range(0.3..1.0) * mass_left / branching as f64;
            t[row * vocab + col] += p;
            mass_left -= p;
        }
        let assigned: f64 = t[row * vocab..(row + 1) * vocab].iter().sum();
        let smooth = (1.0 - assigned) / vocab as f64;
        for col in 0..vocab {
            t[row * vocab + col] += smooth;
        }
    }
    t
}

fn blend(global: &[f64], private: &[f64], lambda: f64) -> Vec<f64> {
    global
        .iter()
        .zip(private)
        .map(|(g, p)| (1.0 - lambda) * g + lambda * p)
        .collect()
}

fn sample_stream(t: &[f64], vocab: usize, len: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let mut out = Vec::with_capacity(len);
    let mut cur = rng.gen_range(0..vocab);
    out.push(cur);
    for _ in 1..len {
        let row = &t[cur * vocab..(cur + 1) * vocab];
        let mut u: f64 = rng.gen_range(0.0..1.0);
        let mut next = vocab - 1;
        for (c, &p) in row.iter().enumerate() {
            if u < p {
                next = c;
                break;
            }
            u -= p;
        }
        out.push(next);
        cur = next;
    }
    out
}

fn windows(stream: &[usize], seq_len: usize, count: usize) -> Vec<SeqSample> {
    (0..count)
        .map(|k| {
            let start = k * seq_len;
            (
                stream[start..start + seq_len].to_vec(),
                stream[start + 1..start + seq_len + 1].to_vec(),
            )
        })
        .collect()
}

/// Generates per-client streams and assigns clients to nodes.
///
/// # Panics
///
/// Panics if `nodes == 0` or `clients < nodes`.
pub fn shakespeare_like(
    cfg: &TextConfig,
    nodes: usize,
    clients: usize,
    seed: u64,
) -> Partitioned<SeqSample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let global = random_transitions(cfg.vocab, cfg.branching, &mut rng);
    let mut client_data: Vec<Vec<SeqSample>> = Vec::with_capacity(clients);
    for _ in 0..clients {
        let private = random_transitions(cfg.vocab, cfg.branching, &mut rng);
        let t = blend(&global, &private, cfg.style_weight);
        let stream_len = cfg.train_per_client * cfg.seq_len + 1;
        let stream = sample_stream(&t, cfg.vocab, stream_len, &mut rng);
        client_data.push(windows(&stream, cfg.seq_len, cfg.train_per_client));
    }
    // Test windows come from the global language: the shared structure all
    // nodes are supposed to learn collaboratively.
    let test_stream = sample_stream(
        &global,
        cfg.vocab,
        cfg.test_windows * cfg.seq_len + 1,
        &mut rng,
    );
    let test = windows(&test_stream, cfg.seq_len, cfg.test_windows);
    Partitioned {
        node_train: assign_clients(&client_data, nodes, seed ^ 0x1b1b),
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_align_inputs_and_targets() {
        let data = shakespeare_like(&TextConfig::tiny(), 2, 4, 3);
        for (x, y) in data.node_train.iter().flatten().chain(&data.test) {
            assert_eq!(x.len(), y.len());
            // Target at position t is the input at position t+1.
            for k in 0..x.len() - 1 {
                assert_eq!(y[k], x[k + 1]);
            }
        }
    }

    #[test]
    fn tokens_are_in_vocab() {
        let cfg = TextConfig::tiny();
        let data = shakespeare_like(&cfg, 2, 4, 5);
        for (x, y) in data.node_train.iter().flatten().chain(&data.test) {
            assert!(x.iter().chain(y).all(|&t| t < cfg.vocab));
        }
    }

    #[test]
    fn transition_matrix_is_stochastic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = random_transitions(16, 4, &mut rng);
        for row in t.chunks(16) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn language_is_predictable_above_chance() {
        // A bigram oracle built from training text should beat uniform
        // guessing on test text — i.e. there is structure to learn.
        let cfg = TextConfig::small();
        let data = shakespeare_like(&cfg, 4, 8, 7);
        let v = cfg.vocab;
        let mut counts = vec![1.0f64; v * v]; // Laplace smoothing
        for (x, y) in data.node_train.iter().flatten() {
            for (a, b) in x.iter().zip(y) {
                counts[a * v + b] += 1.0;
            }
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        for (x, y) in &data.test {
            for (a, b) in x.iter().zip(y) {
                let row = &counts[a * v..(a + 1) * v];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|p, q| p.1.partial_cmp(q.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("nonempty row");
                correct += usize::from(pred == *b);
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(
            acc > 1.5 / v as f64 * 2.0,
            "bigram accuracy {acc} should clearly beat chance {}",
            1.0 / v as f64
        );
    }

    #[test]
    fn clients_differ_in_distribution() {
        let cfg = TextConfig::small();
        let data = shakespeare_like(&cfg, 8, 8, 9);
        // Compare unigram histograms between two nodes.
        let hist = |node: &[SeqSample]| {
            let mut h = vec![0usize; cfg.vocab];
            for (x, _) in node {
                for &t in x {
                    h[t] += 1;
                }
            }
            h
        };
        let h0 = hist(&data.node_train[0]);
        let h1 = hist(&data.node_train[1]);
        assert_ne!(h0, h1, "client styles should make nodes differ");
    }

    #[test]
    fn deterministic() {
        let a = shakespeare_like(&TextConfig::tiny(), 2, 4, 11);
        let b = shakespeare_like(&TextConfig::tiny(), 2, 4, 11);
        assert_eq!(a.node_train, b.node_train);
        assert_eq!(a.test, b.test);
    }
}
