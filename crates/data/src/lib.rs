//! Synthetic non-IID datasets standing in for the paper's workloads.
//!
//! The JWINS evaluation uses CIFAR-10, MovieLens, and the LEAF benchmarks of
//! CelebA, FEMNIST and Shakespeare. None of those corpora are available in
//! this build environment, so this crate generates synthetic datasets that
//! preserve exactly what the experiments measure (see DESIGN.md §3):
//!
//! 1. **task type** — multiclass CNN classification, binary classification,
//!    matrix-factorization regression, next-character prediction;
//! 2. **non-IID structure** — the paper's two partitioning regimes are kept:
//!    sort-by-label sharding (2 shards/node for CIFAR) and *client-grouped*
//!    data (LEAF datasets group samples by the human who produced them);
//! 3. **scale knobs** — node counts, samples per node and feature sizes are
//!    configurable so experiments run at laptop scale or paper scale.
//!
//! Sample types are plain tuples shared structurally with `jwins-nn` (no
//! crate dependency): `(Vec<f32>, usize)` for classification,
//! `(usize, usize, f32)` for ratings, `(Vec<usize>, Vec<usize>)` for
//! sequences.
//!
//! # Example
//!
//! ```
//! use jwins_data::images::{cifar_like, ImageConfig};
//!
//! let data = cifar_like(&ImageConfig::tiny(), 4, 2, 42);
//! assert_eq!(data.node_train.len(), 4);
//! // Sort-by-label sharding with 2 shards per node caps label diversity.
//! for node in &data.node_train {
//!     let mut labels: Vec<usize> = node.iter().map(|(_, y)| *y).collect();
//!     labels.sort_unstable();
//!     labels.dedup();
//!     assert!(labels.len() <= 2 * 2);
//! }
//! ```

pub mod batch;
pub mod images;
pub mod partition;
pub mod ratings;
pub mod text;

/// A classification sample: dense features plus a class index.
pub type ClassSample = (Vec<f32>, usize);

/// A rating sample: `(user, item, rating)`.
pub type RatingSample = (usize, usize, f32);

/// A sequence sample: `(input token ids, next-token targets)`.
pub type SeqSample = (Vec<usize>, Vec<usize>);

/// A dataset split across decentralized nodes plus a shared test set.
#[derive(Debug, Clone)]
pub struct Partitioned<S> {
    /// Training samples local to each node.
    pub node_train: Vec<Vec<S>>,
    /// Global held-out test set (the paper evaluates the average accuracy of
    /// all nodes on a common test set).
    pub test: Vec<S>,
}

impl<S> Partitioned<S> {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.node_train.len()
    }

    /// Total number of training samples across nodes.
    pub fn train_len(&self) -> usize {
        self.node_train.iter().map(Vec::len).sum()
    }
}
