//! MovieLens analogue: low-rank ground-truth ratings.
//!
//! MovieLens groups ratings by the user who produced them; in the paper each
//! node receives an equal number of users (clients). This generator plants a
//! random low-rank preference structure `R = μ + b_u + b_i + U·Vᵀ`, clips to
//! the 1–5 star range, adds observation noise, and splits each user's ratings
//! into train and held-out test — so matrix factorization can genuinely
//! recover structure, and nodes are non-IID because they hold disjoint user
//! populations.

use crate::partition::assign_clients;
use crate::{Partitioned, RatingSample};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal};

/// Shape and difficulty knobs for the rating generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RatingConfig {
    /// Number of users (= clients).
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Rank of the planted preference structure.
    pub true_rank: usize,
    /// Ratings each user contributes to training.
    pub train_per_user: usize,
    /// Ratings each user contributes to the test set.
    pub test_per_user: usize,
    /// Observation noise added to each rating.
    pub noise: f32,
}

impl RatingConfig {
    /// Laptop-scale MovieLens analogue.
    pub fn small() -> Self {
        Self {
            users: 48,
            items: 64,
            true_rank: 4,
            train_per_user: 20,
            test_per_user: 5,
            noise: 0.3,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            users: 12,
            items: 16,
            true_rank: 2,
            train_per_user: 8,
            test_per_user: 2,
            noise: 0.2,
        }
    }
}

/// A generated rating dataset together with its dimensions (the model needs
/// `users`/`items` to size its embedding tables).
#[derive(Debug, Clone)]
pub struct RatingData {
    /// Per-node training ratings and the global test set.
    pub partitioned: Partitioned<RatingSample>,
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
}

/// Generates the dataset and assigns users to nodes.
///
/// # Panics
///
/// Panics if `nodes == 0`, `users < nodes`, or a user is asked for more
/// ratings than there are items.
pub fn movielens_like(cfg: &RatingConfig, nodes: usize, seed: u64) -> RatingData {
    assert!(
        cfg.train_per_user + cfg.test_per_user <= cfg.items,
        "cannot rate more items than exist"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let normal = Normal::new(0.0, 1.0).expect("unit normal");
    let scale = 1.0 / (cfg.true_rank as f64).sqrt();
    let u: Vec<f64> = (0..cfg.users * cfg.true_rank)
        .map(|_| normal.sample(&mut rng) * scale)
        .collect();
    let v: Vec<f64> = (0..cfg.items * cfg.true_rank)
        .map(|_| normal.sample(&mut rng) * scale)
        .collect();
    let user_bias: Vec<f64> = (0..cfg.users)
        .map(|_| normal.sample(&mut rng) * 0.3)
        .collect();
    let item_bias: Vec<f64> = (0..cfg.items)
        .map(|_| normal.sample(&mut rng) * 0.3)
        .collect();
    let noise = Normal::new(0.0, f64::from(cfg.noise)).expect("noise is finite");
    let mut clients: Vec<Vec<RatingSample>> = Vec::with_capacity(cfg.users);
    let mut test = Vec::with_capacity(cfg.users * cfg.test_per_user);
    for user in 0..cfg.users {
        let mut items: Vec<usize> = (0..cfg.items).collect();
        items.shuffle(&mut rng);
        items.truncate(cfg.train_per_user + cfg.test_per_user);
        let mut mine = Vec::with_capacity(cfg.train_per_user);
        for (k, &item) in items.iter().enumerate() {
            let dot: f64 = (0..cfg.true_rank)
                .map(|f| u[user * cfg.true_rank + f] * v[item * cfg.true_rank + f])
                .sum();
            let r = 3.0 + user_bias[user] + item_bias[item] + 1.2 * dot + noise.sample(&mut rng);
            let r = r.clamp(1.0, 5.0) as f32;
            if k < cfg.train_per_user {
                mine.push((user, item, r));
            } else {
                test.push((user, item, r));
            }
        }
        clients.push(mine);
    }
    // Nodes get whole users — the ML non-IID regime.
    let node_train = assign_clients(&clients, nodes, seed ^ 0x7e7e);
    let _ = rng.gen::<u64>();
    RatingData {
        partitioned: Partitioned { node_train, test },
        users: cfg.users,
        items: cfg.items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ratings_are_in_star_range() {
        let data = movielens_like(&RatingConfig::tiny(), 3, 1);
        for &(_, _, r) in data.partitioned.node_train.iter().flatten() {
            assert!((1.0..=5.0).contains(&r));
        }
        for &(_, _, r) in &data.partitioned.test {
            assert!((1.0..=5.0).contains(&r));
        }
    }

    #[test]
    fn users_are_node_disjoint() {
        let data = movielens_like(&RatingConfig::tiny(), 3, 2);
        let mut seen: HashSet<usize> = HashSet::new();
        for node in &data.partitioned.node_train {
            let users: HashSet<usize> = node.iter().map(|&(u, _, _)| u).collect();
            for u in users {
                assert!(seen.insert(u), "user {u} on two nodes");
            }
        }
    }

    #[test]
    fn indices_are_in_bounds() {
        let cfg = RatingConfig::tiny();
        let data = movielens_like(&cfg, 2, 3);
        for &(u, i, _) in data
            .partitioned
            .node_train
            .iter()
            .flatten()
            .chain(&data.partitioned.test)
        {
            assert!(u < cfg.users && i < cfg.items);
        }
    }

    #[test]
    fn low_rank_structure_beats_global_mean() {
        // The planted structure must carry signal: per-user mean prediction
        // should beat the global mean on held-out data. (A full MF fit is
        // exercised in jwins-nn tests.)
        let cfg = RatingConfig::small();
        let data = movielens_like(&cfg, 4, 4);
        let train: Vec<RatingSample> = data
            .partitioned
            .node_train
            .iter()
            .flatten()
            .copied()
            .collect();
        let gmean: f64 =
            train.iter().map(|&(_, _, r)| f64::from(r)).sum::<f64>() / train.len() as f64;
        let mut user_sum = vec![0.0f64; cfg.users];
        let mut user_cnt = vec![0usize; cfg.users];
        for &(u, _, r) in &train {
            user_sum[u] += f64::from(r);
            user_cnt[u] += 1;
        }
        let mut err_global = 0.0;
        let mut err_user = 0.0;
        for &(u, _, r) in &data.partitioned.test {
            let r = f64::from(r);
            err_global += (r - gmean).powi(2);
            let umean = user_sum[u] / user_cnt[u].max(1) as f64;
            err_user += (r - umean).powi(2);
        }
        assert!(
            err_user < err_global,
            "user means ({err_user:.2}) should beat global mean ({err_global:.2})"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = movielens_like(&RatingConfig::tiny(), 2, 9);
        let b = movielens_like(&RatingConfig::tiny(), 2, 9);
        assert_eq!(a.partitioned.node_train, b.partitioned.node_train);
    }
}
