//! The paper's two data-partitioning regimes.
//!
//! - [`shard_by_label`]: CIFAR-10 partitioning (§IV-B-d): sort by label, cut
//!   into `shards_per_node · n` shards, deal each node `shards_per_node`
//!   random shards. With 2 shards per node each node sees at most 4 classes.
//! - [`assign_clients`]: LEAF partitioning: data is grouped by the *client*
//!   (human) who produced it and each node receives an equal number of
//!   clients.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sorts `samples` by label, slices them into `nodes * shards_per_node`
/// shards and deals shards randomly, `shards_per_node` to each node.
///
/// # Panics
///
/// Panics if `nodes == 0`, `shards_per_node == 0`, or there are fewer
/// samples than shards.
pub fn shard_by_label<S: Clone>(
    samples: &[(S, usize)],
    nodes: usize,
    shards_per_node: usize,
    seed: u64,
) -> Vec<Vec<(S, usize)>> {
    assert!(nodes > 0 && shards_per_node > 0, "invalid partition shape");
    let shards = nodes * shards_per_node;
    assert!(
        samples.len() >= shards,
        "{} samples cannot fill {shards} shards",
        samples.len()
    );
    let mut sorted: Vec<&(S, usize)> = samples.iter().collect();
    sorted.sort_by_key(|(_, y)| *y);
    // Equal-size shards (PyTorch-style): truncate the remainder.
    let shard_len = sorted.len() / shards;
    let mut shard_order: Vec<usize> = (0..shards).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    shard_order.shuffle(&mut rng);
    let mut out = vec![Vec::with_capacity(shard_len * shards_per_node); nodes];
    for (k, &shard) in shard_order.iter().enumerate() {
        let node = k / shards_per_node;
        let slice = &sorted[shard * shard_len..(shard + 1) * shard_len];
        out[node].extend(slice.iter().map(|s| (*s).clone()));
    }
    out
}

/// Distributes `clients` (each a bag of samples) over `nodes`, as equally as
/// possible, in a seed-determined random order; returns per-node
/// concatenated sample lists.
///
/// # Panics
///
/// Panics if `nodes == 0` or there are fewer clients than nodes.
pub fn assign_clients<S: Clone>(clients: &[Vec<S>], nodes: usize, seed: u64) -> Vec<Vec<S>> {
    assert!(nodes > 0, "need at least one node");
    assert!(
        clients.len() >= nodes,
        "{} clients cannot cover {nodes} nodes",
        clients.len()
    );
    let mut order: Vec<usize> = (0..clients.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut out = vec![Vec::new(); nodes];
    for (k, &client) in order.iter().enumerate() {
        out[k % nodes].extend(clients[client].iter().cloned());
    }
    out
}

/// IID control partition: shuffles samples and deals them round-robin.
///
/// # Panics
///
/// Panics if `nodes == 0`.
pub fn iid<S: Clone>(samples: &[S], nodes: usize, seed: u64) -> Vec<Vec<S>> {
    assert!(nodes > 0, "need at least one node");
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut out = vec![Vec::with_capacity(samples.len() / nodes + 1); nodes];
    for (k, &i) in order.iter().enumerate() {
        out[k % nodes].push(samples[i].clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn labelled(n_per_class: usize, classes: usize) -> Vec<(u32, usize)> {
        let mut v = Vec::new();
        for c in 0..classes {
            for i in 0..n_per_class {
                v.push(((c * n_per_class + i) as u32, c));
            }
        }
        v
    }

    #[test]
    fn shard_partition_caps_label_diversity() {
        // 10 classes, 8 nodes, 2 shards per node -> at most 4 classes/node
        // (the paper's exact argument for CIFAR-10 with 2n shards).
        let samples = labelled(64, 10);
        let parts = shard_by_label(&samples, 8, 2, 3);
        assert_eq!(parts.len(), 8);
        for node in &parts {
            let labels: HashSet<usize> = node.iter().map(|(_, y)| *y).collect();
            assert!(labels.len() <= 4, "node saw {} classes", labels.len());
            assert!(!node.is_empty());
        }
    }

    #[test]
    fn shard_partition_is_disjoint_and_deterministic() {
        let samples = labelled(16, 4);
        let a = shard_by_label(&samples, 4, 2, 9);
        let b = shard_by_label(&samples, 4, 2, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        let mut seen = HashSet::new();
        for node in &a {
            for (id, _) in node {
                assert!(seen.insert(*id), "sample {id} appears twice");
            }
        }
        let c = shard_by_label(&samples, 4, 2, 10);
        assert_ne!(a, c, "different seeds should shuffle differently");
    }

    #[test]
    fn client_assignment_balances_counts() {
        let clients: Vec<Vec<u32>> = (0..12).map(|c| vec![c as u32; 5]).collect();
        let parts = assign_clients(&clients, 4, 1);
        for node in &parts {
            assert_eq!(node.len(), 15); // 3 clients × 5 samples
        }
    }

    #[test]
    fn iid_covers_everything() {
        let samples: Vec<u32> = (0..100).collect();
        let parts = iid(&samples, 7, 2);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        let all: HashSet<u32> = parts.iter().flatten().copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn too_few_samples_panics() {
        let samples = labelled(1, 2);
        let _ = shard_by_label(&samples, 4, 2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn shards_exhaust_truncated_samples(
            classes in 2usize..6,
            per_class in 4usize..20,
            nodes in 1usize..6,
            spn in 1usize..3,
            seed in any::<u64>(),
        ) {
            let samples = labelled(per_class, classes);
            prop_assume!(samples.len() >= nodes * spn);
            let parts = shard_by_label(&samples, nodes, spn, seed);
            let shard_len = samples.len() / (nodes * spn);
            let total: usize = parts.iter().map(Vec::len).sum();
            prop_assert_eq!(total, shard_len * nodes * spn);
            for node in &parts {
                prop_assert_eq!(node.len(), shard_len * spn);
            }
        }
    }
}
