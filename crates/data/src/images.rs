//! Synthetic image-classification datasets (CIFAR-10, FEMNIST and CelebA
//! analogues).
//!
//! Images are generated from smooth class prototypes plus Gaussian noise.
//! Prototypes are spatially correlated (random low-frequency blobs) so
//! convolutional models have local structure to exploit, and the LEAF-style
//! generators additionally give every *client* a private style shift so the
//! client-grouped partition is genuinely non-IID.

use crate::partition::{assign_clients, shard_by_label};
use crate::{ClassSample, Partitioned};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal};

/// Shape and difficulty knobs for the image generators.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageConfig {
    /// Number of classes (10 for the CIFAR analogue, 62 for FEMNIST).
    pub classes: usize,
    /// Channels per image.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples per class (CIFAR regime) or per client (LEAF regime).
    pub train_per_unit: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Standard deviation of the additive pixel noise.
    pub noise: f32,
    /// Strength of per-client style shifts (LEAF generators only).
    pub client_style: f32,
}

impl ImageConfig {
    /// A CIFAR-10-shaped configuration scaled to laptop size
    /// (3×16×16, 10 classes).
    pub fn cifar_small() -> Self {
        Self {
            classes: 10,
            channels: 3,
            height: 12,
            width: 12,
            train_per_unit: 96,
            test_per_class: 24,
            noise: 0.6,
            client_style: 0.0,
        }
    }

    /// A minimal configuration for unit tests (2×8×8, 4 classes).
    pub fn tiny() -> Self {
        Self {
            classes: 4,
            channels: 2,
            height: 8,
            width: 8,
            train_per_unit: 24,
            test_per_class: 8,
            noise: 0.4,
            client_style: 0.3,
        }
    }

    /// FEMNIST-shaped: 1×16×16, many classes, strong client styles.
    pub fn femnist_small() -> Self {
        Self {
            classes: 16, // 62 in LEAF; fewer keeps 1-core runs fast with the same shape
            channels: 1,
            height: 12,
            width: 12,
            train_per_unit: 36,
            test_per_class: 16,
            noise: 0.5,
            client_style: 0.6,
        }
    }

    /// CelebA-shaped: 3×16×16, binary attribute, strong per-client identity.
    pub fn celeba_small() -> Self {
        Self {
            classes: 2,
            channels: 3,
            height: 12,
            width: 12,
            train_per_unit: 20,
            test_per_class: 48,
            noise: 0.5,
            client_style: 0.8,
        }
    }

    /// Pixels per image.
    pub fn pixels(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// Draws a smooth random pattern: a sum of a few random low-frequency
/// cosine blobs, giving convolution-friendly spatial correlation.
fn smooth_pattern(cfg: &ImageConfig, rng: &mut ChaCha8Rng, scale: f32) -> Vec<f32> {
    let (h, w) = (cfg.height, cfg.width);
    let mut img = vec![0.0f32; cfg.pixels()];
    for c in 0..cfg.channels {
        for _ in 0..3 {
            let fx = rng.gen_range(0.5..2.5) * std::f32::consts::PI / w as f32;
            let fy = rng.gen_range(0.5..2.5) * std::f32::consts::PI / h as f32;
            let px = rng.gen_range(0.0..std::f32::consts::TAU);
            let py = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp = rng.gen_range(0.4..1.0) * scale;
            for y in 0..h {
                for x in 0..w {
                    img[c * h * w + y * w + x] +=
                        amp * (fy * y as f32 + py).cos() * (fx * x as f32 + px).cos();
                }
            }
        }
    }
    img
}

fn noisy_sample(proto: &[f32], noise: f32, rng: &mut ChaCha8Rng) -> Vec<f32> {
    let normal = Normal::new(0.0, f64::from(noise)).expect("noise is finite");
    proto
        .iter()
        .map(|&p| p + normal.sample(rng) as f32)
        .collect()
}

fn add(into: &mut [f32], from: &[f32]) {
    for (a, b) in into.iter_mut().zip(from) {
        *a += b;
    }
}

/// CIFAR-10 analogue: class-prototype images, sort-by-label sharding with
/// `shards_per_node` shards per node (the paper uses 2; Figure 10 relaxes to
/// 4).
pub fn cifar_like(
    cfg: &ImageConfig,
    nodes: usize,
    shards_per_node: usize,
    seed: u64,
) -> Partitioned<ClassSample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let protos: Vec<Vec<f32>> = (0..cfg.classes)
        .map(|_| smooth_pattern(cfg, &mut rng, 1.0))
        .collect();
    let mut train: Vec<ClassSample> = Vec::with_capacity(cfg.classes * cfg.train_per_unit);
    for (y, proto) in protos.iter().enumerate() {
        for _ in 0..cfg.train_per_unit {
            train.push((noisy_sample(proto, cfg.noise, &mut rng), y));
        }
    }
    let mut test = Vec::with_capacity(cfg.classes * cfg.test_per_class);
    for (y, proto) in protos.iter().enumerate() {
        for _ in 0..cfg.test_per_class {
            test.push((noisy_sample(proto, cfg.noise, &mut rng), y));
        }
    }
    let node_train = shard_by_label(&train, nodes, shards_per_node, seed ^ 0xA5A5);
    Partitioned { node_train, test }
}

/// FEMNIST analogue: `clients` writers, each with a private style pattern
/// added to every image they produce and a skewed subset of classes,
/// client-grouped across nodes.
pub fn femnist_like(
    cfg: &ImageConfig,
    nodes: usize,
    clients: usize,
    seed: u64,
) -> Partitioned<ClassSample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let protos: Vec<Vec<f32>> = (0..cfg.classes)
        .map(|_| smooth_pattern(cfg, &mut rng, 1.0))
        .collect();
    let mut client_data: Vec<Vec<ClassSample>> = Vec::with_capacity(clients);
    for _ in 0..clients {
        let style = smooth_pattern(cfg, &mut rng, cfg.client_style);
        // A writer produces a random half of the alphabet.
        let mut classes: Vec<usize> = (0..cfg.classes).collect();
        for i in (1..classes.len()).rev() {
            classes.swap(i, rng.gen_range(0..=i));
        }
        classes.truncate((cfg.classes / 2).max(1));
        let mut samples = Vec::with_capacity(cfg.train_per_unit);
        for k in 0..cfg.train_per_unit {
            let y = classes[k % classes.len()];
            let mut x = noisy_sample(&protos[y], cfg.noise, &mut rng);
            add(&mut x, &style);
            samples.push((x, y));
        }
        client_data.push(samples);
    }
    let mut test = Vec::with_capacity(cfg.classes * cfg.test_per_class);
    for (y, proto) in protos.iter().enumerate() {
        for _ in 0..cfg.test_per_class {
            test.push((noisy_sample(proto, cfg.noise, &mut rng), y));
        }
    }
    Partitioned {
        node_train: assign_clients(&client_data, nodes, seed ^ 0x5A5A),
        test,
    }
}

/// CelebA analogue: binary attribute classification. Every client is a
/// "celebrity" with a private face pattern; the positive class adds a global
/// attribute pattern (the smile).
pub fn celeba_like(
    cfg: &ImageConfig,
    nodes: usize,
    clients: usize,
    seed: u64,
) -> Partitioned<ClassSample> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let attribute = smooth_pattern(cfg, &mut rng, 1.0);
    let mut client_data: Vec<Vec<ClassSample>> = Vec::with_capacity(clients);
    for _ in 0..clients {
        let face = smooth_pattern(cfg, &mut rng, cfg.client_style);
        let mut samples = Vec::with_capacity(cfg.train_per_unit);
        for k in 0..cfg.train_per_unit {
            let y = k % 2;
            let mut x = face.clone();
            if y == 1 {
                add(&mut x, &attribute);
            }
            let noise = noisy_sample(&vec![0.0; cfg.pixels()], cfg.noise, &mut rng);
            add(&mut x, &noise);
            samples.push((x, y));
        }
        client_data.push(samples);
    }
    // Test set: fresh unseen faces.
    let mut test = Vec::with_capacity(2 * cfg.test_per_class);
    for k in 0..2 * cfg.test_per_class {
        let face = smooth_pattern(cfg, &mut rng, cfg.client_style);
        let y = k % 2;
        let mut x = face;
        if y == 1 {
            add(&mut x, &attribute);
        }
        let noise = noisy_sample(&vec![0.0; cfg.pixels()], cfg.noise, &mut rng);
        add(&mut x, &noise);
        test.push((x, y));
    }
    Partitioned {
        node_train: assign_clients(&client_data, nodes, seed ^ 0x3C3C),
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Nearest-centroid accuracy: a cheap proxy showing classes are
    /// learnable but not trivially separable.
    fn centroid_accuracy(train: &[ClassSample], test: &[ClassSample], classes: usize) -> f64 {
        let dim = train[0].0.len();
        let mut centroids = vec![vec![0.0f64; dim]; classes];
        let mut counts = vec![0usize; classes];
        for (x, y) in train {
            counts[*y] += 1;
            for (c, v) in centroids[*y].iter_mut().zip(x) {
                *c += f64::from(*v);
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            if *n > 0 {
                c.iter_mut().for_each(|v| *v /= *n as f64);
            }
        }
        let mut correct = 0;
        for (x, y) in test {
            let best = (0..classes)
                .min_by(|&a, &b| {
                    let da: f64 = centroids[a]
                        .iter()
                        .zip(x)
                        .map(|(c, v)| (c - f64::from(*v)).powi(2))
                        .sum();
                    let db: f64 = centroids[b]
                        .iter()
                        .zip(x)
                        .map(|(c, v)| (c - f64::from(*v)).powi(2))
                        .sum();
                    da.partial_cmp(&db).expect("finite distances")
                })
                .expect("at least one class");
            if best == *y {
                correct += 1;
            }
        }
        correct as f64 / test.len() as f64
    }

    #[test]
    fn cifar_like_is_learnable_and_non_iid() {
        let cfg = ImageConfig::tiny();
        let data = cifar_like(&cfg, 4, 2, 7);
        assert_eq!(data.nodes(), 4);
        let train: Vec<ClassSample> = data.node_train.iter().flatten().cloned().collect();
        let acc = centroid_accuracy(&train, &data.test, cfg.classes);
        assert!(acc > 0.7, "centroid accuracy too low: {acc}");
        // Non-IID: at least one node must miss at least one class.
        let mut any_skewed = false;
        for node in &data.node_train {
            let labels: HashSet<usize> = node.iter().map(|(_, y)| *y).collect();
            if labels.len() < cfg.classes {
                any_skewed = true;
            }
        }
        assert!(any_skewed, "sharded partition should be label-skewed");
    }

    #[test]
    fn cifar_like_deterministic() {
        let cfg = ImageConfig::tiny();
        let a = cifar_like(&cfg, 2, 2, 11);
        let b = cifar_like(&cfg, 2, 2, 11);
        assert_eq!(a.node_train[0][0].0, b.node_train[0][0].0);
        let c = cifar_like(&cfg, 2, 2, 12);
        assert_ne!(a.node_train[0][0].0, c.node_train[0][0].0);
    }

    #[test]
    fn femnist_like_clients_have_distinct_label_mixes() {
        let cfg = ImageConfig::tiny();
        let data = femnist_like(&cfg, 4, 8, 3);
        assert_eq!(data.nodes(), 4);
        let mixes: Vec<Vec<usize>> = data
            .node_train
            .iter()
            .map(|node| {
                let mut h = vec![0usize; cfg.classes];
                for (_, y) in node {
                    h[*y] += 1;
                }
                h
            })
            .collect();
        assert!(
            mixes.windows(2).any(|w| w[0] != w[1]),
            "label histograms should differ across nodes"
        );
        // Still learnable from pooled data.
        let train: Vec<ClassSample> = data.node_train.iter().flatten().cloned().collect();
        let acc = centroid_accuracy(&train, &data.test, cfg.classes);
        assert!(acc > 0.5, "centroid accuracy too low: {acc}");
    }

    #[test]
    fn celeba_like_attribute_is_detectable() {
        let mut cfg = ImageConfig::tiny();
        cfg.classes = 2;
        let data = celeba_like(&cfg, 2, 6, 5);
        let train: Vec<ClassSample> = data.node_train.iter().flatten().cloned().collect();
        let acc = centroid_accuracy(&train, &data.test, 2);
        assert!(acc > 0.7, "attribute not separable: {acc}");
        // Balanced labels.
        let pos = train.iter().filter(|(_, y)| *y == 1).count();
        assert!((pos as f64 / train.len() as f64 - 0.5).abs() < 0.1);
    }

    #[test]
    fn configs_report_consistent_pixel_counts() {
        for cfg in [
            ImageConfig::cifar_small(),
            ImageConfig::tiny(),
            ImageConfig::femnist_small(),
            ImageConfig::celeba_small(),
        ] {
            assert_eq!(cfg.pixels(), cfg.channels * cfg.height * cfg.width);
            let data = cifar_like(&cfg, 2, 2, 1);
            assert_eq!(data.test[0].0.len(), cfg.pixels());
        }
    }
}
