//! Bounded-staleness policies: TTLs, staleness caps and row-stochastic
//! down-weighting.
//!
//! Asynchronous gossip mixes whatever has arrived — including messages from
//! several rounds ago. Zhao et al. (2019) show staleness control is the key
//! accuracy knob under asynchrony; a [`StalenessPolicy`] provides the two
//! standard mechanisms:
//!
//! - a **TTL**: messages older than `ttl_s` (virtual seconds since they were
//!   sent) expire at mailbox drain and are never decoded;
//! - a **cap** in rounds and/or seconds: messages over the cap are either
//!   dropped outright or down-weighted with exponential decay in the excess
//!   age ([`CapAction`]).
//!
//! Down-weighting multiplies the message's Metropolis–Hastings weight by a
//! factor in `(0, 1]`; the removed mass is absorbed into the mixer's
//! self-weight ([`apply_factor`], [`downweight_row`]), so each row of the
//! effective mixing matrix still sums to one — stale neighbours pull less,
//! nobody's mass is silently lost.

use serde::{Deserialize, Serialize};

/// What happens to a message older than the staleness cap.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CapAction {
    /// Exclude the message from mixing entirely.
    #[default]
    Drop,
    /// Keep the message but multiply its mixing weight by
    /// `exp(-rate · excess)`, where `excess` is how far beyond the cap the
    /// message is (in rounds for the round cap, seconds for the time cap;
    /// if both caps are exceeded the smaller factor wins).
    Decay {
        /// Decay rate per excess round / second (`> 0`).
        rate: f64,
    },
}

/// A message TTL plus a staleness cap.
///
/// [`Default`] is unbounded: no TTL, no cap — the policy under which the
/// engine behaves bit-for-bit as before this subsystem existed.
///
/// # TTL / cap invariants
///
/// The two mechanisms act at different points of a message's life and keep
/// distinct accounting, and interpreters must preserve that separation:
///
/// - the **TTL** is evaluated at *mailbox drain* against the message's age
///   in virtual seconds: an expired message is never decoded and is counted
///   in `TrafficStats::messages_expired` (distinct from link drops). A
///   `None` or infinite [`Self::ttl_s`] never expires anything;
/// - the **cap** is evaluated at *mix time* via [`Self::weight_factor`]: the
///   factor is `1.0` strictly within the cap (by identity — no float
///   multiply, preserving the engine's degenerate bit-for-bit contract),
///   `0.0` over the cap under [`CapAction::Drop`] (also counted as
///   expired), and in `(0, 1)` under [`CapAction::Decay`];
/// - down-weighted mass is never lost: [`apply_factor`] returns the mass to
///   absorb into the mixer's self-weight, so every row of the effective
///   mixing matrix keeps summing to one. A `Decay` factor that underflows
///   to exactly `0.0` is *not* a drop — the message stays in the mix at
///   weight zero and its whole mass moves to the self-weight;
/// - validated policies ([`Self::validate`]) guarantee
///   `weight_factor ∈ [0, 1]` for all ages (a `proptest` in this module
///   pins it).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StalenessPolicy {
    /// Messages older than this many virtual seconds expire at mailbox
    /// drain (`None` or infinite = never).
    #[serde(default)]
    pub ttl_s: Option<f64>,
    /// Cap in rounds: a message sent at round `s` and mixed at round `r` is
    /// over the cap when `r - s > k` (`None` = no round cap).
    #[serde(default)]
    pub max_age_rounds: Option<usize>,
    /// Cap in virtual seconds of message age at mix time (`None` or
    /// infinite = no time cap).
    #[serde(default)]
    pub max_age_s: Option<f64>,
    /// What happens beyond the cap.
    #[serde(default)]
    pub over_cap: CapAction,
}

impl StalenessPolicy {
    /// The unbounded policy (same as [`Default`]).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Drop messages older than `k` rounds.
    pub fn drop_after_rounds(k: usize) -> Self {
        Self {
            max_age_rounds: Some(k),
            ..Self::default()
        }
    }

    /// Exponentially down-weight messages older than `k` rounds.
    pub fn decay_after_rounds(k: usize, rate: f64) -> Self {
        Self {
            max_age_rounds: Some(k),
            over_cap: CapAction::Decay { rate },
            ..Self::default()
        }
    }

    /// The TTL with infinities normalized away.
    pub fn ttl(&self) -> Option<f64> {
        self.ttl_s.filter(|t| t.is_finite())
    }

    /// Whether any cap (rounds or seconds) is in effect.
    pub fn has_cap(&self) -> bool {
        self.max_age_rounds.is_some() || self.max_age_s.filter(|t| t.is_finite()).is_some()
    }

    /// Whether the policy changes nothing (no TTL, no cap).
    pub fn is_unbounded(&self) -> bool {
        self.ttl().is_none() && !self.has_cap()
    }

    /// Whether a message of age `age_s` (seconds since it was sent) has
    /// outlived its TTL.
    pub fn expires(&self, age_s: f64) -> bool {
        self.ttl().is_some_and(|t| age_s > t)
    }

    /// The mixing-weight factor for a message `age_rounds` rounds /
    /// `age_s` seconds old: `1.0` within the cap, `0.0` to drop, a value in
    /// `(0, 1)` to down-weight.
    pub fn weight_factor(&self, age_rounds: usize, age_s: f64) -> f64 {
        let excess_rounds = self
            .max_age_rounds
            .map(|k| age_rounds.saturating_sub(k) as f64)
            .unwrap_or(0.0);
        let excess_secs = self
            .max_age_s
            .filter(|t| t.is_finite())
            .map(|t| (age_s - t).max(0.0))
            .unwrap_or(0.0);
        if excess_rounds == 0.0 && excess_secs == 0.0 {
            return 1.0;
        }
        match self.over_cap {
            CapAction::Drop => 0.0,
            CapAction::Decay { rate } => {
                let mut factor = 1.0f64;
                if excess_rounds > 0.0 {
                    factor = factor.min((-rate * excess_rounds).exp());
                }
                if excess_secs > 0.0 {
                    factor = factor.min((-rate * excess_secs).exp());
                }
                factor
            }
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        // Written via partial_cmp so NaN is also rejected.
        let positive = |v: f64| v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
        if let Some(t) = self.ttl_s {
            if !positive(t) {
                return Err(format!("message TTL {t} must be positive"));
            }
        }
        if let Some(t) = self.max_age_s {
            if !positive(t) {
                return Err(format!("staleness age cap {t} must be positive"));
            }
        }
        if let CapAction::Decay { rate } = self.over_cap {
            if !(positive(rate) && rate.is_finite()) {
                return Err(format!("decay rate {rate} must be positive and finite"));
            }
        }
        Ok(())
    }
}

/// Applies a staleness factor to one mixing weight, returning the reduced
/// weight and the mass to absorb into the self-weight. A factor of `1.0`
/// returns the weight bit-unchanged (no float multiply), preserving the
/// engine's degenerate-config bit-for-bit contract.
pub fn apply_factor(weight: f64, factor: f64) -> (f64, f64) {
    if factor >= 1.0 {
        (weight, 0.0)
    } else {
        (weight * factor, weight * (1.0 - factor))
    }
}

/// Down-weights a whole row of mixing weights: each `(weight, factor)`
/// entry becomes `weight · factor`, and the removed mass is added to
/// `self_weight`. If the inputs form a stochastic row
/// (`self_weight + Σ weight = 1`) and every factor lies in `[0, 1]`, the
/// output row is stochastic too.
pub fn downweight_row(self_weight: f64, entries: &[(f64, f64)]) -> (f64, Vec<f64>) {
    let mut new_self = self_weight;
    let mut weights = Vec::with_capacity(entries.len());
    for &(weight, factor) in entries {
        let (w, absorbed) = apply_factor(weight, factor);
        new_self += absorbed;
        weights.push(w);
    }
    (new_self, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unbounded_policy_keeps_everything() {
        let p = StalenessPolicy::unbounded();
        assert!(p.is_unbounded());
        assert!(!p.has_cap());
        assert!(!p.expires(1e12));
        assert_eq!(p.weight_factor(1_000_000, 1e12), 1.0);
    }

    #[test]
    fn infinite_ttl_normalizes_to_none() {
        let p = StalenessPolicy {
            ttl_s: Some(f64::INFINITY),
            ..StalenessPolicy::default()
        };
        assert!(p.is_unbounded());
        assert_eq!(p.ttl(), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn ttl_expires_strictly_older_messages() {
        let p = StalenessPolicy {
            ttl_s: Some(2.0),
            ..StalenessPolicy::default()
        };
        assert!(!p.expires(2.0));
        assert!(p.expires(2.0 + 1e-9));
    }

    #[test]
    fn round_cap_drops_beyond_k() {
        let p = StalenessPolicy::drop_after_rounds(2);
        assert_eq!(p.weight_factor(0, 0.0), 1.0);
        assert_eq!(p.weight_factor(2, 0.0), 1.0, "k itself is within the cap");
        assert_eq!(p.weight_factor(3, 0.0), 0.0);
    }

    #[test]
    fn decay_shrinks_with_excess_age() {
        let p = StalenessPolicy::decay_after_rounds(1, 0.5);
        assert_eq!(p.weight_factor(1, 0.0), 1.0);
        let f2 = p.weight_factor(2, 0.0);
        let f4 = p.weight_factor(4, 0.0);
        assert!((f2 - (-0.5f64).exp()).abs() < 1e-12);
        assert!(f4 < f2 && f4 > 0.0);
    }

    #[test]
    fn seconds_cap_composes_with_round_cap() {
        let p = StalenessPolicy {
            max_age_rounds: Some(10),
            max_age_s: Some(1.0),
            over_cap: CapAction::Decay { rate: 1.0 },
            ..StalenessPolicy::default()
        };
        // Only the seconds cap is exceeded.
        let f = p.weight_factor(0, 3.0);
        assert!((f - (-2.0f64).exp()).abs() < 1e-12);
        // Both exceeded: the smaller factor wins.
        let f = p.weight_factor(15, 3.0);
        assert!((f - (-5.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_numbers() {
        assert!(StalenessPolicy {
            ttl_s: Some(0.0),
            ..StalenessPolicy::default()
        }
        .validate()
        .is_err());
        assert!(StalenessPolicy {
            max_age_s: Some(-1.0),
            ..StalenessPolicy::default()
        }
        .validate()
        .is_err());
        assert!(StalenessPolicy::decay_after_rounds(1, 0.0)
            .validate()
            .is_err());
        assert!(StalenessPolicy::decay_after_rounds(1, f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn apply_factor_is_exact_at_one() {
        let w = 0.123_456_789_f64;
        let (kept, absorbed) = apply_factor(w, 1.0);
        assert_eq!(kept.to_bits(), w.to_bits());
        assert_eq!(absorbed, 0.0);
    }

    #[test]
    fn apply_factor_at_zero_moves_all_mass() {
        // A decay factor that underflows to zero keeps the message in the
        // mix at weight zero — the whole mass goes to the self-weight, it
        // is not lost.
        let w = 0.25f64;
        let (kept, absorbed) = apply_factor(w, 0.0);
        assert_eq!(kept, 0.0);
        assert_eq!(absorbed, w);
    }

    proptest! {
        /// Satellite property: a Drop policy never lets an over-cap message
        /// carry mixing weight.
        #[test]
        fn no_over_cap_message_is_ever_mixed(
            k in 0usize..64,
            age in 0usize..256,
            age_s in 0.0f64..1e6,
        ) {
            let p = StalenessPolicy::drop_after_rounds(k);
            let f = p.weight_factor(age, age_s);
            if age > k {
                prop_assert_eq!(f, 0.0);
            } else {
                prop_assert_eq!(f, 1.0);
            }
        }

        /// Factors always lie in [0, 1] for valid policies.
        #[test]
        fn factors_are_probabilities(
            k in 0usize..32,
            rate in 0.01f64..10.0,
            age in 0usize..256,
            age_s in 0.0f64..1e6,
            drop in proptest::any::<bool>(),
        ) {
            let p = if drop {
                StalenessPolicy::drop_after_rounds(k)
            } else {
                StalenessPolicy::decay_after_rounds(k, rate)
            };
            let f = p.weight_factor(age, age_s);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        /// Satellite property: down-weighting keeps the mixing row
        /// stochastic — mass moves to the self-weight, never vanishes.
        #[test]
        fn downweight_preserves_row_sum(
            raw in proptest::collection::vec((1e-3f64..1.0, 0.0f64..=1.0), 1..12),
        ) {
            // Normalize the raw weights into a stochastic row with a
            // positive self-weight.
            let total: f64 = raw.iter().map(|(w, _)| w).sum::<f64>() + 1.0;
            let self_weight = 1.0 / total;
            let entries: Vec<(f64, f64)> =
                raw.iter().map(|&(w, f)| (w / total, f)).collect();
            let before: f64 = self_weight + entries.iter().map(|(w, _)| w).sum::<f64>();
            let (new_self, weights) = downweight_row(self_weight, &entries);
            let after: f64 = new_self + weights.iter().sum::<f64>();
            prop_assert!((after - before).abs() < 1e-12, "{before} -> {after}");
            prop_assert!(new_self >= self_weight - 1e-15);
            for (w, &(orig, _)) in weights.iter().zip(&entries) {
                prop_assert!(*w >= 0.0 && *w <= orig + 1e-15);
            }
        }
    }
}
