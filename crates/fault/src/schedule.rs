//! Fault schedules: serde-configurable crash/recovery plans expanded
//! deterministically into virtual-time lifecycle events.
//!
//! A [`FaultPlan`] is *generative*, like the heterogeneity profiles in
//! `jwins_sim`: it expands a seed into a concrete [`FaultTimeline`] — a
//! validated, per-node-alternating list of outage intervals — so a faulty
//! cluster is exactly as reproducible as its data split. The training
//! engine replays the timeline's [`TimedFault`]s through its event queue.

use jwins_sim::{LifecycleEvent, SimTime};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What state a node rejoins with after an outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RejoinMode {
    /// Warm restart: the node resumes from its last local model (a process
    /// restart on persistent storage).
    #[default]
    Warm,
    /// Re-synced restart: the node fetches the current model of the
    /// lowest-indexed live peer before resuming (a fresh join). Falls back
    /// to a warm restart when no peer is alive.
    Resync,
}

/// One planned outage: `node` is down over `[at_s, at_s + down_s)`. An
/// infinite `down_s` means the node never recovers (a permanent crash).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultOutage {
    /// The node that crashes.
    pub node: usize,
    /// Virtual time of the crash, in seconds.
    pub at_s: f64,
    /// Outage duration in seconds (the recovery fires at `at_s + down_s`;
    /// `f64::INFINITY` = never).
    pub down_s: f64,
    /// How the node rejoins.
    #[serde(default)]
    pub rejoin: RejoinMode,
}

impl FaultOutage {
    /// A warm-rejoin outage.
    pub fn new(node: usize, at_s: f64, down_s: f64) -> Self {
        Self {
            node,
            at_s,
            down_s,
            rejoin: RejoinMode::default(),
        }
    }
}

/// A serde-configurable fault schedule.
///
/// Plans are expanded by [`FaultTimeline::expand`] deterministically in
/// `(plan, n, seed)`; the same experiment always sees the same failures.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultPlan {
    /// No faults (the degenerate plan).
    #[default]
    None,
    /// Explicit outage script ("node 3 dies at t=40 s for 25 s").
    Scripted(Vec<FaultOutage>),
    /// Per-node alternating up/down intervals with exponentially distributed
    /// durations, generated until `horizon_s`. Node 0 is kept always-up so
    /// the cluster never goes fully dark (mirroring
    /// `jwins::participation::RandomDropout`).
    RandomChurn {
        /// Mean up-time between failures, in seconds (`> 0`).
        mean_up_s: f64,
        /// Mean outage duration, in seconds (`> 0`).
        mean_down_s: f64,
        /// Generate crashes only before this virtual time (`> 0`); a final
        /// outage may recover after it.
        horizon_s: f64,
        /// How nodes rejoin.
        #[serde(default)]
        rejoin: RejoinMode,
    },
    /// A correlated outage: a seed-chosen `fraction` of nodes all crash at
    /// `at_s` and recover together `down_s` later (rack/AZ failure).
    CorrelatedOutage {
        /// Fraction of nodes that crash, in `[0, 1]`.
        fraction: f64,
        /// Virtual time of the crash, in seconds.
        at_s: f64,
        /// Outage duration in seconds.
        down_s: f64,
        /// How nodes rejoin.
        #[serde(default)]
        rejoin: RejoinMode,
    },
}

impl FaultPlan {
    /// Whether this plan injects nothing.
    pub fn is_noop(&self) -> bool {
        match self {
            FaultPlan::None => true,
            FaultPlan::Scripted(outages) => outages.is_empty(),
            FaultPlan::RandomChurn { .. } => false,
            FaultPlan::CorrelatedOutage { fraction, .. } => *fraction == 0.0,
        }
    }

    /// Validates plan parameters (node indices are checked at expansion,
    /// when the cluster size is known).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |v: f64, what: &str| {
            if v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater) && v.is_finite() {
                Ok(())
            } else {
                Err(format!("{what} {v} must be positive and finite"))
            }
        };
        // Outage durations may be infinite (a permanent crash), but never
        // NaN, zero or negative.
        let positive_duration = |v: f64| {
            if v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater) {
                Ok(())
            } else {
                Err(format!("outage duration {v} must be positive"))
            }
        };
        match self {
            FaultPlan::None => Ok(()),
            FaultPlan::Scripted(outages) => {
                for o in outages {
                    if !(o.at_s >= 0.0 && o.at_s.is_finite()) {
                        return Err(format!("outage time {} must be finite and >= 0", o.at_s));
                    }
                    positive_duration(o.down_s)?;
                }
                Ok(())
            }
            FaultPlan::RandomChurn {
                mean_up_s,
                mean_down_s,
                horizon_s,
                ..
            } => {
                positive(*mean_up_s, "mean up-time")?;
                positive(*mean_down_s, "mean down-time")?;
                positive(*horizon_s, "churn horizon")
            }
            FaultPlan::CorrelatedOutage {
                fraction,
                at_s,
                down_s,
                ..
            } => {
                if !(0.0..=1.0).contains(fraction) {
                    return Err(format!("outage fraction {fraction} outside [0, 1]"));
                }
                if !(*at_s >= 0.0 && at_s.is_finite()) {
                    return Err(format!("outage time {at_s} must be finite and >= 0"));
                }
                positive_duration(*down_s)
            }
        }
    }
}

/// One lifecycle event at a virtual time, as replayed by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedFault {
    /// When the event fires.
    pub at: SimTime,
    /// Crash or recover.
    pub event: LifecycleEvent,
    /// Rejoin mode (meaningful on `Recover` events only).
    pub rejoin: RejoinMode,
}

/// A concrete outage interval in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    node: usize,
    start: SimTime,
    end: SimTime,
    rejoin: RejoinMode,
}

/// A validated, expanded fault schedule: per-node non-overlapping outage
/// intervals, queryable by time and replayable as [`TimedFault`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    intervals: Vec<Interval>,
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn uniform01(rng: &mut ChaCha8Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential draw with the given mean (inverse-CDF of `1 - u`).
fn exponential(rng: &mut ChaCha8Rng, mean_s: f64) -> f64 {
    -mean_s * (1.0 - uniform01(rng)).ln()
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultTimeline {
    /// Expands `plan` for an `n`-node cluster, deterministically in
    /// `(plan, n, seed)`.
    ///
    /// # Errors
    ///
    /// Rejects invalid plan parameters, out-of-range node indices and
    /// per-node overlapping (or touching) outage intervals — a node must be
    /// up for a non-zero time between two outages.
    pub fn expand(plan: &FaultPlan, n: usize, seed: u64) -> Result<FaultTimeline, String> {
        plan.validate()?;
        let mut intervals: Vec<Interval> = Vec::new();
        let mut push = |node: usize, at_s: f64, down_s: f64, rejoin: RejoinMode| {
            let start = SimTime::from_secs_f64(at_s);
            let end = SimTime::from_secs_f64(at_s + down_s);
            intervals.push(Interval {
                node,
                start,
                end,
                rejoin,
            });
        };
        match plan {
            FaultPlan::None => {}
            FaultPlan::Scripted(outages) => {
                for o in outages {
                    if o.node >= n {
                        return Err(format!("outage node {} outside cluster of {n}", o.node));
                    }
                    push(o.node, o.at_s, o.down_s, o.rejoin);
                }
            }
            FaultPlan::RandomChurn {
                mean_up_s,
                mean_down_s,
                horizon_s,
                rejoin,
            } => {
                // Node 0 stays up (see the plan's docs); each other node has
                // its own hash-derived stream, so the schedule is invariant
                // to cluster-size changes elsewhere.
                for node in 1..n {
                    let mut rng =
                        ChaCha8Rng::seed_from_u64(splitmix64(seed ^ ((node as u64) << 17)));
                    let mut t = exponential(&mut rng, *mean_up_s);
                    while t < *horizon_s {
                        let down = exponential(&mut rng, *mean_down_s);
                        push(node, t, down, *rejoin);
                        // Strictly-positive up-time keeps intervals disjoint.
                        t += down + exponential(&mut rng, *mean_up_s).max(1e-9);
                    }
                }
            }
            FaultPlan::CorrelatedOutage {
                fraction,
                at_s,
                down_s,
                rejoin,
            } => {
                let count = (fraction * n as f64).round() as usize;
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0_44E1);
                use rand::seq::SliceRandom;
                order.shuffle(&mut rng);
                let mut victims: Vec<usize> = order.into_iter().take(count).collect();
                victims.sort_unstable();
                for node in victims {
                    push(node, *at_s, *down_s, *rejoin);
                }
            }
        }
        // Per-node alternation: intervals must be disjoint with strictly
        // positive up-time in between (an instantaneous crash+recover pair
        // would be ambiguous to replay).
        intervals.sort_by_key(|iv| (iv.node, iv.start, iv.end));
        for pair in intervals.windows(2) {
            if pair[0].node == pair[1].node && pair[1].start <= pair[0].end {
                return Err(format!(
                    "node {} has overlapping or touching outages",
                    pair[0].node
                ));
            }
        }
        for iv in &intervals {
            if iv.end <= iv.start {
                return Err(format!(
                    "node {} outage rounds to a zero-length interval",
                    iv.node
                ));
            }
        }
        Ok(FaultTimeline { intervals })
    }

    /// Whether the timeline contains no outages.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of outages (crash/recover pairs).
    pub fn outage_count(&self) -> usize {
        self.intervals.len()
    }

    /// The crash and recovery events of every outage, sorted by time (ties
    /// by node id, crashes before recoveries). An outage whose end
    /// saturates the time axis (infinite `down_s`) emits no recovery — the
    /// node is gone for good.
    pub fn events(&self) -> Vec<TimedFault> {
        let mut events = Vec::with_capacity(self.intervals.len() * 2);
        for iv in &self.intervals {
            events.push(TimedFault {
                at: iv.start,
                event: LifecycleEvent::Crash { node: iv.node },
                rejoin: iv.rejoin,
            });
            if iv.end < SimTime(u64::MAX) {
                events.push(TimedFault {
                    at: iv.end,
                    event: LifecycleEvent::Recover { node: iv.node },
                    rejoin: iv.rejoin,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.event.node(), !e.event.is_crash()));
        events
    }

    /// The largest number of nodes simultaneously down at any instant —
    /// the worst-case hole a topology-repair policy has to wire around
    /// (outages are half-open, so a recovery at the exact instant of
    /// another crash does not overlap it).
    pub fn peak_concurrent_down(&self) -> usize {
        let mut deltas: Vec<(SimTime, bool)> = Vec::new();
        for iv in &self.intervals {
            deltas.push((iv.start, true));
            if iv.end < SimTime(u64::MAX) {
                deltas.push((iv.end, false));
            }
        }
        // Ends sort before starts at equal times (false < true).
        deltas.sort_by_key(|&(t, is_start)| (t, is_start));
        let mut down = 0usize;
        let mut peak = 0usize;
        for (_, is_start) in deltas {
            if is_start {
                down += 1;
                peak = peak.max(down);
            } else {
                down -= 1;
            }
        }
        peak
    }

    /// Whether `node` is down at time `t` (outages are half-open:
    /// down on `[start, end)`).
    pub fn is_down_at(&self, node: usize, t: SimTime) -> bool {
        self.intervals
            .iter()
            .any(|iv| iv.node == node && iv.start <= t && t < iv.end)
    }

    /// Whether `node` is down at any point of `[from, until)` — the
    /// round-window query behind the barrier engine's participation bridge.
    pub fn is_down_during(&self, node: usize, from: SimTime, until: SimTime) -> bool {
        self.intervals
            .iter()
            .any(|iv| iv.node == node && iv.start < until && from < iv.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_expands_empty() {
        let t = FaultTimeline::expand(&FaultPlan::None, 8, 1).unwrap();
        assert!(t.is_empty());
        assert!(t.events().is_empty());
        assert!(!t.is_down_at(0, SimTime(123)));
    }

    #[test]
    fn scripted_outage_produces_crash_then_recover() {
        let plan = FaultPlan::Scripted(vec![FaultOutage::new(2, 1.0, 0.5)]);
        let t = FaultTimeline::expand(&plan, 4, 0).unwrap();
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, LifecycleEvent::Crash { node: 2 });
        assert_eq!(events[0].at, SimTime::from_secs_f64(1.0));
        assert_eq!(events[1].event, LifecycleEvent::Recover { node: 2 });
        assert_eq!(events[1].at, SimTime::from_secs_f64(1.5));
        assert!(t.is_down_at(2, SimTime::from_secs_f64(1.2)));
        assert!(!t.is_down_at(2, SimTime::from_secs_f64(1.5)), "half-open");
        assert!(t.is_down_during(2, SimTime::ZERO, SimTime::from_secs_f64(1.1)));
        assert!(!t.is_down_during(2, SimTime::ZERO, SimTime::from_secs_f64(1.0)));
    }

    #[test]
    fn scripted_overlaps_rejected() {
        let plan = FaultPlan::Scripted(vec![
            FaultOutage::new(1, 0.0, 2.0),
            FaultOutage::new(1, 1.0, 1.0),
        ]);
        assert!(FaultTimeline::expand(&plan, 4, 0).is_err());
        // Touching intervals (recover == next crash) are also ambiguous.
        let plan = FaultPlan::Scripted(vec![
            FaultOutage::new(1, 0.0, 1.0),
            FaultOutage::new(1, 1.0, 1.0),
        ]);
        assert!(FaultTimeline::expand(&plan, 4, 0).is_err());
        // Different nodes may overlap freely.
        let plan = FaultPlan::Scripted(vec![
            FaultOutage::new(1, 0.0, 2.0),
            FaultOutage::new(2, 1.0, 2.0),
        ]);
        assert!(FaultTimeline::expand(&plan, 4, 0).is_ok());
    }

    #[test]
    fn scripted_node_out_of_range_rejected() {
        let plan = FaultPlan::Scripted(vec![FaultOutage::new(4, 0.0, 1.0)]);
        assert!(FaultTimeline::expand(&plan, 4, 0).is_err());
    }

    #[test]
    fn random_churn_is_deterministic_and_spares_node_zero() {
        let plan = FaultPlan::RandomChurn {
            mean_up_s: 5.0,
            mean_down_s: 2.0,
            horizon_s: 200.0,
            rejoin: RejoinMode::Warm,
        };
        let a = FaultTimeline::expand(&plan, 8, 7).unwrap();
        let b = FaultTimeline::expand(&plan, 8, 7).unwrap();
        let c = FaultTimeline::expand(&plan, 8, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds draw different schedules");
        assert!(a.outage_count() > 0, "200 s at MTBF 5 s must crash");
        assert!(a.events().iter().all(|e| e.event.node() != 0));
    }

    #[test]
    fn correlated_outage_hits_the_requested_fraction() {
        let plan = FaultPlan::CorrelatedOutage {
            fraction: 0.25,
            at_s: 3.0,
            down_s: 4.0,
            rejoin: RejoinMode::Resync,
        };
        let t = FaultTimeline::expand(&plan, 16, 3).unwrap();
        assert_eq!(t.outage_count(), 4);
        let down_at = |time: f64| {
            (0..16)
                .filter(|&v| t.is_down_at(v, SimTime::from_secs_f64(time)))
                .count()
        };
        assert_eq!(down_at(2.9), 0);
        assert_eq!(down_at(3.0), 4);
        assert_eq!(down_at(7.0), 0);
        // Recoveries carry the plan's rejoin mode.
        assert!(t.events().iter().all(|e| e.rejoin == RejoinMode::Resync));
    }

    #[test]
    fn peak_concurrent_down_sweeps_overlaps() {
        assert_eq!(
            FaultTimeline::expand(&FaultPlan::None, 4, 0)
                .unwrap()
                .peak_concurrent_down(),
            0
        );
        let plan = FaultPlan::Scripted(vec![
            FaultOutage::new(1, 0.0, 4.0),
            FaultOutage::new(2, 2.0, 4.0),
            // Starts exactly when node 1 recovers: half-open, no overlap.
            FaultOutage::new(3, 4.0, 1.0),
            // Permanent crash overlaps everything after t = 5.
            FaultOutage::new(0, 5.0, f64::INFINITY),
        ]);
        let t = FaultTimeline::expand(&plan, 4, 0).unwrap();
        assert_eq!(t.peak_concurrent_down(), 2);
    }

    #[test]
    fn infinite_outage_never_recovers() {
        let plan = FaultPlan::Scripted(vec![FaultOutage::new(1, 2.0, f64::INFINITY)]);
        assert!(plan.validate().is_ok());
        let t = FaultTimeline::expand(&plan, 4, 0).unwrap();
        let events = t.events();
        assert_eq!(events.len(), 1, "no recovery event");
        assert!(events[0].event.is_crash());
        assert!(t.is_down_at(1, SimTime(u64::MAX - 1)));
        // A later outage for the same node can never happen.
        let plan = FaultPlan::Scripted(vec![
            FaultOutage::new(1, 2.0, f64::INFINITY),
            FaultOutage::new(1, 50.0, 1.0),
        ]);
        assert!(FaultTimeline::expand(&plan, 4, 0).is_err());
    }

    #[test]
    fn plan_validation_rejects_bad_numbers() {
        assert!(FaultPlan::Scripted(vec![FaultOutage::new(0, -1.0, 1.0)])
            .validate()
            .is_err());
        assert!(FaultPlan::Scripted(vec![FaultOutage::new(0, 0.0, 0.0)])
            .validate()
            .is_err());
        assert!(FaultPlan::RandomChurn {
            mean_up_s: 0.0,
            mean_down_s: 1.0,
            horizon_s: 10.0,
            rejoin: RejoinMode::Warm,
        }
        .validate()
        .is_err());
        assert!(FaultPlan::CorrelatedOutage {
            fraction: 1.5,
            at_s: 0.0,
            down_s: 1.0,
            rejoin: RejoinMode::Warm,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn noop_detection() {
        assert!(FaultPlan::None.is_noop());
        assert!(FaultPlan::Scripted(Vec::new()).is_noop());
        assert!(!FaultPlan::Scripted(vec![FaultOutage::new(0, 0.0, 1.0)]).is_noop());
        assert!(FaultPlan::CorrelatedOutage {
            fraction: 0.0,
            at_s: 1.0,
            down_s: 1.0,
            rejoin: RejoinMode::Warm,
        }
        .is_noop());
    }
}
