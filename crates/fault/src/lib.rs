//! Deterministic fault injection and bounded-staleness control.
//!
//! The event-driven runtime (PR 1) made stragglers and asynchronous gossip
//! expressible, but it still idealizes two things the paper's JWINS/CHoCo
//! comparisons depend on at scale: nodes never die mid-round, and the mixer
//! happily averages arbitrarily old messages. This crate supplies both
//! missing failure models as *pure, seeded data* — the training engine in
//! `jwins::engine` interprets them, this crate knows nothing about learning:
//!
//! - [`FaultPlan`]/[`FaultTimeline`]: serde-configurable crash/recovery
//!   schedules (explicit scripts, exponential per-node churn, correlated
//!   outages) expanded deterministically from a seed into virtual-time
//!   [`jwins_sim::LifecycleEvent`]s. A crash mid-round kills the node's
//!   in-flight messages; a recovery rejoins [`RejoinMode::Warm`] (last local
//!   state) or [`RejoinMode::Resync`] (re-synced from a live peer).
//! - [`StalenessPolicy`]: per-message TTLs (expiry at mailbox drain) plus a
//!   staleness cap in rounds and/or virtual seconds that either drops
//!   over-cap messages or down-weights them with exponential decay
//!   ([`CapAction`]), with the removed weight mass absorbed into the
//!   self-weight so the effective mixing matrix stays row-stochastic
//!   ([`apply_factor`]/[`downweight_row`]).
//!
//! A degenerate [`FaultConfig`] (no faults, infinite TTL, no cap) is a
//! strict no-op: the engine reproduces its fault-free results bit-for-bit.
//!
//! # Example
//!
//! Expand a correlated outage into a timeline (a pure function of the seed)
//! and bound staleness with a two-round drop cap:
//!
//! ```
//! use jwins_fault::{FaultConfig, FaultPlan, FaultTimeline, RejoinMode, StalenessPolicy};
//!
//! let config = FaultConfig {
//!     // A quarter of the cluster dies at t = 5 s for 2 s, rejoins re-synced.
//!     plan: FaultPlan::CorrelatedOutage {
//!         fraction: 0.25,
//!         at_s: 5.0,
//!         down_s: 2.0,
//!         rejoin: RejoinMode::Resync,
//!     },
//!     // Messages more than two rounds old are excluded from mixing.
//!     staleness: StalenessPolicy::drop_after_rounds(2),
//! };
//! assert!(config.validate().is_ok());
//! assert!(!config.is_noop());
//!
//! let timeline = FaultTimeline::expand(&config.plan, 8, 42).unwrap();
//! assert_eq!(timeline.events().len(), 4, "2 victims x (crash + recovery)");
//! // Deterministic: the same seed always expands to the same schedule.
//! assert_eq!(timeline, FaultTimeline::expand(&config.plan, 8, 42).unwrap());
//!
//! assert_eq!(config.staleness.weight_factor(1, 0.0), 1.0, "within the cap");
//! assert_eq!(config.staleness.weight_factor(3, 0.0), 0.0, "over the cap");
//! ```

#![warn(missing_docs)]

pub mod schedule;
pub mod staleness;

pub use schedule::{FaultOutage, FaultPlan, FaultTimeline, RejoinMode, TimedFault};
pub use staleness::{apply_factor, downweight_row, CapAction, StalenessPolicy};

use serde::{Deserialize, Serialize};

/// The full fault/staleness surface carried by a training configuration.
///
/// [`Default`] is the degenerate configuration — no fault plan, unbounded
/// staleness — under which the event-driven engine behaves bit-for-bit as if
/// this subsystem did not exist.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Crash/recovery schedule (default: no faults).
    #[serde(default)]
    pub plan: FaultPlan,
    /// Message TTL and staleness cap (default: unbounded).
    #[serde(default)]
    pub staleness: StalenessPolicy,
}

impl FaultConfig {
    /// Whether this configuration changes nothing: no planned faults and an
    /// unbounded staleness policy.
    pub fn is_noop(&self) -> bool {
        self.plan.is_noop() && self.staleness.is_unbounded()
    }

    /// Validates both components.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        self.plan.validate()?;
        self.staleness.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop_and_valid() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_noop());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn explicit_degenerate_values_are_still_noop() {
        let cfg = FaultConfig {
            plan: FaultPlan::Scripted(Vec::new()),
            staleness: StalenessPolicy {
                ttl_s: Some(f64::INFINITY),
                ..StalenessPolicy::default()
            },
        };
        assert!(cfg.is_noop());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = FaultConfig {
            plan: FaultPlan::CorrelatedOutage {
                fraction: 0.25,
                at_s: 3.0,
                down_s: 5.0,
                rejoin: RejoinMode::Resync,
            },
            staleness: StalenessPolicy::drop_after_rounds(2),
        };
        let text = serde::json::to_string(&cfg);
        let back: FaultConfig = serde::json::from_str(&text).unwrap();
        assert_eq!(back, cfg);
        assert!(!back.is_noop());
    }
}
