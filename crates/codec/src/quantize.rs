//! QSGD-style stochastic uniform quantization (extension).
//!
//! The paper's background section (§II-B) discusses quantization as the other
//! major family of compression next to sparsification; QSGD (Alistarh et al.,
//! 2017) is the canonical scheme and the origin of JWINS's Elias-gamma
//! metadata trick. This module implements QSGD so the benchmark suite can
//! ablate sparsification against quantization on equal footing.
//!
//! `quantize(v, s)` maps each coordinate to one of `s` levels of `|v_i| /
//! ‖v‖₂`, rounding stochastically so the result is an *unbiased* estimator of
//! `v`. The wire format stores the norm (f32), one sign bit and a gamma-coded
//! level per coordinate.

use crate::bitio::{BitReader, BitWriter};
use crate::elias;
use crate::{CodecError, Result};

/// Stochastic uniform quantizer with `levels >= 1` quantization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Qsgd {
    levels: u32,
}

impl Qsgd {
    /// Creates a quantizer with the given number of levels (e.g. 255 for
    /// "8-bit" QSGD).
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new(levels: u32) -> Self {
        assert!(levels > 0, "QSGD needs at least one level");
        Self { levels }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Quantizes `values`, drawing rounding randomness from `uniform`, a
    /// closure returning samples in `[0, 1)` (injected so callers control
    /// seeding and this crate stays RNG-agnostic).
    pub fn encode<F: FnMut() -> f32>(&self, values: &[f32], mut uniform: F) -> Vec<u8> {
        let norm = l2_norm(values);
        let mut w = BitWriter::with_capacity_bits(values.len() * 4 + 64);
        w.write_bits(u64::from(norm.to_bits()), 32);
        if norm == 0.0 {
            return w.into_bytes();
        }
        for &v in values {
            w.write_bit(v.is_sign_negative());
            let scaled = (v.abs() / norm) * self.levels as f32;
            let floor = scaled.floor();
            let frac = scaled - floor;
            let level = floor as u32 + u32::from(uniform() < frac);
            let level = level.min(self.levels);
            // Shift by one: gamma cannot encode zero.
            elias::write_gamma(&mut w, u64::from(level) + 1)
                .expect("level + 1 >= 1 is always encodable");
        }
        w.into_bytes()
    }

    /// Reconstructs `count` values from a buffer produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Fails on truncated or corrupt streams.
    pub fn decode(&self, bytes: &[u8], count: usize) -> Result<Vec<f32>> {
        let mut r = BitReader::new(bytes);
        let norm = f32::from_bits(r.read_bits(32)? as u32);
        if norm == 0.0 {
            return Ok(vec![0.0; count]);
        }
        if !norm.is_finite() || norm < 0.0 {
            return Err(CodecError::Corrupt("invalid norm"));
        }
        // `count` may be wire-influenced; growth is bounded by the
        // stream length, so cap only the eager pre-allocation.
        let mut out = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let negative = r.read_bit()?;
            let level = elias::read_gamma(&mut r)? - 1;
            if level > u64::from(self.levels) {
                return Err(CodecError::Corrupt("quantization level out of range"));
            }
            let magnitude = norm * level as f32 / self.levels as f32;
            out.push(if negative { -magnitude } else { magnitude });
        }
        Ok(out)
    }
}

fn l2_norm(values: &[f32]) -> f32 {
    values
        .iter()
        .map(|v| f64::from(*v) * f64::from(*v))
        .sum::<f64>()
        .sqrt() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "uniform" stream for tests.
    fn halves() -> impl FnMut() -> f32 {
        || 0.5
    }

    #[test]
    fn zero_vector_roundtrip() {
        let q = Qsgd::new(4);
        let bytes = q.encode(&[0.0; 8], halves());
        assert_eq!(q.decode(&bytes, 8).unwrap(), vec![0.0; 8]);
    }

    #[test]
    fn error_bounded_by_norm_over_levels() {
        let q = Qsgd::new(256);
        let values: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 7.0).collect();
        let norm = l2_norm(&values);
        let bytes = q.encode(&values, halves());
        let decoded = q.decode(&bytes, values.len()).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert!(
                (a - b).abs() <= norm / 256.0 + 1e-6,
                "coordinate error {} exceeds bound",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn unbiasedness_over_rounding_randomness() {
        // With u ~ U[0,1), E[level] = scaled, so averaging many draws should
        // approach the original value.
        let q = Qsgd::new(4);
        let values = [0.3f32, -0.7, 0.1];
        let mut acc = vec![0.0f64; values.len()];
        let trials = 4000;
        let mut state = 0x12345678u64;
        let mut next_uniform = move || {
            // xorshift for test determinism
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        for _ in 0..trials {
            let bytes = q.encode(&values, &mut next_uniform);
            for (a, b) in acc.iter_mut().zip(q.decode(&bytes, values.len()).unwrap()) {
                *a += f64::from(b);
            }
        }
        for (mean, v) in acc.iter().map(|a| a / f64::from(trials)).zip(values) {
            assert!(
                (mean - f64::from(v)).abs() < 0.05,
                "mean {mean} far from {v}"
            );
        }
    }

    #[test]
    fn signs_survive() {
        let q = Qsgd::new(2);
        let values = [-1.0f32, 1.0, -2.0, 2.0];
        let decoded = q.decode(&q.encode(&values, halves()), 4).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            if *b != 0.0 {
                assert_eq!(a.signum(), b.signum());
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let q = Qsgd::new(8);
        let bytes = q.encode(&[1.0, -2.0, 3.0], halves());
        assert!(q.decode(&bytes[..3], 3).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_levels_panics() {
        let _ = Qsgd::new(0);
    }
}
