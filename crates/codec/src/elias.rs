//! Elias gamma and Elias delta universal codes for positive integers.
//!
//! JWINS compresses the difference array of sparse-model indices with Elias
//! gamma (paper §III-C), the same construction used by QSGD. Gamma codes are
//! optimal when small deltas dominate — exactly the regime of TopK index
//! arrays over large models, where consecutive selected coefficients are
//! close together. Elias delta is provided as a comparator for the metadata
//! ablation (Figure 9 extension): it wins asymptotically for large values.
//!
//! Both codes encode integers `n >= 1`:
//!
//! - **gamma(n)**: `⌊log2 n⌋` zero bits, then the `⌊log2 n⌋ + 1` binary digits
//!   of `n` (which start with a one).
//! - **delta(n)**: `gamma(⌊log2 n⌋ + 1)` followed by the `⌊log2 n⌋` low bits
//!   of `n`.

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, Result};

/// Appends the Elias gamma code of `n` to `w`.
///
/// # Errors
///
/// Returns [`CodecError::InvalidValue`] if `n == 0` (gamma codes start at 1).
pub fn write_gamma(w: &mut BitWriter, n: u64) -> Result<()> {
    if n == 0 {
        return Err(CodecError::InvalidValue("Elias gamma cannot encode 0"));
    }
    let bits = 64 - n.leading_zeros(); // position of the highest one bit, 1-based
    w.write_zeros(bits - 1);
    w.write_bits(n, bits);
    Ok(())
}

/// Reads one Elias gamma code from `r`.
///
/// # Errors
///
/// Propagates [`CodecError::UnexpectedEof`] and flags runs longer than 64 bits
/// as [`CodecError::Corrupt`].
pub fn read_gamma(r: &mut BitReader<'_>) -> Result<u64> {
    let zeros = r.read_unary_zeros()?;
    if zeros >= 64 {
        return Err(CodecError::Corrupt("gamma prefix longer than 64 bits"));
    }
    // The leading one bit was consumed by `read_unary_zeros`; read the rest.
    let rest = r.read_bits(zeros)?;
    Ok((1u64 << zeros) | rest)
}

/// Appends the Elias delta code of `n` to `w`.
///
/// # Errors
///
/// Returns [`CodecError::InvalidValue`] if `n == 0`.
pub fn write_delta(w: &mut BitWriter, n: u64) -> Result<()> {
    if n == 0 {
        return Err(CodecError::InvalidValue("Elias delta cannot encode 0"));
    }
    let bits = 64 - n.leading_zeros(); // ⌊log2 n⌋ + 1
    write_gamma(w, u64::from(bits))?;
    if bits > 1 {
        w.write_bits(n & !(1u64 << (bits - 1)), bits - 1);
    }
    Ok(())
}

/// Reads one Elias delta code from `r`.
///
/// # Errors
///
/// Propagates stream errors; declares prefixes above 64 bits corrupt.
pub fn read_delta(r: &mut BitReader<'_>) -> Result<u64> {
    let bits = read_gamma(r)?;
    if bits == 0 || bits > 64 {
        return Err(CodecError::Corrupt("delta length prefix out of range"));
    }
    let bits = bits as u32;
    let rest = r.read_bits(bits - 1)?;
    Ok(if bits == 64 {
        (1u64 << 63) | rest
    } else {
        (1u64 << (bits - 1)) | rest
    })
}

/// Bit length of `gamma(n)`; useful for budgeting without encoding.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gamma_bit_len(n: u64) -> u32 {
    assert!(n > 0, "gamma undefined for 0");
    2 * (64 - n.leading_zeros()) - 1
}

/// Bit length of `delta(n)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn delta_bit_len(n: u64) -> u32 {
    assert!(n > 0, "delta undefined for 0");
    let bits = 64 - n.leading_zeros();
    gamma_bit_len(u64::from(bits)) + bits - 1
}

/// Encodes a whole slice with gamma codes into a fresh byte buffer.
///
/// # Errors
///
/// Fails on any zero element.
pub fn gamma_encode_all(values: &[u64]) -> Result<Vec<u8>> {
    let mut w = BitWriter::new();
    for &v in values {
        write_gamma(&mut w, v)?;
    }
    Ok(w.into_bytes())
}

/// Decodes exactly `count` gamma codes from `bytes`.
///
/// # Errors
///
/// Fails if the stream is too short or corrupt.
pub fn gamma_decode_all(bytes: &[u8], count: usize) -> Result<Vec<u64>> {
    let mut r = BitReader::new(bytes);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(read_gamma(&mut r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First few gamma codes from the literature.
    #[test]
    fn gamma_known_codewords() {
        let cases: [(u64, &str); 8] = [
            (1, "1"),
            (2, "010"),
            (3, "011"),
            (4, "00100"),
            (5, "00101"),
            (8, "0001000"),
            (15, "0001111"),
            (16, "000010000"),
        ];
        for (n, expect) in cases {
            let mut w = BitWriter::new();
            write_gamma(&mut w, n).unwrap();
            let bit_len = w.bit_len();
            let bytes = w.into_bytes();
            let got: String = (0..bit_len)
                .map(|i| {
                    let byte = bytes[i / 8];
                    if (byte >> (7 - i % 8)) & 1 == 1 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            assert_eq!(got, expect, "gamma({n})");
            assert_eq!(bit_len as u32, gamma_bit_len(n));
        }
    }

    #[test]
    fn delta_known_codewords() {
        // delta(1) = "1", delta(2) = "0100", delta(3) = "0101", delta(4) = "01100"
        let mut w = BitWriter::new();
        for n in [1u64, 2, 3, 4] {
            write_delta(&mut w, n).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for n in [1u64, 2, 3, 4] {
            assert_eq!(read_delta(&mut r).unwrap(), n);
        }
    }

    #[test]
    fn zero_is_rejected() {
        let mut w = BitWriter::new();
        assert!(matches!(
            write_gamma(&mut w, 0),
            Err(CodecError::InvalidValue(_))
        ));
        assert!(matches!(
            write_delta(&mut w, 0),
            Err(CodecError::InvalidValue(_))
        ));
    }

    #[test]
    fn gamma_roundtrip_boundaries() {
        let mut values = vec![1u64, 2, 3, u32::MAX as u64, u64::MAX];
        for p in 0..63 {
            values.push(1 << p);
            values.push((1 << p) + 1);
        }
        let bytes = gamma_encode_all(&values).unwrap();
        assert_eq!(gamma_decode_all(&bytes, values.len()).unwrap(), values);
    }

    #[test]
    fn delta_roundtrip_boundaries() {
        let mut values = vec![1u64, 2, 3, u64::MAX];
        for p in 0..63 {
            values.push(1 << p);
            values.push((1 << p) | 0x5);
        }
        let mut w = BitWriter::new();
        for &v in &values {
            write_delta(&mut w, v).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_delta(&mut r).unwrap(), v, "delta roundtrip of {v}");
        }
    }

    #[test]
    fn delta_beats_gamma_for_large_values() {
        assert!(delta_bit_len(1 << 40) < gamma_bit_len(1 << 40));
        // ... but not for tiny ones.
        assert!(delta_bit_len(2) >= gamma_bit_len(2));
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let bytes = gamma_encode_all(&[300]).unwrap();
        let cut = &bytes[..bytes.len() - 1];
        assert!(gamma_decode_all(cut, 1).is_err());
    }

    #[test]
    fn bit_len_helpers_match_actual_encoding() {
        for n in [1u64, 2, 7, 8, 100, 1023, 1024, 123_456_789] {
            let mut w = BitWriter::new();
            write_gamma(&mut w, n).unwrap();
            assert_eq!(w.bit_len() as u32, gamma_bit_len(n));
            let mut w = BitWriter::new();
            write_delta(&mut w, n).unwrap();
            assert_eq!(w.bit_len() as u32, delta_bit_len(n));
        }
    }
}
