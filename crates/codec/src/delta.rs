//! Delta coding of strictly increasing index arrays.
//!
//! A TopK selection over a `d`-dimensional model yields a sorted list of
//! coefficient indices. Instead of `4K` bytes of raw `u32`s, JWINS stores the
//! *differences* between consecutive indices (plus one, so every value is
//! `>= 1`) and entropy-codes them with Elias gamma (paper §III-C). Dense
//! selections produce long runs of small deltas that gamma compresses by
//! roughly an order of magnitude — the paper measures 9.9×.

use crate::bitio::{BitReader, BitWriter};
use crate::elias;
use crate::{CodecError, Result};

/// Encodes a strictly increasing slice of indices as gamma-coded deltas.
///
/// Layout: `gamma(first + 1)` then `gamma(idx[i] - idx[i-1])` for each
/// subsequent index. The count is *not* stored; callers frame it externally
/// (see [`crate::sparse`]).
///
/// # Errors
///
/// Returns [`CodecError::InvalidValue`] if the input is not strictly
/// increasing.
pub fn encode_gamma(indices: &[u32]) -> Result<Vec<u8>> {
    let mut w = BitWriter::with_capacity_bits(indices.len() * 8);
    encode_gamma_into(indices, &mut w)?;
    Ok(w.into_bytes())
}

/// Same as [`encode_gamma`] but appends to an existing writer.
///
/// # Errors
///
/// Returns [`CodecError::InvalidValue`] if the input is not strictly increasing.
pub fn encode_gamma_into(indices: &[u32], w: &mut BitWriter) -> Result<()> {
    let mut prev: Option<u32> = None;
    for &idx in indices {
        match prev {
            None => elias::write_gamma(w, u64::from(idx) + 1)?,
            Some(p) => {
                if idx <= p {
                    return Err(CodecError::InvalidValue(
                        "indices must be strictly increasing",
                    ));
                }
                elias::write_gamma(w, u64::from(idx - p))?;
            }
        }
        prev = Some(idx);
    }
    Ok(())
}

/// Decodes `count` indices previously encoded with [`encode_gamma`].
///
/// # Errors
///
/// Fails on truncated streams or if a decoded index overflows `u32`.
pub fn decode_gamma(bytes: &[u8], count: usize) -> Result<Vec<u32>> {
    let mut r = BitReader::new(bytes);
    decode_gamma_from(&mut r, count)
}

/// Same as [`decode_gamma`] but reads from an existing reader.
///
/// # Errors
///
/// Fails on truncated streams or if a decoded index overflows `u32`.
pub fn decode_gamma_from(r: &mut BitReader<'_>, count: usize) -> Result<Vec<u32>> {
    // `count` may be wire-influenced; growth is bounded by the
    // stream length, so cap only the eager pre-allocation.
    let mut out = Vec::with_capacity(count.min(1 << 20));
    let mut prev: u64 = 0;
    for i in 0..count {
        let v = elias::read_gamma(r)?;
        let idx = if i == 0 {
            v.checked_sub(1)
                .ok_or(CodecError::Corrupt("first index underflows"))?
        } else {
            prev + v
        };
        if idx > u64::from(u32::MAX) {
            return Err(CodecError::Corrupt("decoded index overflows u32"));
        }
        out.push(idx as u32);
        prev = idx;
    }
    Ok(out)
}

/// Exact encoded size, in bits, of [`encode_gamma`] for `indices` —
/// used for communication budgeting without materializing the buffer.
///
/// # Errors
///
/// Returns [`CodecError::InvalidValue`] for non-increasing input.
pub fn gamma_encoded_bits(indices: &[u32]) -> Result<usize> {
    let mut bits = 0usize;
    let mut prev: Option<u32> = None;
    for &idx in indices {
        bits += match prev {
            None => elias::gamma_bit_len(u64::from(idx) + 1) as usize,
            Some(p) => {
                if idx <= p {
                    return Err(CodecError::InvalidValue(
                        "indices must be strictly increasing",
                    ));
                }
                elias::gamma_bit_len(u64::from(idx - p)) as usize
            }
        };
        prev = Some(idx);
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_roundtrip() {
        let bytes = encode_gamma(&[]).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(decode_gamma(&bytes, 0).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn simple_roundtrip() {
        let idx = vec![0u32, 1, 2, 10, 1000, 1001, u32::MAX];
        let bytes = encode_gamma(&idx).unwrap();
        assert_eq!(decode_gamma(&bytes, idx.len()).unwrap(), idx);
    }

    #[test]
    fn non_increasing_is_rejected() {
        assert!(encode_gamma(&[5, 5]).is_err());
        assert!(encode_gamma(&[5, 4]).is_err());
        assert!(gamma_encoded_bits(&[1, 1]).is_err());
    }

    #[test]
    fn dense_indices_compress_well() {
        // Every other index out of 100k — deltas of 2 take 3 bits each.
        let idx: Vec<u32> = (0..50_000u32).map(|i| i * 2).collect();
        let bytes = encode_gamma(&idx).unwrap();
        let raw = idx.len() * 4;
        assert!(
            bytes.len() * 8 < raw,
            "gamma ({} bytes) should beat raw ({} bytes) by ~8x",
            bytes.len(),
            raw
        );
        assert!(bytes.len() <= raw / 8);
    }

    #[test]
    fn size_estimate_matches_encoding() {
        let idx: Vec<u32> = vec![3, 7, 8, 20, 500, 501, 502, 100_000];
        let bits = gamma_encoded_bits(&idx).unwrap();
        let bytes = encode_gamma(&idx).unwrap();
        assert_eq!(bytes.len(), bits.div_ceil(8));
    }

    proptest! {
        #[test]
        fn roundtrip_any_sorted_unique(mut raw in proptest::collection::vec(0u32..1_000_000, 0..300)) {
            raw.sort_unstable();
            raw.dedup();
            let bytes = encode_gamma(&raw).unwrap();
            prop_assert_eq!(decode_gamma(&bytes, raw.len()).unwrap(), raw);
        }

        #[test]
        fn estimate_always_matches(mut raw in proptest::collection::vec(0u32..10_000_000, 1..200)) {
            raw.sort_unstable();
            raw.dedup();
            let bits = gamma_encoded_bits(&raw).unwrap();
            let bytes = encode_gamma(&raw).unwrap();
            prop_assert_eq!(bytes.len(), bits.div_ceil(8));
        }
    }
}
