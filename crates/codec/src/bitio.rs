//! MSB-first bit-granular writer and reader.
//!
//! All entropy coders in this crate ([`crate::elias`], [`crate::float`])
//! operate on top of these two types. Bits are packed most-significant-first
//! into bytes, which makes the byte dumps human-auditable: the first bit
//! written is the top bit of the first byte.

use crate::{CodecError, Result};

/// Accumulates individual bits into a byte buffer, MSB first.
///
/// # Example
///
/// ```
/// use jwins_codec::bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits(0b01, 2);
/// let bytes = w.into_bytes();
/// assert_eq!(bytes, vec![0b1010_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `current`.
    filled: u8,
    current: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            filled: 0,
            current: 0,
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.current = (self.current << 1) | u8::from(bit);
        self.filled += 1;
        if self.filled == 8 {
            self.buf.push(self.current);
            self.current = 0;
            self.filled = 0;
        }
    }

    /// Appends the lowest `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for shift in (0..count).rev() {
            self.write_bit((value >> shift) & 1 == 1);
        }
    }

    /// Appends `count` zero bits.
    pub fn write_zeros(&mut self, count: u32) {
        for _ in 0..count {
            self.write_bit(false);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + usize::from(self.filled)
    }

    /// Number of bytes the final buffer will occupy (incomplete byte rounds up).
    pub fn byte_len(&self) -> usize {
        self.bit_len().div_ceil(8)
    }

    /// Finishes the stream, zero-padding the trailing partial byte.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.buf.push(self.current << (8 - self.filled));
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
///
/// # Example
///
/// ```
/// use jwins_codec::bitio::BitReader;
///
/// let mut r = BitReader::new(&[0b1010_0000]);
/// assert_eq!(r.read_bit().unwrap(), true);
/// assert_eq!(r.read_bits(2).unwrap(), 0b01);
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit cursor from the start of `data`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bits remaining in the stream (including any zero padding).
    pub fn remaining_bits(&self) -> usize {
        self.data.len() * 8 - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] when the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.data.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let shift = 7 - (self.pos % 8);
        self.pos += 1;
        Ok((self.data[byte] >> shift) & 1 == 1)
    }

    /// Reads `count` bits into the low bits of a `u64`, MSB first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] when fewer than `count` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u32) -> Result<u64> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if self.remaining_bits() < count as usize {
            return Err(CodecError::UnexpectedEof);
        }
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Ok(value)
    }

    /// Counts and consumes consecutive zero bits, stopping after the first one
    /// bit (which is consumed too). Returns the number of zeros.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if the stream ends before a one
    /// bit is found.
    pub fn read_unary_zeros(&mut self) -> Result<u32> {
        let mut zeros = 0u32;
        loop {
            if self.read_bit()? {
                return Ok(zeros);
            }
            zeros += 1;
            if zeros > 64 {
                return Err(CodecError::Corrupt("unary run exceeds 64 bits"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        assert_eq!(w.byte_len(), 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_bits(0x3, 2);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_bits(2).unwrap(), 0x3);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn eof_is_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn unary_zero_run() {
        let mut w = BitWriter::new();
        w.write_zeros(5);
        w.write_bit(true);
        w.write_bit(true); // next code starts immediately
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_unary_zeros().unwrap(), 5);
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn unary_eof() {
        let bytes = [0u8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_unary_zeros(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn zero_padding_is_deterministic() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }

    #[test]
    fn empty_writer_produces_no_bytes() {
        assert!(BitWriter::new().into_bytes().is_empty());
    }

    #[test]
    fn remaining_and_position_track() {
        let bytes = [0xAB, 0xCD];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.bit_pos(), 5);
        assert_eq!(r.remaining_bits(), 11);
    }
}
