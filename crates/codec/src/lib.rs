//! Bit-level codecs used by JWINS to shrink sparse-model messages.
//!
//! The paper ("Get More for Less in Decentralized Learning Systems", ICDCS
//! 2023, §III-C) observes that without metadata compression the index list of
//! a sparsified model doubles the bytes on the wire. JWINS therefore encodes
//! the *difference array* of the sorted coefficient indices with [Elias
//! gamma](elias) codes — the same trick QSGD uses — and compresses the
//! coefficient values with a lossless floating-point codec (Fpzip in the
//! paper; a Gorilla-style XOR predictive coder [`float::XorFloatCodec`] here).
//!
//! # Modules
//!
//! - [`bitio`]: MSB-first bit writer/reader over byte buffers.
//! - [`elias`]: Elias gamma and Elias delta universal integer codes.
//! - [`varint`]: LEB128 variable-length integers (baseline comparator).
//! - [`delta`]: strictly-increasing index arrays ⇄ gamma-coded difference arrays.
//! - [`float`]: lossless float codecs (raw little-endian and XOR-predictive).
//! - [`quantize`]: QSGD-style stochastic uniform quantization (extension).
//! - [`lz`]: greedy LZ77 dictionary coder (the general-purpose comparator
//!   the paper evaluated before settling on Elias gamma).
//! - [`sparse`]: end-to-end sparse vector encoding with byte accounting.
//!
//! # Example
//!
//! ```
//! use jwins_codec::sparse::{SparseVecCodec, IndexCodec, ValueCodec};
//!
//! # fn main() -> Result<(), jwins_codec::CodecError> {
//! let codec = SparseVecCodec::new(IndexCodec::EliasGammaDelta, ValueCodec::Xor);
//! let indices = vec![3_u32, 17, 18, 400];
//! let values = vec![0.25_f32, -1.5, 3.0, 0.125];
//! let encoded = codec.encode(&indices, &values)?;
//! let (di, dv) = codec.decode(encoded.as_bytes())?;
//! assert_eq!(di, indices);
//! assert_eq!(dv, values);
//! assert!(encoded.metadata_bytes < indices.len() * 4);
//! # Ok(())
//! # }
//! ```

pub mod bitio;
pub mod delta;
pub mod elias;
pub mod float;
pub mod lz;
pub mod quantize;
pub mod sparse;
pub mod varint;

use std::error::Error;
use std::fmt;

/// Errors produced by the codecs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input stream ended before a complete value was decoded.
    UnexpectedEof,
    /// A value outside the encodable domain was supplied (e.g. Elias gamma of 0).
    InvalidValue(&'static str),
    /// The decoded stream is structurally inconsistent (e.g. non-increasing indices).
    Corrupt(&'static str),
    /// Encoded and declared lengths disagree.
    LengthMismatch {
        /// Length the stream header declared.
        expected: usize,
        /// Length actually present.
        actual: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of encoded stream"),
            CodecError::InvalidValue(what) => write!(f, "value not encodable: {what}"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for CodecError {}

/// Convenience alias for codec results.
pub type Result<T> = std::result::Result<T, CodecError>;
