//! End-to-end sparse-vector wire format with byte accounting.
//!
//! This is the message body JWINS puts on the wire: a sorted index array
//! (metadata) plus the corresponding coefficient values (payload). The codec
//! keeps the two byte counts separate because the paper reports them
//! separately (Figure 4 row 3 and Figure 9 chart metadata vs parameters).
//!
//! Wire layout:
//!
//! ```text
//! varint  count
//! varint  metadata_len_bytes
//! [metadata_len_bytes]  index block   (per IndexCodec)
//! [..]                  value block   (per ValueCodec)
//! ```

use crate::delta;
use crate::float::{FloatCodec, RawFloatCodec, XorFloatCodec};
use crate::varint;
use crate::{CodecError, Result};

/// How the sorted index array is serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexCodec {
    /// Raw little-endian `u32` per index (the "no compression" bar of Fig. 9).
    RawU32,
    /// LEB128 varint per index delta (byte-aligned middle ground).
    VarintDelta,
    /// Elias gamma over the delta array — JWINS's choice (paper §III-C).
    EliasGammaDelta,
}

impl IndexCodec {
    /// Stable name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            IndexCodec::RawU32 => "raw-u32",
            IndexCodec::VarintDelta => "varint-delta",
            IndexCodec::EliasGammaDelta => "elias-gamma-delta",
        }
    }

    fn encode(&self, indices: &[u32]) -> Result<Vec<u8>> {
        match self {
            IndexCodec::RawU32 => {
                let mut out = Vec::with_capacity(indices.len() * 4);
                for &i in indices {
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Ok(out)
            }
            IndexCodec::VarintDelta => {
                let mut out = Vec::with_capacity(indices.len());
                let mut prev = 0u32;
                for (k, &i) in indices.iter().enumerate() {
                    let d = if k == 0 {
                        u64::from(i)
                    } else {
                        if i <= prev {
                            return Err(CodecError::InvalidValue(
                                "indices must be strictly increasing",
                            ));
                        }
                        u64::from(i - prev)
                    };
                    varint::write_u64(&mut out, d);
                    prev = i;
                }
                Ok(out)
            }
            IndexCodec::EliasGammaDelta => delta::encode_gamma(indices),
        }
    }

    fn decode(&self, bytes: &[u8], count: usize) -> Result<Vec<u32>> {
        match self {
            IndexCodec::RawU32 => {
                if bytes.len() < count * 4 {
                    return Err(CodecError::UnexpectedEof);
                }
                Ok(bytes[..count * 4]
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect())
            }
            IndexCodec::VarintDelta => {
                let mut out = Vec::with_capacity(count);
                let mut cursor = 0usize;
                let mut prev = 0u64;
                for k in 0..count {
                    let (d, used) = varint::read_u64(&bytes[cursor..])?;
                    cursor += used;
                    let idx = if k == 0 { d } else { prev + d };
                    if idx > u64::from(u32::MAX) {
                        return Err(CodecError::Corrupt("index overflows u32"));
                    }
                    out.push(idx as u32);
                    prev = idx;
                }
                Ok(out)
            }
            IndexCodec::EliasGammaDelta => delta::decode_gamma(bytes, count),
        }
    }
}

/// How the coefficient values are serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValueCodec {
    /// Little-endian `f32`s.
    Raw,
    /// Gorilla-style XOR predictive lossless compression (Fpzip substitute).
    Xor,
}

impl ValueCodec {
    /// Stable name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ValueCodec::Raw => RawFloatCodec.name(),
            ValueCodec::Xor => XorFloatCodec.name(),
        }
    }

    fn as_codec(&self) -> &'static dyn FloatCodec {
        match self {
            ValueCodec::Raw => &RawFloatCodec,
            ValueCodec::Xor => &XorFloatCodec,
        }
    }
}

/// An encoded sparse vector together with its byte breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSparseVec {
    bytes: Vec<u8>,
    /// Bytes spent on the index block plus framing.
    pub metadata_bytes: usize,
    /// Bytes spent on the value block.
    pub payload_bytes: usize,
}

impl EncodedSparseVec {
    /// The full wire image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total length on the wire.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the message is empty (encodes zero entries and no framing).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes self, returning the wire bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Serializer/deserializer for `(indices, values)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseVecCodec {
    index_codec: IndexCodec,
    value_codec: ValueCodec,
}

impl Default for SparseVecCodec {
    /// JWINS's production configuration: Elias gamma metadata + XOR payload.
    fn default() -> Self {
        Self::new(IndexCodec::EliasGammaDelta, ValueCodec::Xor)
    }
}

impl SparseVecCodec {
    /// Creates a codec with explicit index/value strategies.
    pub fn new(index_codec: IndexCodec, value_codec: ValueCodec) -> Self {
        Self {
            index_codec,
            value_codec,
        }
    }

    /// The configured index strategy.
    pub fn index_codec(&self) -> IndexCodec {
        self.index_codec
    }

    /// The configured value strategy.
    pub fn value_codec(&self) -> ValueCodec {
        self.value_codec
    }

    /// Encodes a sparse vector. `indices` must be strictly increasing and the
    /// two slices must have equal length.
    ///
    /// # Errors
    ///
    /// - [`CodecError::LengthMismatch`] if the slices disagree in length.
    /// - [`CodecError::InvalidValue`] if indices are not strictly increasing.
    pub fn encode(&self, indices: &[u32], values: &[f32]) -> Result<EncodedSparseVec> {
        if indices.len() != values.len() {
            return Err(CodecError::LengthMismatch {
                expected: indices.len(),
                actual: values.len(),
            });
        }
        let index_block = self.index_codec.encode(indices)?;
        let value_block = self.value_codec.as_codec().encode(values);
        let mut bytes = Vec::with_capacity(10 + index_block.len() + value_block.len());
        varint::write_u64(&mut bytes, indices.len() as u64);
        varint::write_u64(&mut bytes, index_block.len() as u64);
        let framing = bytes.len();
        bytes.extend_from_slice(&index_block);
        bytes.extend_from_slice(&value_block);
        Ok(EncodedSparseVec {
            metadata_bytes: framing + index_block.len(),
            payload_bytes: value_block.len(),
            bytes,
        })
    }

    /// Decodes a buffer produced by [`Self::encode`].
    ///
    /// # Errors
    ///
    /// Fails on truncated or structurally invalid buffers.
    pub fn decode(&self, bytes: &[u8]) -> Result<(Vec<u32>, Vec<f32>)> {
        let (count, used1) = varint::read_u64(bytes)?;
        let (index_len, used2) = varint::read_u64(&bytes[used1..])?;
        // Wire-controlled count: every codec needs at least one bit per
        // index and one per value, so anything above 4 elements per byte is
        // structurally impossible — reject before allocating.
        if count > bytes.len() as u64 * 4 {
            return Err(CodecError::Corrupt(
                "declared count exceeds buffer capacity",
            ));
        }
        let count = count as usize;
        let index_len = index_len as usize;
        let header = used1 + used2;
        if bytes.len() < header + index_len || index_len > bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let indices = self
            .index_codec
            .decode(&bytes[header..header + index_len], count)?;
        let values = self
            .value_codec
            .as_codec()
            .decode(&bytes[header + index_len..], count)?;
        Ok((indices, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_codecs() -> Vec<SparseVecCodec> {
        let mut out = Vec::new();
        for ic in [
            IndexCodec::RawU32,
            IndexCodec::VarintDelta,
            IndexCodec::EliasGammaDelta,
        ] {
            for vc in [ValueCodec::Raw, ValueCodec::Xor] {
                out.push(SparseVecCodec::new(ic, vc));
            }
        }
        out
    }

    #[test]
    fn roundtrip_all_configs() {
        let indices = vec![0u32, 5, 6, 7, 1_000, 65_536];
        let values = vec![1.0f32, -2.5, 0.0, f32::MIN_POSITIVE, 3.5, -0.125];
        for codec in all_codecs() {
            let enc = codec.encode(&indices, &values).unwrap();
            assert_eq!(enc.len(), enc.metadata_bytes + enc.payload_bytes);
            let (di, dv) = codec.decode(enc.as_bytes()).unwrap();
            assert_eq!(di, indices, "{:?}", codec);
            assert_eq!(
                dv.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{:?}",
                codec
            );
        }
    }

    #[test]
    fn empty_vector_roundtrip() {
        for codec in all_codecs() {
            let enc = codec.encode(&[], &[]).unwrap();
            let (i, v) = codec.decode(enc.as_bytes()).unwrap();
            assert!(i.is_empty() && v.is_empty());
        }
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let codec = SparseVecCodec::default();
        assert!(matches!(
            codec.encode(&[1, 2], &[1.0]),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn gamma_metadata_beats_raw_by_large_factor() {
        // Mirrors Figure 9: dense TopK selection over a model-sized vector.
        let indices: Vec<u32> = (0..20_000u32).map(|i| i * 3).collect();
        let values = vec![0.5f32; indices.len()];
        let raw = SparseVecCodec::new(IndexCodec::RawU32, ValueCodec::Raw)
            .encode(&indices, &values)
            .unwrap();
        let gamma = SparseVecCodec::new(IndexCodec::EliasGammaDelta, ValueCodec::Raw)
            .encode(&indices, &values)
            .unwrap();
        let ratio = raw.metadata_bytes as f64 / gamma.metadata_bytes as f64;
        assert!(ratio > 6.0, "expected large compression, got {ratio:.1}x");
    }

    #[test]
    fn truncated_buffer_fails() {
        let codec = SparseVecCodec::default();
        let enc = codec.encode(&[1, 4, 9], &[1.0, 2.0, 3.0]).unwrap();
        for cut in 0..enc.len() {
            assert!(
                codec.decode(&enc.as_bytes()[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    proptest! {
        #[test]
        fn roundtrip_any(
            mut raw_idx in proptest::collection::vec(0u32..5_000_000, 0..150),
            seed in any::<u64>(),
        ) {
            raw_idx.sort_unstable();
            raw_idx.dedup();
            let mut s = seed | 1;
            let values: Vec<f32> = raw_idx.iter().map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                f32::from_bits((s as u32) & 0x7F7F_FFFF) // finite values
            }).collect();
            for codec in all_codecs() {
                let enc = codec.encode(&raw_idx, &values).unwrap();
                let (di, dv) = codec.decode(enc.as_bytes()).unwrap();
                prop_assert_eq!(&di, &raw_idx);
                for (a, b) in values.iter().zip(&dv) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
