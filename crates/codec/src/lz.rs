//! LZ77 general-purpose byte compressor (extension).
//!
//! The paper's background (§II-B) lists LZ4 and LZMA as the traditional
//! general-purpose alternatives to ML-specific compression, and §III-C notes
//! that the authors "conducted experiments using various general-purpose
//! compression algorithms" before settling on Elias gamma for the index
//! metadata. This module reproduces that comparison point: a greedy LZ77
//! coder with a hash-chain match finder, so the Figure-9 harness can pit a
//! dictionary coder against the entropy coders on the very same index
//! streams.
//!
//! The format is deliberately simple (varint-framed literal runs and
//! `(length, distance)` matches) — the goal is a representative dictionary
//! coder, not a drop-in LZ4 clone.
//!
//! # Example
//!
//! ```
//! use jwins_codec::lz::{compress, decompress};
//!
//! # fn main() -> Result<(), jwins_codec::CodecError> {
//! let data = b"abcabcabcabcabcabc".to_vec();
//! let packed = compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(decompress(&packed)?, data);
//! # Ok(())
//! # }
//! ```

use crate::varint;
use crate::{CodecError, Result};

/// Sliding-window size: matches may reference at most this many bytes back.
const WINDOW: usize = 1 << 15;
/// Minimum match length worth emitting (shorter matches cost more than
/// literals under varint framing).
const MIN_MATCH: usize = 4;
/// Maximum match length (keeps the copy loop bounded; plenty for our data).
const MAX_MATCH: usize = 1 << 12;
/// Hash-chain entries examined per position before giving up.
const MAX_CHAIN: usize = 32;
/// log2 of the hash-table size.
const HASH_BITS: u32 = 15;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain match finder: `head[h]` is the most recent position with hash
/// `h`; `prev[pos & mask]` links to the previous position with the same hash.
struct Matcher {
    head: Vec<i64>,
    prev: Vec<i64>,
}

impl Matcher {
    fn new() -> Self {
        Self {
            head: vec![-1; 1 << HASH_BITS],
            prev: vec![-1; WINDOW],
        }
    }

    fn insert(&mut self, data: &[u8], pos: usize) {
        if pos + MIN_MATCH > data.len() {
            return;
        }
        let h = hash4(&data[pos..]);
        self.prev[pos & (WINDOW - 1)] = self.head[h];
        self.head[h] = pos as i64;
    }

    /// Longest match for `data[pos..]` within the window, as
    /// `(length, distance)`.
    fn find(&self, data: &[u8], pos: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let limit = data.len().min(pos + MAX_MATCH);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = self.head[hash4(&data[pos..])];
        let min_pos = pos.saturating_sub(WINDOW) as i64;
        let mut chain = 0;
        while cand >= min_pos && chain < MAX_CHAIN {
            let c = cand as usize;
            debug_assert!(c < pos);
            // Cheap rejection: the byte just past the current best must match.
            if pos + best_len < limit && data[c + best_len] == data[pos + best_len] {
                let len = common_prefix(&data[c..], &data[pos..limit]);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - c;
                    if pos + len >= limit {
                        break;
                    }
                }
            }
            cand = self.prev[c & (WINDOW - 1)];
            chain += 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Compresses `data` with greedy LZ77.
///
/// The output starts with the varint-coded original length, followed by
/// tokens of the form `varint literal_len, [literals], varint match_len,
/// varint distance` where a `match_len` of zero terminates the stream (and
/// omits the distance).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    varint::write_u64(&mut out, data.len() as u64);
    let mut matcher = Matcher::new();
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    while pos < data.len() {
        match matcher.find(data, pos) {
            Some((len, dist)) => {
                emit_token(&mut out, &data[lit_start..pos], len, dist);
                // Index every position the match covers so later matches can
                // point into it.
                let end = pos + len;
                while pos < end {
                    matcher.insert(data, pos);
                    pos += 1;
                }
                lit_start = pos;
            }
            None => {
                matcher.insert(data, pos);
                pos += 1;
            }
        }
    }
    // Trailing literals and the end-of-stream token.
    emit_token(&mut out, &data[lit_start..], 0, 0);
    out
}

/// Reads one varint from the front of `cursor`, advancing it.
fn take_varint(cursor: &mut &[u8]) -> Result<u64> {
    let (value, used) = varint::read_u64(cursor)?;
    *cursor = &cursor[used..];
    Ok(value)
}

fn emit_token(out: &mut Vec<u8>, literals: &[u8], match_len: usize, dist: usize) {
    varint::write_u64(out, literals.len() as u64);
    out.extend_from_slice(literals);
    varint::write_u64(out, match_len as u64);
    if match_len > 0 {
        varint::write_u64(out, dist as u64);
    }
}

/// Decompresses a buffer produced by [`compress`].
///
/// # Errors
///
/// Fails on truncated streams, invalid distances, or when the decoded length
/// disagrees with the header.
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>> {
    let mut cursor = bytes;
    let expected = take_varint(&mut cursor)? as usize;
    // Cap the pre-allocation: `expected` is attacker-controlled on corrupt
    // streams, while actual growth is bounded by the in-loop length check.
    let mut out = Vec::with_capacity(expected.min(1 << 16));
    loop {
        let lit_len = take_varint(&mut cursor)? as usize;
        if lit_len > cursor.len() {
            return Err(CodecError::UnexpectedEof);
        }
        out.extend_from_slice(&cursor[..lit_len]);
        cursor = &cursor[lit_len..];
        let match_len = take_varint(&mut cursor)? as usize;
        if match_len == 0 {
            break;
        }
        let dist = take_varint(&mut cursor)? as usize;
        if dist == 0 || dist > out.len() {
            return Err(CodecError::Corrupt("match distance out of range"));
        }
        if match_len > MAX_MATCH {
            return Err(CodecError::Corrupt("match length out of range"));
        }
        // Byte-by-byte copy handles overlapping matches (run-length style).
        let start = out.len() - dist;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
        if out.len() > expected {
            return Err(CodecError::LengthMismatch {
                expected,
                actual: out.len(),
            });
        }
    }
    if out.len() != expected {
        return Err(CodecError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_roundtrip() {
        let packed = compress(&[]);
        assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_incompressible_roundtrip() {
        let data = vec![1u8, 2, 3];
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = b"the quick brown fox ".repeat(64).to_vec();
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 4,
            "{} of {} bytes",
            packed.len(),
            data.len()
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn run_length_overlapping_match() {
        // dist < len exercises the overlapping-copy path.
        let mut data = vec![7u8];
        data.extend(std::iter::repeat_n(7u8, 500));
        let packed = compress(&data);
        assert!(packed.len() < 32, "{} bytes", packed.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn random_data_expands_only_slightly() {
        // Deterministic pseudo-random bytes: no matches expected.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let packed = compress(&data);
        assert!(packed.len() <= data.len() + 64, "{} bytes", packed.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn delta_index_stream_compresses() {
        // The Figure-9 workload: the *difference array* of sorted indices
        // serialized as u32 — small repetitive values a dictionary coder
        // squeezes hard (deltas cluster around the mean gap).
        let mut bytes = Vec::new();
        for i in 0..2000u32 {
            let delta = 2 + (i % 3); // gaps 2, 3, 4 repeating
            bytes.extend_from_slice(&delta.to_le_bytes());
        }
        let packed = compress(&bytes);
        assert!(
            packed.len() < bytes.len() / 10,
            "{} of {} bytes",
            packed.len(),
            bytes.len()
        );
        assert_eq!(decompress(&packed).unwrap(), bytes);
    }

    #[test]
    fn truncated_stream_rejected() {
        let data: Vec<u8> = b"abcabcabcabc".to_vec();
        let packed = compress(&data);
        for cut in 1..packed.len() {
            // Every strict prefix must fail loudly, never panic.
            let _ = decompress(&packed[..cut]);
        }
        assert!(decompress(&packed[..packed.len() - 1]).is_err());
    }

    #[test]
    fn corrupt_distance_rejected() {
        // literal_len=0, match_len=4, distance=200 with empty output so far.
        let mut bad = Vec::new();
        varint::write_u64(&mut bad, 4); // claimed original length
        varint::write_u64(&mut bad, 0); // no literals
        varint::write_u64(&mut bad, 4); // match of 4
        varint::write_u64(&mut bad, 200); // impossible distance
        assert!(matches!(
            decompress(&bad),
            Err(CodecError::Corrupt(_)) | Err(CodecError::UnexpectedEof)
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let data = b"xyzxyzxyzxyz".to_vec();
        let mut packed = compress(&data);
        // Tamper with the declared length (first varint byte: 12 -> 11).
        assert_eq!(packed[0], 12);
        packed[0] = 11;
        assert!(matches!(
            decompress(&packed),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn window_boundary_matches() {
        // A repeat 40 KiB apart is outside the 32 KiB window: must still
        // round-trip (as literals), just without compression for that span.
        let mut data = vec![0u8; 40 << 10];
        let motif = b"0123456789abcdef";
        data[..16].copy_from_slice(motif);
        let n = data.len();
        data[n - 16..].copy_from_slice(motif);
        assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }

        #[test]
        fn roundtrip_low_entropy(
            runs in proptest::collection::vec((any::<u8>(), 1usize..64), 1..100),
        ) {
            let data: Vec<u8> = runs
                .into_iter()
                .flat_map(|(b, n)| std::iter::repeat_n(b, n))
                .collect();
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).unwrap(), data);
        }

        #[test]
        fn decompress_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..500)) {
            let _ = decompress(&bytes);
        }
    }
}
