//! LEB128 variable-length integers.
//!
//! Used for small headers inside [`crate::sparse`] messages and as the
//! byte-aligned comparator in the metadata-compression ablation (the paper's
//! Figure 9 compares raw 32-bit indices against Elias gamma; varints sit in
//! between the two).

use crate::{CodecError, Result};

/// Appends the LEB128 encoding of `value` to `out` and returns the number of
/// bytes written (1–10).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        written += 1;
        if value == 0 {
            out.push(byte);
            return written;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 integer from the front of `data`, returning the value
/// and the number of bytes consumed.
///
/// # Errors
///
/// - [`CodecError::UnexpectedEof`] if the continuation bit runs off the end.
/// - [`CodecError::Corrupt`] if the encoding exceeds 10 bytes (not canonical
///   for `u64`).
pub fn read_u64(data: &[u8]) -> Result<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        if i == 10 {
            return Err(CodecError::Corrupt("varint longer than 10 bytes"));
        }
        let payload = u64::from(byte & 0x7F);
        if shift == 63 && payload > 1 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::UnexpectedEof)
}

/// Number of bytes `write_u64` would use for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        let mut out = Vec::new();
        write_u64(&mut out, 0);
        write_u64(&mut out, 127);
        write_u64(&mut out, 128);
        write_u64(&mut out, 300);
        assert_eq!(out, vec![0x00, 0x7F, 0x80, 0x01, 0xAC, 0x02]);
    }

    #[test]
    fn roundtrip_boundaries() {
        let values: Vec<u64> = (0..64)
            .flat_map(|p| [1u64 << p, (1u64 << p) - 1, (1u64 << p) + 1])
            .chain([0, u64::MAX])
            .collect();
        for &v in &values {
            let mut out = Vec::new();
            let n = write_u64(&mut out, v);
            assert_eq!(n, out.len());
            assert_eq!(n, encoded_len(v), "encoded_len of {v}");
            let (decoded, consumed) = read_u64(&out).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(consumed, n);
        }
    }

    #[test]
    fn eof_and_overlong_are_rejected() {
        assert_eq!(read_u64(&[0x80, 0x80]), Err(CodecError::UnexpectedEof));
        let overlong = [0x80u8; 11];
        assert!(matches!(read_u64(&overlong), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let data = [0x05, 0xFF, 0xFF];
        let (v, n) = read_u64(&data).unwrap();
        assert_eq!((v, n), (5, 1));
    }
}
