//! Lossless floating-point codecs for model parameters.
//!
//! The paper compresses every parameter payload with Fpzip, a lossless
//! predictive floating-point coder. Fpzip is a GPL C library, so this crate
//! substitutes a Gorilla-style XOR predictive coder ([`XorFloatCodec`]): each
//! value is XORed with its predecessor and the resulting leading/trailing
//! zero structure is entropy-coded. Like Fpzip, it is lossless, predictive,
//! and achieves its gains from the smoothness of neighbouring values — model
//! parameters serialized in layer order exhibit exactly that locality.
//! [`RawFloatCodec`] (little-endian `f32`s) is the uncompressed baseline.

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, Result};

/// A lossless encoder/decoder for `f32` slices.
///
/// This trait is sealed in spirit: the two implementations in this crate
/// cover the evaluation, but downstream users may implement it to plug other
/// coders (e.g. a real Fpzip FFI) into [`crate::sparse::SparseVecCodec`].
pub trait FloatCodec: std::fmt::Debug + Send + Sync {
    /// Encodes `values` into a fresh byte buffer.
    fn encode(&self, values: &[f32]) -> Vec<u8>;

    /// Decodes exactly `count` floats from `bytes`.
    ///
    /// # Errors
    ///
    /// Implementations fail with [`CodecError::UnexpectedEof`] on truncated
    /// input.
    fn decode(&self, bytes: &[u8], count: usize) -> Result<Vec<f32>>;

    /// Short stable name for logs and experiment output.
    fn name(&self) -> &'static str;
}

/// Uncompressed little-endian `f32` serialization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RawFloatCodec;

impl FloatCodec for RawFloatCodec {
    fn encode(&self, values: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 4);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode(&self, bytes: &[u8], count: usize) -> Result<Vec<f32>> {
        if bytes.len() < count * 4 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(bytes[..count * 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn name(&self) -> &'static str {
        "raw-f32"
    }
}

/// Gorilla-style XOR predictive lossless float compression.
///
/// Per value `v[i]`, computes `x = bits(v[i]) ^ bits(v[i-1])` and writes:
///
/// - `0` if `x == 0` (repeated value);
/// - `10` + reuse of the previous leading-zero/length window if `x` fits it;
/// - `11` + 5-bit leading-zero count + 5-bit (length−1) + the significant bits.
///
/// The first value is stored verbatim (32 bits). Lossless for every bit
/// pattern including NaNs, infinities and signed zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorFloatCodec;

impl XorFloatCodec {
    const MAX_LEADING: u32 = 31;
}

impl FloatCodec for XorFloatCodec {
    fn encode(&self, values: &[f32]) -> Vec<u8> {
        let mut w = BitWriter::with_capacity_bits(values.len() * 16);
        let mut prev: u32 = 0;
        // Window carried over from the last `11` control block.
        let mut win_lead: u32 = u32::MAX;
        let mut win_len: u32 = 0;
        for (i, v) in values.iter().enumerate() {
            let bits = v.to_bits();
            if i == 0 {
                w.write_bits(u64::from(bits), 32);
                prev = bits;
                continue;
            }
            let x = bits ^ prev;
            prev = bits;
            if x == 0 {
                w.write_bit(false);
                continue;
            }
            let lead = x.leading_zeros().min(Self::MAX_LEADING);
            let trail = x.trailing_zeros();
            let len = 32 - lead - trail;
            let fits_window =
                win_lead != u32::MAX && lead >= win_lead && lead + len <= win_lead + win_len;
            w.write_bit(true);
            if fits_window {
                w.write_bit(false);
                let shifted = x >> (32 - win_lead - win_len);
                w.write_bits(u64::from(shifted), win_len);
            } else {
                w.write_bit(true);
                w.write_bits(u64::from(lead), 5);
                w.write_bits(u64::from(len - 1), 5);
                w.write_bits(u64::from(x >> trail), len);
                win_lead = lead;
                win_len = len;
            }
        }
        w.into_bytes()
    }

    fn decode(&self, bytes: &[u8], count: usize) -> Result<Vec<f32>> {
        let mut r = BitReader::new(bytes);
        // `count` may be wire-influenced; growth is bounded by the
        // stream length, so cap only the eager pre-allocation.
        let mut out = Vec::with_capacity(count.min(1 << 20));
        let mut prev: u32 = 0;
        let mut win_lead: u32 = u32::MAX;
        let mut win_len: u32 = 0;
        for i in 0..count {
            if i == 0 {
                prev = r.read_bits(32)? as u32;
                out.push(f32::from_bits(prev));
                continue;
            }
            if !r.read_bit()? {
                out.push(f32::from_bits(prev));
                continue;
            }
            let x = if !r.read_bit()? {
                if win_lead == u32::MAX {
                    return Err(CodecError::Corrupt("window reuse before any window"));
                }
                (r.read_bits(win_len)? as u32) << (32 - win_lead - win_len)
            } else {
                let lead = r.read_bits(5)? as u32;
                let len = r.read_bits(5)? as u32 + 1;
                if lead + len > 32 {
                    return Err(CodecError::Corrupt("xor window exceeds 32 bits"));
                }
                win_lead = lead;
                win_len = len;
                (r.read_bits(len)? as u32) << (32 - lead - len)
            };
            prev ^= x;
            out.push(f32::from_bits(prev));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "xor-predictive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(codec: &dyn FloatCodec, values: &[f32]) {
        let bytes = codec.encode(values);
        let decoded = codec.decode(&bytes, values.len()).unwrap();
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "{} lost bits", codec.name());
        }
    }

    #[test]
    fn raw_roundtrip() {
        roundtrip(
            &RawFloatCodec,
            &[0.0, -0.0, 1.5, f32::NAN, f32::INFINITY, f32::MIN_POSITIVE],
        );
    }

    #[test]
    fn xor_roundtrip_specials() {
        roundtrip(
            &XorFloatCodec,
            &[
                0.0,
                -0.0,
                1.5,
                1.5,
                1.5000001,
                f32::NAN,
                f32::NEG_INFINITY,
                f32::MAX,
                f32::MIN_POSITIVE,
                -1e-38,
            ],
        );
    }

    #[test]
    fn empty_and_single() {
        for codec in [&RawFloatCodec as &dyn FloatCodec, &XorFloatCodec] {
            roundtrip(codec, &[]);
            roundtrip(codec, &[42.0]);
        }
    }

    #[test]
    fn xor_compresses_smooth_sequences() {
        // Constant sequence: one bit per repeat after the first value.
        let values = vec![3.25f32; 1000];
        let bytes = XorFloatCodec.encode(&values);
        assert!(bytes.len() < 150, "constant run took {} bytes", bytes.len());
        // Raw is 4000 bytes.
        assert!(bytes.len() * 8 < RawFloatCodec.encode(&values).len());
    }

    #[test]
    fn raw_truncation_detected() {
        let bytes = RawFloatCodec.encode(&[1.0, 2.0]);
        assert_eq!(
            RawFloatCodec.decode(&bytes[..7], 2),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn xor_truncation_detected() {
        let values = vec![1.0f32, 2.0, 3.0, 4.0];
        let bytes = XorFloatCodec.encode(&values);
        assert!(XorFloatCodec.decode(&bytes[..2], 4).is_err());
    }

    proptest! {
        #[test]
        fn xor_roundtrip_any(values in proptest::collection::vec(any::<f32>(), 0..200)) {
            let bytes = XorFloatCodec.encode(&values);
            let decoded = XorFloatCodec.decode(&bytes, values.len()).unwrap();
            for (a, b) in values.iter().zip(&decoded) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn raw_roundtrip_any(values in proptest::collection::vec(any::<f32>(), 0..200)) {
            let bytes = RawFloatCodec.encode(&values);
            let decoded = RawFloatCodec.decode(&bytes, values.len()).unwrap();
            for (a, b) in values.iter().zip(&decoded) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
