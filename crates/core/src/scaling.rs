//! Per-layer adaptive importance scaling (extension).
//!
//! The paper's conclusion proposes exactly this: "An adaptive version of the
//! importance score based on the parameter type (CNN, RNN, FC) may be
//! explored in depth" (§VI). A [`ScoreScaling`] multiplies the per-round
//! model change by a per-segment factor *before* it enters JWINS's
//! accumulated importance scores, where a segment is a contiguous range of
//! the flat parameter vector — in practice one model layer (see
//! `Sequential::layer_param_sizes` in `jwins-nn`).
//!
//! Why this matters: magnitude-ranked selection is biased toward large
//! layers (a conv bank with 10⁵ weights offers far more top-K candidates
//! than a 10² GroupNorm), so small-but-critical layers can starve under
//! tight budgets. [`ScoreScaling::inverse_size`] counteracts that by giving
//! every layer the same *total* score mass; [`ScoreScaling::uniform`] is the
//! identity (JWINS's default behaviour). The `ext_adaptive` bench ablates
//! the two.

use crate::{JwinsError, Result};

/// A per-segment multiplicative scaling of importance scores over the flat
/// parameter vector.
///
/// # Example
///
/// ```
/// use jwins::scaling::ScoreScaling;
/// use jwins::strategies::JwinsConfig;
///
/// # fn main() -> jwins::Result<()> {
/// // A conv bank of 1752 parameters next to a 40-parameter norm layer:
/// // give both layers the same total score mass so the norm layer is not
/// // starved by magnitude-ranked TopK.
/// let scaling = ScoreScaling::inverse_size(&[1752, 40])?;
/// let config = JwinsConfig::with_score_scaling(scaling);
/// assert!(config.score_scaling.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreScaling {
    /// `(segment_len, factor)` in flat-vector order; lengths sum to the
    /// model dimension.
    segments: Vec<(usize, f32)>,
}

impl ScoreScaling {
    /// Builds a scaling from `(segment_len, factor)` pairs in flat-vector
    /// order.
    ///
    /// # Errors
    ///
    /// Rejects empty segment lists, zero-length segments, and non-positive
    /// or non-finite factors.
    pub fn new(segments: Vec<(usize, f32)>) -> Result<Self> {
        if segments.is_empty() {
            return Err(JwinsError::InvalidConfig(
                "score scaling needs at least one segment".into(),
            ));
        }
        for &(len, factor) in &segments {
            if len == 0 {
                return Err(JwinsError::InvalidConfig(
                    "score scaling segments must be non-empty".into(),
                ));
            }
            if !(factor > 0.0 && factor.is_finite()) {
                return Err(JwinsError::InvalidConfig(format!(
                    "score scaling factor {factor} must be positive and finite"
                )));
            }
        }
        Ok(Self { segments })
    }

    /// The identity scaling for a `dim`-parameter model (factor 1
    /// everywhere) — JWINS's default ranking.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn uniform(dim: usize) -> Self {
        assert!(dim > 0, "model dimension must be positive");
        Self {
            segments: vec![(dim, 1.0)],
        }
    }

    /// Inverse-size scaling over per-layer parameter counts: layer `l` gets
    /// factor `(d / L) / size_l` (normalized so a uniform layout yields all
    /// ones), giving every layer equal total score mass. Zero-size entries
    /// (parameter-free layers) are skipped.
    ///
    /// # Errors
    ///
    /// Rejects layouts whose parameterized layers are all empty.
    pub fn inverse_size(layer_sizes: &[usize]) -> Result<Self> {
        let sizes: Vec<usize> = layer_sizes.iter().copied().filter(|&s| s > 0).collect();
        if sizes.is_empty() {
            return Err(JwinsError::InvalidConfig(
                "inverse-size scaling needs at least one parameterized layer".into(),
            ));
        }
        let d: usize = sizes.iter().sum();
        let l = sizes.len();
        let segments = sizes
            .into_iter()
            .map(|size| (size, (d as f64 / l as f64 / size as f64) as f32))
            .collect();
        Self::new(segments)
    }

    /// Total length covered by the segments (must equal the model
    /// dimension).
    pub fn dim(&self) -> usize {
        self.segments.iter().map(|(len, _)| len).sum()
    }

    /// The `(segment_len, factor)` pairs.
    pub fn segments(&self) -> &[(usize, f32)] {
        &self.segments
    }

    /// Checks this scaling covers exactly `dim` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`JwinsError::InvalidConfig`] on a mismatch.
    pub fn validate_dim(&self, dim: usize) -> Result<()> {
        if self.dim() != dim {
            return Err(JwinsError::InvalidConfig(format!(
                "score scaling covers {} parameters but the model has {dim}",
                self.dim()
            )));
        }
        Ok(())
    }

    /// Multiplies `delta` in place by the per-segment factors.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `delta.len()` disagrees with [`Self::dim`]; callers
    /// validate at `init` time via [`Self::validate_dim`].
    pub fn apply(&self, delta: &mut [f32]) {
        debug_assert_eq!(delta.len(), self.dim(), "scaling/model dim mismatch");
        let total = delta.len();
        let mut offset = 0usize;
        for &(len, factor) in &self.segments {
            let end = (offset + len).min(total);
            if factor != 1.0 {
                for v in &mut delta[offset..end] {
                    *v *= factor;
                }
            }
            offset = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_identity() {
        let s = ScoreScaling::uniform(5);
        let mut v = vec![1.0f32, -2.0, 3.0, -4.0, 5.0];
        let orig = v.clone();
        s.apply(&mut v);
        assert_eq!(v, orig);
        assert_eq!(s.dim(), 5);
    }

    #[test]
    fn segments_scale_their_ranges_only() {
        let s = ScoreScaling::new(vec![(2, 2.0), (3, 0.5)]).unwrap();
        let mut v = vec![1.0f32; 5];
        s.apply(&mut v);
        assert_eq!(v, vec![2.0, 2.0, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn inverse_size_equalizes_total_mass() {
        // Layers of 8 and 2 params: factors (10/2)/8 = 0.625 and (10/2)/2 = 2.5.
        let s = ScoreScaling::inverse_size(&[8, 0, 2]).unwrap();
        assert_eq!(s.dim(), 10);
        let mut v = vec![1.0f32; 10];
        s.apply(&mut v);
        let mass_a: f32 = v[..8].iter().sum();
        let mass_b: f32 = v[8..].iter().sum();
        assert!((mass_a - mass_b).abs() < 1e-5, "{mass_a} vs {mass_b}");
    }

    #[test]
    fn inverse_size_uniform_layout_is_identity() {
        let s = ScoreScaling::inverse_size(&[4, 4, 4]).unwrap();
        for &(_, f) in s.segments() {
            assert!((f - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ScoreScaling::new(vec![]).is_err());
        assert!(ScoreScaling::new(vec![(0, 1.0)]).is_err());
        assert!(ScoreScaling::new(vec![(3, 0.0)]).is_err());
        assert!(ScoreScaling::new(vec![(3, f32::NAN)]).is_err());
        assert!(ScoreScaling::new(vec![(3, -1.0)]).is_err());
        assert!(ScoreScaling::inverse_size(&[0, 0]).is_err());
    }

    #[test]
    fn validate_dim_catches_mismatch() {
        let s = ScoreScaling::new(vec![(4, 1.0)]).unwrap();
        assert!(s.validate_dim(4).is_ok());
        assert!(s.validate_dim(5).is_err());
    }
}
