//! Renormalized partial averaging of sparse vectors.
//!
//! When neighbours send only subsets of coefficients, a coefficient `k` can
//! be averaged only over the parties that actually provided it. JWINS (like
//! decentralizepy's partial-sharing models) renormalizes the Metropolis–
//! Hastings weights over those parties:
//!
//! ```text
//! x̄[k] = (w_ii·own[k] + Σ_{j sent k} w_ij·z_j[k]) / (w_ii + Σ_{j sent k} w_ij)
//! ```
//!
//! With everyone sending everything this reduces to the standard D-PSGD
//! weighted average, so full-sharing is the exact special case (verified in
//! the tests).

/// Accumulates sparse contributions into a weighted average over `own`.
#[derive(Debug)]
pub struct PartialAverager {
    num: Vec<f64>,
    den: Vec<f64>,
}

impl PartialAverager {
    /// Starts an average seeded with the node's own dense vector and its
    /// self-weight.
    ///
    /// # Panics
    ///
    /// Panics if `self_weight` is not positive — a node always keeps a share
    /// of its own model under Metropolis–Hastings weights.
    pub fn new(own: &[f32], self_weight: f64) -> Self {
        assert!(self_weight > 0.0, "self weight must be positive");
        Self {
            num: own.iter().map(|&v| f64::from(v) * self_weight).collect(),
            den: vec![self_weight; own.len()],
        }
    }

    /// Dimension of the average.
    pub fn len(&self) -> usize {
        self.num.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.num.is_empty()
    }

    /// Adds a neighbour's sparse contribution with mixing weight `weight`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or slices mismatch in length.
    pub fn add_sparse(&mut self, indices: &[u32], values: &[f32], weight: f64) {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for (&i, &v) in indices.iter().zip(values) {
            let i = i as usize;
            self.num[i] += f64::from(v) * weight;
            self.den[i] += weight;
        }
    }

    /// Adds a neighbour's dense contribution (full sharing).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn add_dense(&mut self, values: &[f32], weight: f64) {
        assert_eq!(values.len(), self.num.len(), "length mismatch");
        for (k, &v) in values.iter().enumerate() {
            self.num[k] += f64::from(v) * weight;
            self.den[k] += weight;
        }
    }

    /// Finishes the average.
    pub fn finish(self) -> Vec<f32> {
        self.num
            .iter()
            .zip(&self.den)
            .map(|(n, d)| (n / d) as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduces_to_weighted_average_when_dense() {
        let own = [1.0f32, 2.0];
        let mut avg = PartialAverager::new(&own, 0.5);
        avg.add_dense(&[3.0, 4.0], 0.25);
        avg.add_dense(&[5.0, 8.0], 0.25);
        let out = avg.finish();
        assert!((out[0] - (0.5 + 0.75 + 1.25)).abs() < 1e-6);
        assert!((out[1] - (1.0 + 1.0 + 2.0)).abs() < 1e-6);
    }

    #[test]
    fn untouched_coordinates_keep_own_value() {
        let own = [1.0f32, 2.0, 3.0];
        let mut avg = PartialAverager::new(&own, 0.2);
        avg.add_sparse(&[1], &[10.0], 0.8);
        let out = avg.finish();
        assert_eq!(out[0], 1.0);
        assert!((out[1] - (0.2 * 2.0 + 0.8 * 10.0)).abs() < 1e-6);
        assert_eq!(out[2], 3.0);
    }

    #[test]
    fn renormalization_weights_only_present_parties() {
        // Two neighbours, one sends coordinate 0, both send coordinate 1.
        let own = [0.0f32, 0.0];
        let mut avg = PartialAverager::new(&own, 0.5);
        avg.add_sparse(&[0, 1], &[4.0, 4.0], 0.25);
        avg.add_sparse(&[1], &[8.0], 0.25);
        let out = avg.finish();
        // coord 0: (0·.5 + 4·.25) / (0.75) = 4/3
        assert!((out[0] - 4.0 / 3.0).abs() < 1e-6, "{}", out[0]);
        // coord 1: (0·.5 + 4·.25 + 8·.25) / 1.0 = 3
        assert!((out[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "self weight must be positive")]
    fn zero_self_weight_rejected() {
        let _ = PartialAverager::new(&[1.0], 0.0);
    }

    proptest! {
        /// Consensus safety: the average always lies inside the convex hull
        /// of the contributed values, coordinate-wise.
        #[test]
        fn average_stays_in_hull(
            pairs in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 1..20),
        ) {
            let (own, theirs): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
            let mut avg = PartialAverager::new(&own, 0.5);
            avg.add_dense(&theirs, 0.5);
            let out = avg.finish();
            for ((o, t), r) in own.iter().zip(&theirs).zip(&out) {
                let lo = o.min(*t) - 1e-4;
                let hi = o.max(*t) + 1e-4;
                prop_assert!(*r >= lo && *r <= hi);
            }
        }
    }
}
