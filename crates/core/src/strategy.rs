//! The communicate–aggregate interface.
//!
//! JWINS "concerns only the communication stage in DL, and it is independent
//! of the specific aggregation algorithm" (paper §II-A). The engine reflects
//! that separation: after τ local SGD steps it asks the node's
//! [`ShareStrategy`] to produce one broadcast message, delivers messages
//! along the topology, and asks the strategy to fold the received messages
//! into the next round's parameters. Everything an algorithm needs to
//! remember between rounds (accumulated scores, CHOCO's replicas, RNG
//! streams) lives inside its strategy instance — one per node.

use crate::Result;
use bytes::Bytes;
use jwins_net::ByteBreakdown;

/// A serialized broadcast message plus its byte composition.
#[derive(Debug, Clone)]
pub struct OutMessage {
    /// The wire image sent to every neighbour.
    pub bytes: Bytes,
    /// Payload vs metadata accounting (must cover every byte).
    pub breakdown: ByteBreakdown,
}

impl OutMessage {
    /// Wraps a buffer with its breakdown.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the breakdown does not cover the buffer exactly.
    pub fn new(bytes: Vec<u8>, breakdown: ByteBreakdown) -> Self {
        debug_assert_eq!(
            breakdown.total(),
            bytes.len(),
            "breakdown must cover buffer"
        );
        Self {
            bytes: Bytes::from(bytes),
            breakdown,
        }
    }
}

/// What a node sends in one round: either one broadcast for all neighbours
/// (JWINS and the paper's baselines) or one message per neighbour
/// (edge-based algorithms like PowerGossip, or random-model-walk's single
/// random target).
#[derive(Debug, Clone)]
pub enum Outbound {
    /// The same message goes to every neighbour.
    Broadcast(OutMessage),
    /// `messages[k]` goes to `neighbors[k]`; `None` sends nothing on that
    /// edge. Must be as long as the neighbour list it was built from.
    PerEdge(Vec<Option<OutMessage>>),
}

/// A message received from a neighbour, annotated with the mixing weight of
/// the edge it arrived on.
#[derive(Debug, Clone, Copy)]
pub struct ReceivedMessage<'a> {
    /// Sender node id.
    pub from: usize,
    /// Metropolis–Hastings weight `w_ij` of the edge for this round.
    pub weight: f64,
    /// Serialized message body.
    pub bytes: &'a [u8],
}

/// Per-node communication algorithm: produces one broadcast per round and
/// folds in the neighbours' broadcasts.
///
/// Protocol per round `t`: `make_message(t, params)` exactly once, then
/// `aggregate(t, params, …)` exactly once. `init` is called once before
/// round 0 with the (cluster-identical) initial parameters.
pub trait ShareStrategy: Send {
    /// Stable name for logs and experiment output.
    fn name(&self) -> &'static str;

    /// Observes the initial parameter vector (dimension, starting point).
    fn init(&mut self, params: &[f32]) {
        let _ = params;
    }

    /// Builds this round's broadcast from the post-local-training parameters.
    ///
    /// # Errors
    ///
    /// Implementations fail on internal protocol violations.
    fn make_message(&mut self, round: usize, params: &[f32]) -> Result<OutMessage>;

    /// Builds this round's outbound traffic given the neighbour list the
    /// engine will deliver to. The default delegates to [`make_message`] and
    /// broadcasts; edge-based strategies (PowerGossip, random model walk)
    /// override this instead.
    ///
    /// `neighbors` is sorted and contains only neighbours that will actually
    /// receive (inactive nodes are already filtered out under churn).
    ///
    /// # Errors
    ///
    /// Implementations fail on internal protocol violations.
    ///
    /// [`make_message`]: Self::make_message
    fn make_outbound(
        &mut self,
        round: usize,
        params: &[f32],
        neighbors: &[usize],
    ) -> Result<Outbound> {
        let _ = neighbors;
        Ok(Outbound::Broadcast(self.make_message(round, params)?))
    }

    /// Combines own parameters with the received messages, returning the
    /// parameters that start the next round.
    ///
    /// `self_weight` is `w_ii` for this round's topology.
    ///
    /// # Errors
    ///
    /// Fails on undecodable messages or protocol violations.
    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>>;

    /// The sharing fraction used in the most recent `make_message`, in
    /// `[0, 1]` (1.0 for full sharing). Drives the Figure-3 plot.
    fn last_alpha(&self) -> f64 {
        1.0
    }

    /// Whether this strategy's aggregation is sound when messages from
    /// *other rounds* are mixed in (event-driven asynchronous gossip with
    /// real heterogeneity delivers such messages). Self-describing broadcast
    /// strategies tolerate this; strategies whose per-edge state assumes
    /// round-aligned lockstep exchanges (e.g. PowerGossip's warm-started
    /// low-rank handshake) must return `false`, and the event-driven engine
    /// will refuse to run them under a non-degenerate heterogeneity profile
    /// instead of silently corrupting their state.
    fn tolerates_stale_messages(&self) -> bool {
        true
    }

    /// Bytes of per-node algorithm state held between rounds (beyond the
    /// model itself). Backs the paper's memory-efficiency claim (§V):
    /// JWINS keeps one accumulation vector, while CHOCO-style error feedback
    /// keeps model replicas.
    fn state_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_message_wraps_bytes() {
        let m = OutMessage::new(
            vec![1, 2, 3],
            ByteBreakdown {
                payload: 2,
                metadata: 1,
            },
        );
        assert_eq!(&m.bytes[..], &[1, 2, 3]);
        assert_eq!(m.breakdown.total(), 3);
    }

    // The check is a debug_assert, so there is nothing to panic in release
    // builds — where the determinism CI job runs this suite.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "breakdown must cover buffer")]
    fn mismatched_breakdown_panics_in_debug() {
        let _ = OutMessage::new(
            vec![1, 2, 3],
            ByteBreakdown {
                payload: 1,
                metadata: 1,
            },
        );
    }
}
