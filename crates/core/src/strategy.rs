//! The communicate–aggregate interface.
//!
//! JWINS "concerns only the communication stage in DL, and it is independent
//! of the specific aggregation algorithm" (paper §II-A). The engine reflects
//! that separation: after τ local SGD steps it asks the node's
//! [`ShareStrategy`] to produce one broadcast message, delivers messages
//! along the topology, and asks the strategy to fold the received messages
//! into the next round's parameters. Everything an algorithm needs to
//! remember between rounds (accumulated scores, CHOCO's replicas, RNG
//! streams) lives inside its strategy instance — one per node.

use crate::Result;
use bytes::Bytes;
use jwins_net::ByteBreakdown;

/// A serialized broadcast message plus its byte composition.
#[derive(Debug, Clone)]
pub struct OutMessage {
    /// The wire image sent to every neighbour.
    pub bytes: Bytes,
    /// Payload vs metadata accounting (must cover every byte).
    pub breakdown: ByteBreakdown,
}

impl OutMessage {
    /// Wraps a buffer with its breakdown.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the breakdown does not cover the buffer exactly.
    pub fn new(bytes: Vec<u8>, breakdown: ByteBreakdown) -> Self {
        debug_assert_eq!(
            breakdown.total(),
            bytes.len(),
            "breakdown must cover buffer"
        );
        Self {
            bytes: Bytes::from(bytes),
            breakdown,
        }
    }
}

/// What a node sends in one round: either one broadcast for all neighbours
/// (JWINS and the paper's baselines) or one message per neighbour
/// (edge-based algorithms like PowerGossip, or random-model-walk's single
/// random target).
#[derive(Debug, Clone)]
pub enum Outbound {
    /// The same message goes to every neighbour.
    Broadcast(OutMessage),
    /// `messages[k]` goes to `neighbors[k]`; `None` sends nothing on that
    /// edge. Must be as long as the neighbour list it was built from.
    PerEdge(Vec<Option<OutMessage>>),
}

/// A message received from a neighbour, annotated with the mixing weight of
/// the edge it arrived on.
#[derive(Debug, Clone, Copy)]
pub struct ReceivedMessage<'a> {
    /// Sender node id.
    pub from: usize,
    /// The sender's local round when the message was built (the engine
    /// forwards the envelope's round stamp). Under bulk-synchronous
    /// execution this always equals the aggregation round; under
    /// event-driven asynchronous gossip it may lag behind it (a stale
    /// message) or run ahead of it (a fast neighbour's early message).
    /// Strategies with per-round handshake state key on it — see the
    /// edge-state versioning contract on [`ShareStrategy`].
    pub round: usize,
    /// Metropolis–Hastings weight `w_ij` of the edge for this round, with
    /// any staleness down-weighting already applied — broadcast averaging
    /// strategies mix with this.
    pub weight: f64,
    /// The same `w_ij` *before* staleness down-weighting (equal to
    /// [`weight`] unless a decay policy touched the message). Strategies
    /// whose update must apply with the *same* magnitude on both endpoints
    /// (PowerGossip's antisymmetric pairwise update) use this: a one-sided
    /// decay factor would break the cancellation across the pair and bias
    /// the parameter mean, invisibly to any state-consistency check.
    ///
    /// [`weight`]: Self::weight
    pub edge_weight: f64,
    /// Serialized message body.
    pub bytes: &'a [u8],
}

/// Pair-vs-fresh-fallback telemetry of an edge-stateful strategy since its
/// last report (see [`ShareStrategy::pairing_stats`]). Counters are
/// write-only with respect to the algorithm — no strategy decision may read
/// them — so draining (or not draining) them can never change a result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairingStats {
    /// Successfully paired exchanges (warm start preserved).
    pub paired: u64,
    /// Fallbacks to the deterministic fresh edge state (divergence, desync,
    /// overfull stash, engine-requested forget).
    pub fresh_resets: u64,
    /// Pre-advance leftovers ignored without a reset.
    pub ignored: u64,
}

impl PairingStats {
    /// Whether any counter is non-zero (empty reports are not emitted).
    pub fn any(&self) -> bool {
        self.paired != 0 || self.fresh_resets != 0 || self.ignored != 0
    }
}

/// Per-node communication algorithm: produces one broadcast per round and
/// folds in the neighbours' broadcasts.
///
/// Protocol per round `t`: `make_message(t, params)` exactly once, then
/// `aggregate(t, params, …)` exactly once. `init` is called once before
/// round 0 with the (cluster-identical) initial parameters.
///
/// # Edge-state versioning contract (asynchronous delivery)
///
/// Under event-driven asynchronous gossip the engine delivers whatever has
/// *arrived* by a node's local clock, so `aggregate(t, …)` may receive
/// messages whose [`ReceivedMessage::round`] differs from `t`, and one
/// direction of an edge's exchange may be delayed, expired or lost while
/// the other is delivered. A strategy that keeps *per-edge* state warm
/// across rounds (PowerGossip's `P̂`/`Q̂` factors) must therefore version
/// its per-edge handshakes instead of assuming round-aligned lockstep:
///
/// - every outbound edge message carries the version of the edge state it
///   was computed from, and pairs on receipt only with the matching
///   version's own half of the handshake (kept in a bounded round-keyed
///   history);
/// - a mismatched, expired or missing half-handshake must *fall back* to a
///   deterministic fresh edge state (both endpoints can re-derive it from
///   the shared seed) rather than corrupt the warm start — after at most a
///   few exchanges both endpoints converge back to the fresh planes and
///   re-pair;
/// - [`forget_edge`] drops an edge's state entirely when the engine learns
///   the edge is gone (permanent crash, topology repair).
///
/// Stateless broadcast strategies satisfy the contract trivially (they
/// renormalize per received message) and need override nothing.
///
/// [`forget_edge`]: Self::forget_edge
pub trait ShareStrategy: Send {
    /// Stable name for logs and experiment output.
    fn name(&self) -> &'static str;

    /// Observes the initial parameter vector (dimension, starting point).
    fn init(&mut self, params: &[f32]) {
        let _ = params;
    }

    /// Builds this round's broadcast from the post-local-training parameters.
    ///
    /// # Errors
    ///
    /// Implementations fail on internal protocol violations.
    fn make_message(&mut self, round: usize, params: &[f32]) -> Result<OutMessage>;

    /// Builds this round's outbound traffic given the neighbour list the
    /// engine will deliver to. The default delegates to [`make_message`] and
    /// broadcasts; edge-based strategies (PowerGossip, random model walk)
    /// override this instead.
    ///
    /// `neighbors` is sorted and contains only neighbours that will actually
    /// receive (inactive nodes are already filtered out under churn).
    ///
    /// # Errors
    ///
    /// Implementations fail on internal protocol violations.
    ///
    /// [`make_message`]: Self::make_message
    fn make_outbound(
        &mut self,
        round: usize,
        params: &[f32],
        neighbors: &[usize],
    ) -> Result<Outbound> {
        let _ = neighbors;
        Ok(Outbound::Broadcast(self.make_message(round, params)?))
    }

    /// Combines own parameters with the received messages, returning the
    /// parameters that start the next round.
    ///
    /// `self_weight` is `w_ii` for this round's topology.
    ///
    /// # Errors
    ///
    /// Fails on undecodable messages or protocol violations.
    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>>;

    /// The sharing fraction used in the most recent `make_message`, in
    /// `[0, 1]` (1.0 for full sharing). Drives the Figure-3 plot.
    fn last_alpha(&self) -> f64 {
        1.0
    }

    /// Drops any per-edge state held for `peer`. The engine calls this when
    /// it learns an edge is permanently gone — the peer crashed with no
    /// recovery scheduled, or topology repair rewired around the connection
    /// — so per-edge strategies neither leak state across lifecycle epochs
    /// nor warm-start from a stale subspace if the edge later returns (a
    /// returning edge restarts from the deterministic fresh state instead).
    /// Broadcast strategies keep no per-edge state and ignore it.
    fn forget_edge(&mut self, peer: usize) {
        let _ = peer;
    }

    /// Bytes of per-node algorithm state held between rounds (beyond the
    /// model itself). Backs the paper's memory-efficiency claim (§V):
    /// JWINS keeps one accumulation vector, while CHOCO-style error feedback
    /// keeps model replicas.
    fn state_bytes(&self) -> usize {
        0
    }

    /// Takes (and resets) the pair-vs-fresh-fallback counters accumulated
    /// since the last call, for run telemetry (`TraceEvent::StrategyPairing`
    /// in `jwins_trace`). Edge-stateful strategies (PowerGossip) override
    /// this; the default `None` marks a strategy with no pairing decisions
    /// to report. Implementations must keep the counters write-only for the
    /// algorithm itself — the engine may or may not drain them, and neither
    /// choice is allowed to change any result.
    fn pairing_stats(&mut self) -> Option<PairingStats> {
        None
    }

    /// Whether this strategy can aggregate through a robust rule
    /// ([`aggregate_robust`]). True for strategies whose aggregation is a
    /// partial average over decoded neighbor values (full sharing, JWINS,
    /// quantized, random sampling); false for algorithms whose update is
    /// not an average the mixing layer can re-order (CHOCO's error-feedback
    /// replicas, PowerGossip's pairwise low-rank update, random model walk)
    /// — `TrainConfig::validate` rejects those combinations up front.
    ///
    /// [`aggregate_robust`]: Self::aggregate_robust
    fn supports_robust(&self) -> bool {
        false
    }

    /// [`aggregate`] with a robust rule applied to the decoded neighbor
    /// contributions before averaging (see `jwins_adversary::Robust`).
    /// Implementations must route decode output through a
    /// `RobustAccumulator` in place of the plain partial averager, keep all
    /// non-averaging bookkeeping identical, and stash the returned
    /// `RobustStats` for [`robust_stats`] to drain.
    ///
    /// # Errors
    ///
    /// Fails on undecodable messages, protocol violations, or when the
    /// strategy does not support robust aggregation.
    ///
    /// [`aggregate`]: Self::aggregate
    /// [`robust_stats`]: Self::robust_stats
    fn aggregate_robust(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
        rule: &jwins_adversary::Robust,
    ) -> Result<Vec<f32>> {
        let _ = (round, params, self_weight, received, rule);
        Err(crate::JwinsError::InvalidConfig(format!(
            "strategy '{}' does not support robust aggregation",
            self.name()
        )))
    }

    /// Takes (and resets) what the robust rule removed since the last call,
    /// for run telemetry (`TraceEvent::RobustClip`). Same write-only
    /// contract as [`pairing_stats`]: the engine may or may not drain the
    /// counters, and neither choice may change a result.
    ///
    /// [`pairing_stats`]: Self::pairing_stats
    fn robust_stats(&mut self) -> Option<jwins_adversary::RobustStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_message_wraps_bytes() {
        let m = OutMessage::new(
            vec![1, 2, 3],
            ByteBreakdown {
                payload: 2,
                metadata: 1,
            },
        );
        assert_eq!(&m.bytes[..], &[1, 2, 3]);
        assert_eq!(m.breakdown.total(), 3);
    }

    // The check is a debug_assert, so there is nothing to panic in release
    // builds — where the determinism CI job runs this suite.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "breakdown must cover buffer")]
    fn mismatched_breakdown_panics_in_debug() {
        let _ = OutMessage::new(
            vec![1, 2, 3],
            ByteBreakdown {
                payload: 1,
                metadata: 1,
            },
        );
    }
}
