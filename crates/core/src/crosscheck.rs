//! Real-backend ↔ sim-oracle cross-checking.
//!
//! A [`crate::config::TransportKind::Channel`] run is not bit-reproducible
//! (thread scheduling decides interleavings), so its correctness story is a
//! *differential* one: replay the same `TrainConfig` + seed on the
//! simulated backend under the latency profile the real transport actually
//! measured, and require the two accuracy trajectories to agree within a
//! declared tolerance. A real-backend bug that perturbs aggregation —
//! dropped frames, mis-routed messages, wrong mixing weights — shows up as
//! a trajectory gap long before it shows up as a crash.
//!
//! The harness (used by `tests/transport_real.rs` and the `ext_transport`
//! bench) is three pieces:
//!
//! 1. [`oracle_profile`] turns the channel backend's measured mean flight
//!    latency into a [`HeterogeneityProfile`] the sim can replay;
//! 2. the caller runs the sim oracle with that profile (same config
//!    otherwise, `TransportKind::Sim`);
//! 3. [`compare_to_oracle`] aligns the two [`RunResult`]s round-by-round
//!    and reports the worst accuracy gap against a tolerance.

use crate::metrics::RunResult;
use jwins_sim::{ComputeProfile, HeterogeneityProfile, LinkProfile};
use std::collections::HashMap;

/// Default accuracy-gap tolerance for channel ↔ sim cross-checks.
///
/// Deliberately loose: the two runs share seeds for data order, strategy
/// draws and topology, but the channel backend mixes whatever arrived
/// before its bounded wait while the sim's barrier delivers everything, so
/// early-round trajectories can diverge on small models before both
/// converge. 0.15 absolute accuracy is far tighter than the gap a real
/// routing or weighting bug produces (those typically destroy learning
/// outright) while staying robust to scheduler noise.
pub const DEFAULT_ACCURACY_TOLERANCE: f64 = 0.15;

/// Measured latencies below this fraction of a compute round replay as
/// instant links in the oracle (see [`oracle_profile`]): a flight well
/// under one round still lands inside the mix window the barrier schedule
/// implies, so it cannot move a message across a round boundary. Only a
/// flight on the order of the round itself (a socketed WAN backend, say)
/// changes which round a message mixes in — the regime the event-driven
/// replay models.
pub const INSTANT_FRACTION: f64 = 0.5;

/// Builds the heterogeneity profile the sim oracle should replay to mimic
/// a real run whose transport measured `measured_latency_s` mean in-flight
/// latency, given the config's per-round compute time `compute_s`.
///
/// In-process channels measure *milliseconds* of flight (a message waits in
/// its channel while the receiver finishes its own training) against
/// *seconds* of modelled compute; replaying such a latency as a link
/// profile would shift every mix one round stale in the sim (the event
/// queue orders arrival strictly after the receiver's mix when latency is
/// nonzero) without changing anything the real run observed. Latencies
/// below [`INSTANT_FRACTION`] of the compute time are therefore clamped to
/// instant links — they cannot move a message across a round boundary —
/// and anything slower is replayed as a uniform link at essentially
/// infinite bandwidth (the transport measures latency, not throughput).
pub fn oracle_profile(measured_latency_s: Option<f64>, compute_s: f64) -> HeterogeneityProfile {
    match measured_latency_s {
        Some(latency)
            if latency.is_finite() && latency > 0.0 && latency >= INSTANT_FRACTION * compute_s =>
        {
            HeterogeneityProfile {
                compute: ComputeProfile::Uniform,
                links: LinkProfile::Uniform {
                    latency_s: latency,
                    bandwidth_bps: 1e12,
                },
            }
        }
        _ => HeterogeneityProfile::default(),
    }
}

/// The outcome of aligning a real-backend run against its sim oracle.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Rounds the real run completed.
    pub rounds_real: usize,
    /// Rounds the oracle replay completed.
    pub rounds_oracle: usize,
    /// Evaluation records present in *both* runs (aligned by round).
    pub compared: usize,
    /// Largest absolute `test_accuracy` gap across aligned records.
    pub max_accuracy_gap: f64,
    /// Absolute gap between the two final accuracies.
    pub final_accuracy_gap: f64,
    /// Relative gap in total bytes sent, `|real − oracle| / oracle`
    /// (0 when the oracle sent nothing). Exactly 0 for fixed-size
    /// strategies; small but nonzero for content-adaptive metadata codecs
    /// when a bounded wait dropped a message and shifted the trajectory.
    pub traffic_gap_ratio: f64,
    /// The tolerance the check was run against.
    pub tolerance: f64,
}

impl CrossCheck {
    /// Whether the real run's trajectory matches its oracle: at least one
    /// aligned record, and every aligned accuracy within `tolerance`.
    pub fn within_tolerance(&self) -> bool {
        self.compared > 0 && self.max_accuracy_gap <= self.tolerance
    }
}

/// Aligns two runs' evaluation records by round and measures the accuracy
/// gap. Checkpoint records (virtual-time evals) are ignored on both sides;
/// the channel backend never produces them and the oracle is validated not
/// to.
pub fn compare_to_oracle(real: &RunResult, oracle: &RunResult, tolerance: f64) -> CrossCheck {
    let oracle_by_round: HashMap<usize, f64> = oracle
        .round_records()
        .map(|r| (r.round, r.test_accuracy))
        .collect();
    let mut compared = 0;
    let mut max_accuracy_gap = 0.0f64;
    for record in real.round_records() {
        if let Some(oracle_accuracy) = oracle_by_round.get(&record.round) {
            compared += 1;
            max_accuracy_gap = max_accuracy_gap.max((record.test_accuracy - oracle_accuracy).abs());
        }
    }
    let oracle_bytes = oracle.total_traffic.bytes_sent;
    let traffic_gap_ratio = if oracle_bytes == 0 {
        0.0
    } else {
        (real.total_traffic.bytes_sent as f64 - oracle_bytes as f64).abs() / oracle_bytes as f64
    };
    CrossCheck {
        rounds_real: real.rounds_run,
        rounds_oracle: oracle.rounds_run,
        compared,
        max_accuracy_gap,
        final_accuracy_gap: (real.final_accuracy() - oracle.final_accuracy()).abs(),
        traffic_gap_ratio,
        tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RoundRecord;

    fn record(round: usize, accuracy: f64) -> RoundRecord {
        RoundRecord {
            round,
            train_loss: 0.0,
            test_loss: 0.0,
            test_accuracy: accuracy,
            test_rmse: 0.0,
            mean_alpha: 1.0,
            cum_bytes_per_node: 100.0,
            cum_payload_per_node: 90.0,
            cum_metadata_per_node: 10.0,
            sim_time_s: round as f64,
            mean_staleness_s: 0.0,
            crashes: 0,
            rejoins: 0,
            messages_expired: 0,
            downweight_mass: 0.0,
            edges_rewired: 0,
            bandwidth_saved_bytes: 0,
            attacks_injected: 0,
            mass_clipped: 0.0,
            per_node_accuracy: Vec::new(),
            checkpoint: false,
        }
    }

    fn run(records: Vec<RoundRecord>, bytes: u64) -> RunResult {
        let rounds_run = records.last().map_or(0, |r| r.round + 1);
        RunResult {
            strategy: "test".to_owned(),
            records,
            total_traffic: jwins_net::TrafficStats {
                bytes_sent: bytes,
                ..Default::default()
            },
            rounds_run,
            reached_target: None,
            alpha_history: Vec::new(),
            measured_latency_s: None,
        }
    }

    #[test]
    fn tiny_latencies_clamp_to_instant_links() {
        let profile = oracle_profile(Some(2e-6), 1.0);
        assert!(profile.is_degenerate());
        let none = oracle_profile(None, 1.0);
        assert!(none.is_degenerate());
    }

    #[test]
    fn slow_links_replay_as_uniform_latency() {
        let profile = oracle_profile(Some(0.75), 1.0);
        assert!(!profile.is_degenerate());
        match profile.links {
            LinkProfile::Uniform { latency_s, .. } => assert!((latency_s - 0.75).abs() < 1e-12),
            other => panic!("expected uniform links, got {other:?}"),
        }
    }

    #[test]
    fn sub_round_latencies_stay_degenerate() {
        // ~8% of a round: real in-process flight, barrier-equivalent.
        assert!(oracle_profile(Some(0.004), 0.05).is_degenerate());
        // Larger than the round: must be replayed, not clamped.
        assert!(!oracle_profile(Some(0.1), 0.05).is_degenerate());
    }

    #[test]
    fn identical_trajectories_pass() {
        let real = run(vec![record(1, 0.4), record(3, 0.6)], 1000);
        let oracle = run(vec![record(1, 0.4), record(3, 0.6)], 1000);
        let check = compare_to_oracle(&real, &oracle, DEFAULT_ACCURACY_TOLERANCE);
        assert_eq!(check.compared, 2);
        assert_eq!(check.max_accuracy_gap, 0.0);
        assert_eq!(check.traffic_gap_ratio, 0.0);
        assert!(check.within_tolerance());
    }

    #[test]
    fn diverging_trajectories_fail() {
        let real = run(vec![record(1, 0.1), record(3, 0.2)], 1100);
        let oracle = run(vec![record(1, 0.4), record(3, 0.6)], 1000);
        let check = compare_to_oracle(&real, &oracle, DEFAULT_ACCURACY_TOLERANCE);
        assert_eq!(check.compared, 2);
        assert!((check.max_accuracy_gap - 0.4).abs() < 1e-12);
        assert!((check.final_accuracy_gap - 0.4).abs() < 1e-12);
        assert!((check.traffic_gap_ratio - 0.1).abs() < 1e-12);
        assert!(!check.within_tolerance());
    }

    #[test]
    fn disjoint_round_sets_never_pass_vacuously() {
        let real = run(vec![record(2, 0.5)], 100);
        let oracle = run(vec![record(3, 0.5)], 100);
        let check = compare_to_oracle(&real, &oracle, DEFAULT_ACCURACY_TOLERANCE);
        assert_eq!(check.compared, 0);
        assert!(!check.within_tolerance());
    }
}
