//! Experiment configuration.

use crate::{JwinsError, Result};
use jwins_net::TimeModel;
use serde::{Deserialize, Serialize};

/// Knobs of one decentralized training run.
///
/// Mirrors the paper's hyperparameter surface: rounds `T`, local steps `τ`,
/// batch size `b`, learning rate `η`, plus evaluation cadence and the
/// simulated-time model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of communication rounds `T`.
    pub rounds: usize,
    /// Local SGD steps per round `τ`.
    pub local_steps: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Learning rate `η`.
    pub lr: f32,
    /// Master seed: drives initial weights, batch order and cut-off draws.
    pub seed: u64,
    /// Evaluate every this many rounds (also evaluates the final round).
    /// `0` evaluates only at the end.
    pub eval_every: usize,
    /// Cap on test samples per evaluation (`0` = the full test set).
    pub eval_test_samples: usize,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Simulated wall-clock model.
    #[serde(skip, default)]
    pub time_model: TimeModel,
    /// Stop as soon as mean test accuracy reaches this value (Figures 5–6
    /// "run to target accuracy").
    pub target_accuracy: Option<f64>,
    /// Probability that any single message is lost in flight (extension;
    /// `0.0` = the paper's reliable TCP transport). Distinct from node
    /// churn: here the node stays up but an individual link delivery fails.
    #[serde(default)]
    pub message_loss: f64,
    /// Record each node's α every round (Figure 3).
    pub record_alphas: bool,
}

impl TrainConfig {
    /// A configuration with sensible defaults for `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        Self {
            rounds,
            local_steps: 3,
            batch_size: 16,
            lr: 0.05,
            seed: 42,
            eval_every: 10,
            eval_test_samples: 0,
            threads: 0,
            time_model: TimeModel::default(),
            target_accuracy: None,
            message_loss: 0.0,
            record_alphas: false,
        }
    }

    /// A tiny configuration for unit tests and doctests (3 rounds).
    pub fn quick_test() -> Self {
        Self {
            rounds: 3,
            local_steps: 1,
            batch_size: 4,
            eval_every: 0,
            eval_test_samples: 16,
            threads: 1,
            ..Self::new(3)
        }
    }

    /// Fluent seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fluent learning-rate override.
    #[must_use]
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`JwinsError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.rounds == 0 {
            return Err(JwinsError::InvalidConfig("rounds must be positive".into()));
        }
        if self.local_steps == 0 {
            return Err(JwinsError::InvalidConfig(
                "local_steps must be positive".into(),
            ));
        }
        if self.batch_size == 0 {
            return Err(JwinsError::InvalidConfig(
                "batch_size must be positive".into(),
            ));
        }
        // Written to also reject NaN, which `< 0.0` alone would admit.
        if self.lr.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(JwinsError::InvalidConfig(
                "learning rate must be positive".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.message_loss) {
            return Err(JwinsError::InvalidConfig(
                "message loss must be in [0, 1)".into(),
            ));
        }
        if let Some(t) = self.target_accuracy {
            if !(0.0..=1.0).contains(&t) {
                return Err(JwinsError::InvalidConfig(
                    "target accuracy must be in [0, 1]".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(TrainConfig::new(10).validate().is_ok());
        assert!(TrainConfig::quick_test().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TrainConfig::new(0).validate().is_err());
        let mut c = TrainConfig::new(1);
        c.lr = 0.0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(1);
        c.batch_size = 0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(1);
        c.target_accuracy = Some(1.5);
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(1);
        c.message_loss = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fluent_overrides() {
        let c = TrainConfig::new(5).with_seed(7).with_lr(0.5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.lr, 0.5);
    }
}
