//! Experiment configuration.

use crate::{JwinsError, Result};
use jwins_fault::FaultConfig;
use jwins_net::TimeModel;
use jwins_sim::HeterogeneityProfile;
use jwins_topology::repair::RepairPolicy;
use serde::{Deserialize, Serialize};

/// Which execution substrate drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ExecutionMode {
    /// The paper's round structure: train → communicate → aggregate behind a
    /// global barrier; round time from [`TimeModel::round_seconds`].
    #[default]
    BulkSynchronous,
    /// Discrete-event asynchronous gossip: each node advances its own
    /// virtual clock through heterogeneous compute and links, mixing with
    /// whatever neighbour messages have *arrived* by its local time. With a
    /// degenerate [`HeterogeneityProfile`] this reproduces
    /// [`ExecutionMode::BulkSynchronous`] results bit-for-bit.
    EventDriven,
}

/// Which transport backend carries messages between nodes.
///
/// Orthogonal to [`ExecutionMode`]: the execution mode decides *when* a
/// node trains and mixes (barrier rounds vs. a virtual event clock), the
/// transport decides *what carries the bytes*. Only the combinations that
/// keep a coherent clock are accepted — see [`TrainConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TransportKind {
    /// The deterministic in-process backend (`jwins_net::SimNetwork`):
    /// per-node mailboxes on the virtual clock, byte-for-byte reproducible.
    #[default]
    Sim,
    /// The real-concurrency backend (`jwins_net::ThreadChannelTransport`):
    /// one OS thread per node, a framed channel per directed edge,
    /// wall-clock timestamps. Results are *not* bit-reproducible — the
    /// cross-check harness (`crate::crosscheck`) compares them against a
    /// sim-oracle replay instead.
    Channel(ChannelTransportConfig),
}

impl TransportKind {
    /// Whether this is the real-concurrency channel backend.
    pub fn is_real(&self) -> bool {
        matches!(self, TransportKind::Channel(_))
    }
}

/// Tuning knobs of the real-concurrency channel backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelTransportConfig {
    /// Longest a node waits for the current round's neighbour messages
    /// before mixing with whatever has arrived (milliseconds). Bounds the
    /// damage of a slow peer; must be positive.
    #[serde(default = "default_mix_wait_ms")]
    pub mix_wait_ms: u64,
    /// Sleep between inbox polls while waiting (microseconds).
    #[serde(default = "default_poll_us")]
    pub poll_us: u64,
}

fn default_mix_wait_ms() -> u64 {
    500
}

fn default_poll_us() -> u64 {
    200
}

impl Default for ChannelTransportConfig {
    fn default() -> Self {
        Self {
            mix_wait_ms: default_mix_wait_ms(),
            poll_us: default_poll_us(),
        }
    }
}

/// Knobs of one decentralized training run.
///
/// Mirrors the paper's hyperparameter surface: rounds `T`, local steps `τ`,
/// batch size `b`, learning rate `η`, plus evaluation cadence and the
/// simulated-time model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of communication rounds `T`.
    pub rounds: usize,
    /// Local SGD steps per round `τ`.
    pub local_steps: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Learning rate `η`.
    pub lr: f32,
    /// Master seed: drives initial weights, batch order and cut-off draws.
    pub seed: u64,
    /// Evaluate every this many rounds (also evaluates the final round).
    /// `0` evaluates only at the end.
    pub eval_every: usize,
    /// Cap on test samples per evaluation (`0` = the full test set).
    pub eval_test_samples: usize,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Simulated wall-clock model. (Serialized since the event-driven
    /// runtime landed; configs now round-trip losslessly.)
    #[serde(default)]
    pub time_model: TimeModel,
    /// Execution substrate: barrier rounds or event-driven async gossip.
    #[serde(default)]
    pub execution: ExecutionMode,
    /// Transport backend: the deterministic in-process simulator (default)
    /// or real OS threads with framed channels. The same `TrainConfig`
    /// (and seed) runs on either; the channel backend rejects
    /// virtual-time-only features in [`Self::validate`].
    #[serde(default)]
    pub transport: TransportKind,
    /// Hardware heterogeneity (compute speeds, link capacities) for
    /// [`ExecutionMode::EventDriven`]. The default profile is degenerate:
    /// uniform compute, instantaneous links.
    #[serde(default)]
    pub heterogeneity: HeterogeneityProfile,
    /// Fault injection and bounded staleness for
    /// [`ExecutionMode::EventDriven`]: a crash/recovery plan plus message
    /// TTL/staleness caps. The default is a strict no-op — event-driven
    /// runs reproduce their fault-free results bit-for-bit. Non-degenerate
    /// values are rejected under [`ExecutionMode::BulkSynchronous`]; project
    /// a fault timeline onto barrier rounds with
    /// [`crate::participation::FaultParticipation`] instead.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Evaluate every this many *virtual seconds* in event-driven runs
    /// (heterogeneity-aware cadence): checkpoints fire on the simulated
    /// clock, so fast nodes' progress is visible even while a straggler is
    /// still mid-round. Checkpoint records carry
    /// [`crate::metrics::RoundRecord::checkpoint`] `= true` and never
    /// trigger early stop. `None` keeps the round-boundary cadence only;
    /// ignored under [`ExecutionMode::BulkSynchronous`].
    #[serde(default)]
    pub eval_interval_s: Option<f64>,
    /// Liveness-aware topology repair for event-driven runs with a fault
    /// plan: on every crash and rejoin the affected rounds' graphs are
    /// re-resolved through [`RepairPolicy::apply`], survivors re-wire
    /// around the dead nodes (Metropolis–Hastings weights recomputed), and
    /// in-flight messages on removed edges are invalidated. The default
    /// [`RepairPolicy::None`] keeps the pre-repair engine behaviour bit for
    /// bit; non-default values are rejected under
    /// [`ExecutionMode::BulkSynchronous`], where no lifecycle exists.
    #[serde(default)]
    pub repair: RepairPolicy,
    /// Stop as soon as mean test accuracy reaches this value (Figures 5–6
    /// "run to target accuracy").
    pub target_accuracy: Option<f64>,
    /// Probability that any single message is lost in flight (extension;
    /// `0.0` = the paper's reliable TCP transport). Distinct from node
    /// churn: here the node stays up but an individual link delivery fails.
    #[serde(default)]
    pub message_loss: f64,
    /// Run telemetry: structured trace sinks and the flight-recorder bound
    /// (see `jwins_trace`). The default keeps only the always-on in-memory
    /// flight recorder — no files are written. Tracing is *observational*:
    /// any setting here leaves every [`crate::metrics::RoundRecord`] bit
    /// identical to an untraced run.
    #[serde(default)]
    pub trace: jwins_trace::TraceConfig,
    /// Metrics aggregation over the trace stream (see `jwins_metrics`):
    /// when an export path is set, a `MetricsSink` rides the tracer and
    /// writes Prometheus-text / CSV aggregates at the end of the run. Like
    /// every trace sink it is observational — any setting here leaves every
    /// [`crate::metrics::RoundRecord`] bit identical (pinned by
    /// `tests/metrics_layer.rs`).
    #[serde(default)]
    pub metrics: jwins_metrics::MetricsConfig,
    /// Byzantine attack schedule (see `jwins_adversary::AttackPlan`):
    /// marked nodes train honestly but perturb a copy of their parameters
    /// at message-build time, so attacks compose with faults, staleness,
    /// churn and repair. The default [`jwins_adversary::AttackPlan::None`]
    /// is a strict engine no-op — runs are bit-identical to the
    /// pre-adversary engine (pinned by `tests/byzantine.rs`).
    #[serde(default)]
    pub attack: jwins_adversary::AttackPlan,
    /// Event-queue shard count for [`ExecutionMode::EventDriven`] (`0` =
    /// one shard, the pre-shard layout). Pending events are routed to shard
    /// `node % shards`; pops always take the global minimum across shard
    /// heads, so the shard count never changes the schedule — it only
    /// shrinks the per-heap working set at large node counts.
    #[serde(default)]
    pub shards: usize,
    /// Commit-order contract of the event loop
    /// ([`jwins_sim::Ordering::Strict`] by default — bit-identical to the
    /// global single-heap engine). [`jwins_sim::Ordering::Window`] lets one
    /// execute batch span events up to `max_skew_ns` of virtual time apart,
    /// restoring wide parallel batches under fully-random per-node speeds
    /// at the cost of a bounded reordering (an event may miss effects
    /// committed less than the skew before it fires). Requires
    /// [`ExecutionMode::EventDriven`] on [`TransportKind::Sim`].
    #[serde(default)]
    pub ordering: jwins_sim::Ordering,
    /// Robust aggregation rule applied to decoded neighbor contributions
    /// at the mixing layer (see `jwins_adversary::Robust`). Removed mass
    /// folds into the self-weight, keeping mixing row-stochastic (the
    /// `StalenessPolicy::downweight_row` contract). Only strategies whose
    /// aggregation is a partial average support it
    /// (`ShareStrategy::supports_robust`); other combinations are rejected
    /// here. The default [`jwins_adversary::Robust::None`] is a strict
    /// no-op.
    #[serde(default)]
    pub robust: jwins_adversary::Robust,
    /// Record each node's α every round (Figure 3).
    pub record_alphas: bool,
}

impl TrainConfig {
    /// A configuration with sensible defaults for `rounds` rounds.
    pub fn new(rounds: usize) -> Self {
        Self {
            rounds,
            local_steps: 3,
            batch_size: 16,
            lr: 0.05,
            seed: 42,
            eval_every: 10,
            eval_test_samples: 0,
            threads: 0,
            time_model: TimeModel::default(),
            execution: ExecutionMode::default(),
            transport: TransportKind::default(),
            heterogeneity: HeterogeneityProfile::default(),
            faults: FaultConfig::default(),
            eval_interval_s: None,
            repair: RepairPolicy::None,
            target_accuracy: None,
            message_loss: 0.0,
            trace: jwins_trace::TraceConfig::default(),
            metrics: jwins_metrics::MetricsConfig::default(),
            shards: 0,
            ordering: jwins_sim::Ordering::Strict,
            attack: jwins_adversary::AttackPlan::None,
            robust: jwins_adversary::Robust::None,
            record_alphas: false,
        }
    }

    /// Fluent event-queue shard-count override (`0` = one shard).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Fluent commit-order override (event-driven sim runs only for
    /// [`jwins_sim::Ordering::Window`]).
    #[must_use]
    pub fn with_ordering(mut self, ordering: jwins_sim::Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Fluent switch to event-driven execution under `profile`.
    #[must_use]
    pub fn with_event_driven(mut self, profile: HeterogeneityProfile) -> Self {
        self.execution = ExecutionMode::EventDriven;
        self.heterogeneity = profile;
        self
    }

    /// A tiny configuration for unit tests and doctests (3 rounds).
    pub fn quick_test() -> Self {
        Self {
            rounds: 3,
            local_steps: 1,
            batch_size: 4,
            eval_every: 0,
            eval_test_samples: 16,
            threads: 1,
            ..Self::new(3)
        }
    }

    /// Fluent transport-backend override.
    #[must_use]
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Fluent fault/staleness override (event-driven runs only).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Fluent topology-repair override (event-driven runs only).
    #[must_use]
    pub fn with_repair(mut self, repair: RepairPolicy) -> Self {
        self.repair = repair;
        self
    }

    /// Fluent attack-plan override.
    #[must_use]
    pub fn with_attack(mut self, attack: jwins_adversary::AttackPlan) -> Self {
        self.attack = attack;
        self
    }

    /// Fluent robust-aggregation override.
    #[must_use]
    pub fn with_robust(mut self, robust: jwins_adversary::Robust) -> Self {
        self.robust = robust;
        self
    }

    /// Fluent seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fluent learning-rate override.
    #[must_use]
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`JwinsError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.rounds == 0 {
            return Err(JwinsError::InvalidConfig("rounds must be positive".into()));
        }
        if self.local_steps == 0 {
            return Err(JwinsError::InvalidConfig(
                "local_steps must be positive".into(),
            ));
        }
        if self.batch_size == 0 {
            return Err(JwinsError::InvalidConfig(
                "batch_size must be positive".into(),
            ));
        }
        // Written to also reject NaN, which `< 0.0` alone would admit.
        if self.lr.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(JwinsError::InvalidConfig(
                "learning rate must be positive".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.message_loss) {
            return Err(JwinsError::InvalidConfig(
                "message loss must be in [0, 1)".into(),
            ));
        }
        if let Some(t) = self.target_accuracy {
            if !(0.0..=1.0).contains(&t) {
                return Err(JwinsError::InvalidConfig(
                    "target accuracy must be in [0, 1]".into(),
                ));
            }
        }
        self.heterogeneity
            .validate()
            .map_err(JwinsError::InvalidConfig)?;
        self.faults.validate().map_err(JwinsError::InvalidConfig)?;
        if self.execution == ExecutionMode::BulkSynchronous && !self.faults.is_noop() {
            return Err(JwinsError::InvalidConfig(
                "fault plans and staleness caps require event-driven execution; project \
                 the timeline onto barrier rounds with FaultParticipation instead"
                    .into(),
            ));
        }
        if self.execution == ExecutionMode::BulkSynchronous && !self.repair.is_none() {
            return Err(JwinsError::InvalidConfig(
                "topology repair tracks the event-driven lifecycle; it has no meaning \
                 under bulk-synchronous execution"
                    .into(),
            ));
        }
        if let Some(interval) = self.eval_interval_s {
            if interval.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
                || !interval.is_finite()
            {
                return Err(JwinsError::InvalidConfig(
                    "eval_interval_s must be positive and finite".into(),
                ));
            }
        }
        if let TransportKind::Channel(channel) = self.transport {
            // The channel backend runs on the wall clock; every feature
            // whose semantics are defined on the *virtual* clock is
            // meaningless (or non-deterministic in a way the cross-check
            // harness cannot model) there, so the combinations are rejected
            // up front rather than silently misbehaving mid-run.
            if self.execution == ExecutionMode::EventDriven {
                return Err(JwinsError::InvalidConfig(
                    "the channel transport runs real threads on the wall clock; \
                     event-driven execution schedules on the virtual clock — \
                     pick one clock (TransportKind::Sim for event-driven runs)"
                        .into(),
                ));
            }
            if self.message_loss > 0.0 {
                return Err(JwinsError::InvalidConfig(
                    "message_loss draws from the simulator's per-link loss model; \
                     the channel transport delivers reliably (like the paper's TCP) \
                     and cannot replay seeded drops"
                        .into(),
                ));
            }
            if !self.heterogeneity.is_degenerate() {
                return Err(JwinsError::InvalidConfig(
                    "heterogeneity profiles scale the *virtual* clock; on the \
                     channel transport latency is measured, not modelled — run \
                     the profile on TransportKind::Sim"
                        .into(),
                ));
            }
            if self.eval_interval_s.is_some() {
                return Err(JwinsError::InvalidConfig(
                    "eval_interval_s schedules checkpoints on the virtual clock; \
                     the channel transport has no event queue to carry them"
                        .into(),
                ));
            }
            if self.attack != jwins_adversary::AttackPlan::None {
                return Err(JwinsError::InvalidConfig(
                    "attack plans expand into virtual-time windows; on the wall \
                     clock the schedule would be non-reproducible — inject \
                     Byzantine behaviour on TransportKind::Sim"
                        .into(),
                ));
            }
            if channel.mix_wait_ms == 0 {
                return Err(JwinsError::InvalidConfig(
                    "channel transport mix_wait_ms must be positive (a zero wait \
                     would mix before any neighbour message can arrive)"
                        .into(),
                ));
            }
        }
        if let jwins_sim::Ordering::Window { max_skew_ns } = self.ordering {
            if max_skew_ns == 0 {
                return Err(JwinsError::InvalidConfig(
                    "Ordering::Window with max_skew_ns = 0 is Ordering::Strict; \
                     use Strict explicitly or pick a positive skew"
                        .into(),
                ));
            }
            if self.execution != ExecutionMode::EventDriven {
                return Err(JwinsError::InvalidConfig(
                    "Ordering::Window relaxes the event loop's commit order; \
                     bulk-synchronous execution has no event loop to relax"
                        .into(),
                ));
            }
            if self.transport.is_real() {
                return Err(JwinsError::InvalidConfig(
                    "Ordering::Window bounds *virtual-time* skew inside execute \
                     batches; the channel transport has no virtual clock"
                        .into(),
                ));
            }
        }
        self.metrics.validate().map_err(JwinsError::InvalidConfig)?;
        self.attack.validate().map_err(JwinsError::InvalidConfig)?;
        self.robust.validate().map_err(JwinsError::InvalidConfig)?;
        if self.execution == ExecutionMode::EventDriven {
            // The event clock derives every node's round length from
            // compute_s; zero (or NaN/negative, which SimTime would clamp
            // to zero silently) would let one node run all its rounds at
            // t=0 before any other node starts.
            if self.time_model.compute_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
                || !self.time_model.compute_s.is_finite()
            {
                return Err(JwinsError::InvalidConfig(
                    "event-driven execution requires a positive, finite time_model.compute_s"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(TrainConfig::new(10).validate().is_ok());
        assert!(TrainConfig::quick_test().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(TrainConfig::new(0).validate().is_err());
        let mut c = TrainConfig::new(1);
        c.lr = 0.0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(1);
        c.batch_size = 0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(1);
        c.target_accuracy = Some(1.5);
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(1);
        c.message_loss = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fluent_overrides() {
        let c = TrainConfig::new(5).with_seed(7).with_lr(0.5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.lr, 0.5);
        let c = c.with_event_driven(HeterogeneityProfile::stragglers(0.25, 4.0, 0.005, 12.5e6));
        assert_eq!(c.execution, ExecutionMode::EventDriven);
        assert!(!c.heterogeneity.is_degenerate());
    }

    #[test]
    fn bad_heterogeneity_rejected() {
        let mut c = TrainConfig::new(1);
        c.heterogeneity = HeterogeneityProfile::stragglers(2.0, 4.0, 0.0, 1e6);
        assert!(c.validate().is_err());
    }

    #[test]
    fn event_driven_requires_positive_compute() {
        let mut c = TrainConfig::new(1).with_event_driven(HeterogeneityProfile::default());
        assert!(c.validate().is_ok());
        c.time_model.compute_s = 0.0;
        assert!(c.validate().is_err());
        c.time_model.compute_s = -1.0;
        assert!(c.validate().is_err());
        c.time_model.compute_s = f64::NAN;
        assert!(c.validate().is_err());
        // The barrier engine never schedules by compute_s alone; zero stays
        // legal there.
        c.execution = ExecutionMode::BulkSynchronous;
        c.time_model.compute_s = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn faults_require_event_driven_execution() {
        use jwins_fault::{FaultOutage, FaultPlan, StalenessPolicy};
        let faults = FaultConfig {
            plan: FaultPlan::Scripted(vec![FaultOutage::new(0, 1.0, 1.0)]),
            staleness: StalenessPolicy::default(),
        };
        let c = TrainConfig::new(3).with_faults(faults.clone());
        assert!(c.validate().is_err(), "faults under the barrier rejected");
        let c = TrainConfig::new(3)
            .with_event_driven(HeterogeneityProfile::default())
            .with_faults(faults);
        assert!(c.validate().is_ok());
        // A staleness cap alone is also event-driven-only.
        let mut c = TrainConfig::new(3);
        c.faults.staleness = StalenessPolicy::drop_after_rounds(2);
        assert!(c.validate().is_err());
        // Degenerate fault configs are fine anywhere.
        assert!(TrainConfig::new(3).validate().is_ok());
    }

    #[test]
    fn repair_requires_event_driven_execution() {
        let mut c = TrainConfig::new(3).with_repair(RepairPolicy::DegreePreserving);
        assert!(c.validate().is_err(), "repair under the barrier rejected");
        c = c.with_event_driven(HeterogeneityProfile::default());
        assert!(c.validate().is_ok());
        // The degenerate policy is fine anywhere.
        assert!(TrainConfig::new(3)
            .with_repair(RepairPolicy::None)
            .validate()
            .is_ok());
    }

    #[test]
    fn bad_fault_and_eval_interval_values_rejected() {
        use jwins_fault::FaultPlan;
        let mut c = TrainConfig::new(3).with_event_driven(HeterogeneityProfile::default());
        c.faults.plan = FaultPlan::CorrelatedOutage {
            fraction: 2.0,
            at_s: 0.0,
            down_s: 1.0,
            rejoin: jwins_fault::RejoinMode::Warm,
        };
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(3);
        c.eval_interval_s = Some(0.0);
        assert!(c.validate().is_err());
        c.eval_interval_s = Some(f64::NAN);
        assert!(c.validate().is_err());
        c.eval_interval_s = Some(2.5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_round_trips_through_serde_losslessly() {
        // Regression: time_model used to be #[serde(skip)], so configs came
        // back with a default time model and any tuned bandwidth silently
        // vanished.
        let mut config = TrainConfig::new(7).with_seed(99).with_lr(0.125);
        config.time_model = jwins_net::TimeModel {
            compute_s: 0.75,
            bandwidth_bps: 1.5e6,
            latency_s: 0.025,
        };
        config.execution = ExecutionMode::EventDriven;
        config.heterogeneity = HeterogeneityProfile::stragglers(0.125, 8.0, 0.001, 2.5e7);
        config.faults = FaultConfig {
            plan: jwins_fault::FaultPlan::RandomChurn {
                mean_up_s: 30.0,
                mean_down_s: 5.0,
                horizon_s: 120.0,
                rejoin: jwins_fault::RejoinMode::Resync,
            },
            staleness: jwins_fault::StalenessPolicy::decay_after_rounds(2, 0.5),
        };
        config.eval_interval_s = Some(7.5);
        config.repair = RepairPolicy::DegreePreserving;
        config.target_accuracy = Some(0.5);
        config.message_loss = 0.125;
        config.trace = jwins_trace::TraceConfig {
            jsonl_path: Some("/tmp/run.jsonl".into()),
            chrome_path: None,
            flight_recorder_bytes: 4096,
        };
        config.metrics = jwins_metrics::MetricsConfig {
            prometheus_path: Some("/tmp/run.prom".into()),
            csv_path: Some("/tmp/run.csv".into()),
            window_s: 0.5,
        };
        config.attack = jwins_adversary::AttackPlan::RandomFraction {
            fraction: 0.25,
            from_s: 2.0,
            until_s: 60.0,
            behavior: jwins_adversary::AttackBehavior::Scale { factor: -4.0 },
        };
        config.robust = jwins_adversary::Robust::TrimmedMean { trim: 0.3 };
        config.shards = 16;
        config.ordering = jwins_sim::Ordering::Window { max_skew_ns: 2_500 };
        let text = serde::json::to_string(&config);
        let back: TrainConfig = serde::json::from_str(&text).unwrap();
        assert_eq!(back.time_model, config.time_model);
        assert_eq!(back.execution, config.execution);
        assert_eq!(back.heterogeneity, config.heterogeneity);
        assert_eq!(back.faults, config.faults);
        assert_eq!(back.eval_interval_s, config.eval_interval_s);
        assert_eq!(back.repair, config.repair);
        assert_eq!(back.rounds, config.rounds);
        assert_eq!(back.lr, config.lr);
        assert_eq!(back.seed, config.seed);
        assert_eq!(back.target_accuracy, config.target_accuracy);
        assert_eq!(back.message_loss, config.message_loss);
        assert_eq!(back.trace, config.trace);
        assert_eq!(back.metrics, config.metrics);
        assert_eq!(back.attack, config.attack);
        assert_eq!(back.robust, config.robust);
        assert_eq!(back.shards, config.shards);
        assert_eq!(back.ordering, config.ordering);
    }

    #[test]
    fn window_ordering_requires_the_event_driven_sim_engine() {
        let window = jwins_sim::Ordering::Window { max_skew_ns: 1_000 };
        // Barrier execution has no event loop to relax.
        let c = TrainConfig::new(3).with_ordering(window);
        assert!(c.validate().is_err());
        // The channel transport has no virtual clock to bound skew on.
        let c = TrainConfig::new(3)
            .with_transport(TransportKind::Channel(ChannelTransportConfig::default()))
            .with_ordering(window);
        assert!(c.validate().is_err());
        // A zero-skew window is a confusing Strict spelling; rejected.
        let c = TrainConfig::new(3)
            .with_event_driven(HeterogeneityProfile::default())
            .with_ordering(jwins_sim::Ordering::Window { max_skew_ns: 0 });
        assert!(c.validate().is_err());
        // The real thing validates, as do shards everywhere (a pure
        // data-structure knob).
        let c = TrainConfig::new(3)
            .with_event_driven(HeterogeneityProfile::default())
            .with_ordering(window)
            .with_shards(8);
        assert!(c.validate().is_ok());
        assert!(TrainConfig::new(3).with_shards(64).validate().is_ok());
    }

    #[test]
    fn transport_round_trips_through_serde() {
        let mut config = TrainConfig::new(4);
        assert_eq!(config.transport, TransportKind::Sim);
        config.transport = TransportKind::Channel(ChannelTransportConfig {
            mix_wait_ms: 250,
            poll_us: 50,
        });
        let text = serde::json::to_string(&config);
        let back: TrainConfig = serde::json::from_str(&text).unwrap();
        assert_eq!(back.transport, config.transport);
        assert!(back.transport.is_real());
    }

    #[test]
    fn channel_transport_rejects_virtual_time_features() {
        let channel = || {
            TrainConfig::new(3)
                .with_transport(TransportKind::Channel(ChannelTransportConfig::default()))
        };
        assert!(channel().validate().is_ok());
        // Event-driven execution is virtual-clock-only.
        let mut c = channel();
        c.execution = ExecutionMode::EventDriven;
        assert!(c.validate().is_err());
        // Seeded message loss is a simulator feature.
        let mut c = channel();
        c.message_loss = 0.1;
        assert!(c.validate().is_err());
        // Modelled heterogeneity scales the virtual clock.
        let mut c = channel();
        c.heterogeneity = HeterogeneityProfile::stragglers(0.25, 4.0, 0.01, 1e6);
        assert!(c.validate().is_err());
        // Virtual-time checkpoints need the event queue.
        let mut c = channel();
        c.eval_interval_s = Some(1.0);
        assert!(c.validate().is_err());
        // Attack windows are virtual-time spans.
        let mut c = channel();
        c.attack = jwins_adversary::AttackPlan::RandomFraction {
            fraction: 0.25,
            from_s: 0.0,
            until_s: 10.0,
            behavior: jwins_adversary::AttackBehavior::SignFlip,
        };
        assert!(c.validate().is_err());
        // A zero wait can never collect a neighbour message.
        let c =
            TrainConfig::new(3).with_transport(TransportKind::Channel(ChannelTransportConfig {
                mix_wait_ms: 0,
                poll_us: 100,
            }));
        assert!(c.validate().is_err());
        // All of these remain legal on the sim backend.
        let mut c = TrainConfig::new(3);
        c.message_loss = 0.1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bad_metrics_window_rejected() {
        let mut c = TrainConfig::new(3);
        c.metrics.window_s = 0.0;
        assert!(c.validate().is_err());
        c.metrics.window_s = f64::NAN;
        assert!(c.validate().is_err());
        c.metrics.window_s = 0.25;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn old_configs_without_new_fields_still_parse() {
        // Forward compatibility: serialized configs predating the
        // event-driven runtime omit execution/heterogeneity/time_model.
        let text = r#"{"rounds":3,"local_steps":1,"batch_size":4,"lr":0.05,
            "seed":42,"eval_every":0,"eval_test_samples":16,"threads":1,
            "target_accuracy":null,"record_alphas":false}"#;
        let config: TrainConfig = serde::json::from_str(text).unwrap();
        assert_eq!(config.execution, ExecutionMode::BulkSynchronous);
        assert_eq!(config.transport, TransportKind::Sim);
        assert!(config.heterogeneity.is_degenerate());
        assert_eq!(config.time_model, jwins_net::TimeModel::default());
        assert!(config.faults.is_noop());
        assert_eq!(config.eval_interval_s, None);
        assert_eq!(config.repair, RepairPolicy::None);
        assert_eq!(config.trace, jwins_trace::TraceConfig::default());
        assert_eq!(config.metrics, jwins_metrics::MetricsConfig::default());
        assert_eq!(config.attack, jwins_adversary::AttackPlan::None);
        assert_eq!(config.robust, jwins_adversary::Robust::None);
        assert_eq!(config.shards, 0);
        assert_eq!(config.ordering, jwins_sim::Ordering::Strict);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn bad_attack_and_robust_values_rejected() {
        let mut c = TrainConfig::new(3);
        c.attack = jwins_adversary::AttackPlan::RandomFraction {
            fraction: 1.5,
            from_s: 0.0,
            until_s: 1.0,
            behavior: jwins_adversary::AttackBehavior::SignFlip,
        };
        assert!(c.validate().is_err());
        let mut c = TrainConfig::new(3);
        c.robust = jwins_adversary::Robust::TrimmedMean { trim: 0.5 };
        assert!(c.validate().is_err());
        c.robust = jwins_adversary::Robust::NormClip { tau: 0.0 };
        assert!(c.validate().is_err());
        c.robust = jwins_adversary::Robust::Median;
        assert!(c.validate().is_ok());
    }
}
