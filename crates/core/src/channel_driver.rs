//! The real-concurrency round driver: one OS thread per node.
//!
//! This is the engine's third substrate, selected by
//! [`TransportKind::Channel`]: the *same* per-node round program as the
//! barrier engine (τ local SGD steps → strategy-built messages →
//! Metropolis–Hastings aggregation), but with no global barrier and no
//! virtual clock. Every node runs on its own OS thread, messages cross real
//! [`jwins_net::ThreadChannelTransport`] channels, and time is the wall
//! clock mapped onto [`SimTime`] by the transport.
//!
//! # What replaces the barrier
//!
//! A node finishing round `r` *waits* — bounded by
//! [`crate::config::ChannelTransportConfig::mix_wait_ms`] — until a round-`r`
//! message from every active neighbour has arrived, then mixes and moves
//! on. A fast neighbour may already be a round ahead; its early messages
//! are stashed and consumed when their round comes. A peer that never
//! sends (a `PerEdge` strategy skipping an edge, or a node that stopped
//! early) costs one timeout, not a deadlock.
//!
//! # What this driver deliberately does not do
//!
//! Runs here are **not** bit-reproducible: thread scheduling decides
//! arrival interleavings and wall-clock stamps. The determinism story is
//! instead the *cross-check* ([`crate::crosscheck`]): the accuracy
//! trajectory must stay within a declared tolerance of a sim-oracle replay
//! of the same config + seed under the transport's measured latency
//! profile. Everything that only has meaning on the virtual clock (fault
//! plans, modelled heterogeneity, seeded loss, attack windows) is rejected
//! at validation time — see [`crate::config::TrainConfig::validate`].

use crate::config::TransportKind;
use crate::engine::{train_steps, NodeState, Trainer};
use crate::metrics::{RoundRecord, RunResult, TargetHit};
use crate::strategy::{Outbound, ReceivedMessage};
use crate::{JwinsError, Result};
use jwins_net::PendingSend;
use jwins_nn::model::{EvalMetrics, Model};
use jwins_sim::SimTime;
use jwins_topology::dynamic::RoundTopology;
use jwins_trace::TraceEvent;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One node's contribution to a round, deposited on the shared board.
struct Deposit {
    /// Merged test metrics + own accuracy; `None` on non-evaluation rounds.
    eval: Option<(EvalMetrics, f64)>,
    train_loss: f64,
    alpha: f64,
}

/// The cluster-shared round ledger. Nodes deposit as they finish a round;
/// the `n`-th depositor finalizes it (round-completion trace, evaluation
/// record, early-stop check) while still holding the lock, so records form
/// in strict round order.
struct Board {
    /// Per-round deposit slots, indexed by node. A round's entry exists
    /// from its first deposit to its finalization.
    pending: std::collections::HashMap<usize, Vec<Option<Deposit>>>,
    records: Vec<RoundRecord>,
    rounds_run: usize,
    reached_target: Option<TargetHit>,
    alpha_rows: Vec<Vec<f64>>,
    total_staleness_s: f64,
    mixed_messages: u64,
}

/// Evaluates one node's model on (a prefix of) the shared test set —
/// the same chunked merge as the engine's parallel evaluation phase.
fn evaluate_node<M: Model>(
    state: &mut NodeState<M>,
    params: &[f32],
    test: &[M::Sample],
    cap: usize,
) -> (EvalMetrics, f64) {
    let subset = if cap == 0 || cap >= test.len() {
        test
    } else {
        &test[..cap]
    };
    state.model.set_params(params);
    let mut local = EvalMetrics::default();
    for chunk in subset.chunks(64) {
        local.merge(&state.model.evaluate(chunk));
    }
    let accuracy = local.accuracy();
    (local, accuracy)
}

/// Runs the trainer's round program on one OS thread per node over the
/// channel transport. Called by [`Trainer::run`] when
/// [`TransportKind::Channel`] is configured.
pub(crate) fn run_channel<M>(trainer: Trainer<M>) -> Result<RunResult>
where
    M: Model + Send,
    M::Sample: Send + Sync,
{
    let Trainer {
        config,
        topology,
        participation,
        network,
        nodes,
        mut arena,
        test,
        tracer,
    } = trainer;
    let TransportKind::Channel(channel) = config.transport else {
        return Err(JwinsError::Protocol(
            "channel driver invoked without a channel transport",
        ));
    };
    let n = nodes.len();
    let rounds = config.rounds;
    let strategy_name = nodes[0].strategy.name().to_owned();
    let tau = config.local_steps;
    let batch_size = config.batch_size;
    let lr = config.lr;
    let eval_cap = config.eval_test_samples;
    let record_alphas = config.record_alphas;
    let mix_wait = Duration::from_millis(channel.mix_wait_ms);
    let poll = Duration::from_micros(channel.poll_us.max(1));

    // Round contexts are resolved up front, sequentially: topology
    // providers and participation models are not required to be `Sync`,
    // and resolving per-thread would also re-draw dynamic topologies n
    // times. This is the same context every other substrate would see.
    let contexts: Vec<(RoundTopology, Arc<Vec<bool>>)> = (0..rounds)
        .map(|round| {
            let topo = topology.topology(round);
            let active: Vec<bool> = (0..n).map(|i| participation.is_active(round, i)).collect();
            (topo, Arc::new(active))
        })
        .collect();

    let board = parking_lot::Mutex::new(Board {
        pending: std::collections::HashMap::new(),
        records: Vec::new(),
        rounds_run: 0,
        reached_target: None,
        alpha_rows: if record_alphas {
            vec![vec![0.0; n]; rounds]
        } else {
            Vec::new()
        },
        total_staleness_s: 0.0,
        mixed_messages: 0,
    });
    let stop = AtomicBool::new(false);

    let worker = |i: usize, mut state: NodeState<M>, params: &mut [f32]| -> Result<()> {
        // Early messages from fast neighbours, waiting for their round.
        let mut stash: Vec<jwins_net::Envelope> = Vec::new();
        for (round, (topo, active)) in contexts.iter().enumerate().take(rounds) {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let mut mixed_now = 0u64;
            let mut staleness_now = 0.0f64;
            if active[i] {
                // Pull the wires before training: frames that landed while
                // this node was mixing or evaluating get their arrival
                // stamped now, so the measured flight latency reflects the
                // wire, not the receiver's own busy time (the cross-check
                // oracle models busy time as compute, not link latency).
                stash.extend(network.drain(i, SimTime::MAX, None).envelopes);
                let wall = Instant::now();
                train_steps(&mut state, params, tau, batch_size, lr);
                tracer.emit(TraceEvent::Train {
                    t_ns: network.now().0,
                    node: i as u32,
                    round: round as u32,
                    compute_ns: wall.elapsed().as_nanos() as u64,
                });
                let neighbors = Trainer::<M>::active_neighbors(topo, active, i);
                let outbound = state.strategy.make_outbound(round, params, &neighbors)?;
                state.last_alpha = state.strategy.last_alpha();
                let now = network.now();
                let send = |to: usize, msg: crate::strategy::OutMessage| {
                    network.send(PendingSend {
                        from: i,
                        to,
                        payload: msg.bytes,
                        breakdown: msg.breakdown,
                        sent: now,
                        // The true arrival instant is the receiver's to
                        // stamp; `arrives == sent` is the send-side view.
                        arrives: now,
                        sent_round: round,
                    });
                };
                match outbound {
                    Outbound::Broadcast(msg) => {
                        for &to in &neighbors {
                            send(to, msg.clone());
                        }
                    }
                    Outbound::PerEdge(messages) => {
                        if messages.len() != neighbors.len() {
                            return Err(JwinsError::Protocol(
                                "per-edge message count mismatches neighbour count",
                            ));
                        }
                        for (&to, msg) in neighbors.iter().zip(messages) {
                            if let Some(msg) = msg {
                                send(to, msg);
                            }
                        }
                    }
                }
                // The bounded stand-in for the barrier: wait until every
                // active neighbour's round-`round` message is in, the run
                // is stopping, or the wait budget is spent.
                let deadline = Instant::now() + mix_wait;
                loop {
                    stash.extend(network.drain(i, SimTime::MAX, None).envelopes);
                    let complete = neighbors
                        .iter()
                        .all(|&j| stash.iter().any(|e| e.from == j && e.sent_round == round));
                    if complete || stop.load(Ordering::SeqCst) || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(poll);
                }
                // Split the stash: this round mixes now, future rounds wait,
                // and a message older than the current round missed the mix
                // that wanted it (its receive bytes stay metered — it did
                // cross the wire).
                let mut inbox = Vec::new();
                let mut keep = Vec::new();
                for env in stash.drain(..) {
                    match env.sent_round.cmp(&round) {
                        std::cmp::Ordering::Equal => inbox.push(env),
                        std::cmp::Ordering::Greater => keep.push(env),
                        std::cmp::Ordering::Less => {}
                    }
                }
                stash = keep;
                // Arrival interleavings are scheduler-dependent; sorting by
                // sender gives the aggregation a stable fold order.
                inbox.sort_by_key(|env| env.from);
                let graph_neighbors = topo.graph.neighbors(i);
                let now = network.now();
                let received: Vec<ReceivedMessage<'_>> = inbox
                    .iter()
                    .map(|env| {
                        let pos = graph_neighbors
                            .binary_search(&env.from)
                            .map_err(|_| JwinsError::Protocol("message from non-neighbour"))?;
                        let weight = topo.weights.neighbor_weights(i)[pos];
                        Ok(ReceivedMessage {
                            from: env.from,
                            round,
                            weight,
                            edge_weight: weight,
                            bytes: &env.payload,
                        })
                    })
                    .collect::<Result<_>>()?;
                for env in &inbox {
                    let staleness_s = now.since(env.sent).as_secs_f64();
                    staleness_now += staleness_s;
                    mixed_now += 1;
                    tracer.emit(TraceEvent::MsgMixed {
                        t_ns: now.0,
                        node: i as u32,
                        from: env.from as u32,
                        round: round as u32,
                        sent_round: env.sent_round as u32,
                        staleness_s,
                    });
                }
                let mixed = state.strategy.aggregate(
                    round,
                    params,
                    topo.weights.self_weight(i),
                    &received,
                )?;
                params.copy_from_slice(&mixed);
                state.model.set_params(params);
            }
            let is_last = round + 1 == rounds;
            let eval_due =
                is_last || (config.eval_every > 0 && (round + 1) % config.eval_every == 0);
            // Inactive nodes evaluate too — same as the barrier engine,
            // where every node's (possibly unchanged) model joins the mean.
            let eval = eval_due.then(|| evaluate_node(&mut state, params, &test, eval_cap));

            let mut board = board.lock();
            board.total_staleness_s += staleness_now;
            board.mixed_messages += mixed_now;
            if record_alphas {
                board.alpha_rows[round][i] = state.last_alpha;
            }
            let slots = board
                .pending
                .entry(round)
                .or_insert_with(|| (0..n).map(|_| None).collect());
            slots[i] = Some(Deposit {
                eval,
                train_loss: f64::from(state.last_train_loss),
                alpha: state.last_alpha,
            });
            if slots.iter().all(Option::is_some) {
                // The n-th depositor finalizes, lock held: records and the
                // early-stop decision are serialized in round order.
                let slots = board.pending.remove(&round).expect("entry just filled");
                let now = network.now();
                board.rounds_run = board.rounds_run.max(round + 1);
                tracer.emit(TraceEvent::RoundComplete {
                    t_ns: now.0,
                    round: round as u32,
                });
                if eval_due {
                    let mut merged = EvalMetrics::default();
                    let mut per_node_accuracy = Vec::with_capacity(n);
                    let mut train_loss = 0.0f64;
                    let mut mean_alpha = 0.0f64;
                    for deposit in slots.iter().map(|s| s.as_ref().expect("slot filled")) {
                        let (metrics, accuracy) =
                            deposit.eval.as_ref().expect("eval round deposits metrics");
                        merged.merge(metrics);
                        per_node_accuracy.push(*accuracy);
                        train_loss += deposit.train_loss / n as f64;
                        mean_alpha += deposit.alpha / n as f64;
                    }
                    let total = network.total_stats();
                    let mean_staleness_s = if board.mixed_messages == 0 {
                        0.0
                    } else {
                        board.total_staleness_s / board.mixed_messages as f64
                    };
                    let record = RoundRecord {
                        round,
                        train_loss,
                        test_loss: merged.mean_loss(),
                        test_accuracy: merged.accuracy(),
                        test_rmse: merged.rmse(),
                        mean_alpha,
                        cum_bytes_per_node: total.bytes_sent as f64 / n as f64,
                        cum_payload_per_node: total.payload_sent as f64 / n as f64,
                        cum_metadata_per_node: total.metadata_sent as f64 / n as f64,
                        sim_time_s: now.as_secs_f64(),
                        mean_staleness_s,
                        crashes: 0,
                        rejoins: 0,
                        messages_expired: total.messages_expired,
                        downweight_mass: 0.0,
                        edges_rewired: 0,
                        bandwidth_saved_bytes: 0,
                        attacks_injected: 0,
                        mass_clipped: 0.0,
                        per_node_accuracy,
                        checkpoint: false,
                    };
                    tracer.emit(TraceEvent::Eval {
                        t_ns: now.0,
                        round: round as u32,
                        checkpoint: false,
                        accuracy: record.test_accuracy,
                    });
                    let hit_target = config
                        .target_accuracy
                        .is_some_and(|t| record.test_accuracy >= t);
                    let bytes_per_node = record.cum_bytes_per_node;
                    board.records.push(record);
                    if hit_target && board.reached_target.is_none() {
                        board.reached_target = Some(TargetHit {
                            round,
                            sim_time_s: now.as_secs_f64(),
                            bytes_per_node,
                        });
                        stop.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
        Ok(())
    };

    let results: Vec<Result<()>> = crossbeam::thread::scope(|scope| {
        // Each node thread owns its state plus a disjoint `&mut` window of
        // the shared parameter arena; the scope joins before the arena's
        // borrow ends.
        let handles: Vec<_> = nodes
            .into_iter()
            .zip(arena.slices_mut())
            .enumerate()
            .map(|(i, (state, params))| {
                let worker = &worker;
                scope.spawn(move |_| worker(i, state, params))
            })
            .collect();
        // Joined in spawn (= node) order, so the first error reported is
        // the lowest-indexed node's regardless of thread timing.
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread must not panic"))
            .collect()
    })
    .expect("scope does not panic");
    results.into_iter().collect::<Result<Vec<()>>>()?;

    let board = board.into_inner();
    tracer.emit(TraceEvent::RunEnd {
        t_ns: network.now().0,
        rounds_run: board.rounds_run as u32,
        queue_depth_hwm: 0,
    });
    let alpha_history: Vec<Vec<f64>> = board
        .alpha_rows
        .into_iter()
        .take(board.rounds_run)
        .collect();
    Ok(RunResult {
        strategy: strategy_name,
        records: board.records,
        total_traffic: network.total_stats(),
        rounds_run: board.rounds_run,
        reached_target: board.reached_target,
        alpha_history,
        measured_latency_s: network.measured_flight().map(|f| f.mean_latency_s),
    })
}
