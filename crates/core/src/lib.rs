//! JWINS: communication-efficient decentralized learning through
//! wavelet-domain sparsification ("Get More for Less in Decentralized
//! Learning Systems", ICDCS 2023).
//!
//! Nodes train locally with SGD and exchange only a *subset* of their model
//! each round. JWINS picks that subset in the **wavelet-frequency domain**,
//! ranks coefficients by an **accumulated importance score** (error
//! feedback), draws the per-round sharing fraction from a **randomized
//! cut-off** distribution, and compresses the index metadata with **Elias
//! gamma** — recovering full-sharing accuracy at roughly a third of the
//! traffic.
//!
//! # Crate layout
//!
//! - [`strategy::ShareStrategy`]: the communicate–aggregate interface every
//!   algorithm implements.
//! - [`strategies`]: [`strategies::FullSharing`] (D-PSGD),
//!   [`strategies::RandomSampling`], [`strategies::Jwins`] (with ablation
//!   switches covering TopK), and [`strategies::ChocoSgd`]; plus the
//!   extensions [`strategies::PowerGossip`] (per-edge low-rank),
//!   [`strategies::QuantizedSharing`] (QSGD) and
//!   [`strategies::RandomModelWalk`].
//! - [`cutoff::AlphaDistribution`]: the randomized communication cut-off.
//! - [`scaling::ScoreScaling`]: per-layer adaptive importance scores (§VI
//!   future work).
//! - [`participation`]: node churn models (dropouts, scripted outages).
//! - [`sparsify`]: TopK selection over importance scores.
//! - [`average`]: renormalized partial averaging of sparse vectors.
//! - [`engine::Trainer`]: the decentralized training engine
//!   (train → communicate → aggregate, Metropolis–Hastings weights,
//!   byte-metered network, simulated wall-clock) with two execution
//!   substrates: the paper's bulk-synchronous barrier and a discrete-event
//!   asynchronous-gossip mode
//!   ([`config::ExecutionMode::EventDriven`], built on `jwins_sim`) where
//!   heterogeneous nodes mix whatever neighbour messages have arrived by
//!   their local virtual clock.
//! - [`config::TrainConfig`], [`metrics`]: experiment configuration and
//!   round-by-round records (including mix staleness under async gossip).
//!
//! # Example: two sparsification strategies on a toy task
//!
//! ```
//! use jwins::config::TrainConfig;
//! use jwins::cutoff::AlphaDistribution;
//! use jwins::engine::Trainer;
//! use jwins::strategies::{Jwins, JwinsConfig};
//! use jwins_data::images::{cifar_like, ImageConfig};
//! use jwins_nn::models::mlp_classifier;
//! use jwins_topology::dynamic::StaticTopology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = cifar_like(&ImageConfig::tiny(), 4, 2, 7);
//! let cfg = TrainConfig::quick_test();
//! let trainer = Trainer::builder(cfg)
//!     .topology(StaticTopology::random_regular(4, 2, 1)?)
//!     .test_set(data.test)
//!     .nodes(data.node_train, |node| {
//!         (
//!             mlp_classifier(2 * 8 * 8, &[16], 4, 7),
//!             Box::new(Jwins::new(JwinsConfig::paper_default(), 1000 + node as u64))
//!                 as Box<dyn jwins::strategy::ShareStrategy>,
//!         )
//!     })
//!     .build()?;
//! let result = trainer.run()?;
//! assert!(result.records.last().expect("at least one eval").test_accuracy > 0.0);
//! # Ok(())
//! # }
//! ```

pub(crate) mod arena;
pub mod average;
mod channel_driver;
pub mod config;
pub mod crosscheck;
pub mod cutoff;
pub mod engine;
pub mod metrics;
pub mod participation;
pub mod robust;
pub mod scaling;
pub mod sparsify;
pub mod strategies;
pub mod strategy;

/// Whether `JWINS_SMOKE=1` requests the CI-sized reduced configuration.
/// The `examples-smoke` and `bench-smoke` CI jobs set it so examples and
/// the smoke benches execute end to end in seconds; this is the single
/// definition of the smoke contract (`jwins_repro::smoke` and
/// `jwins_bench::smoke` delegate here).
pub fn smoke() -> bool {
    std::env::var("JWINS_SMOKE").is_ok_and(|v| v == "1")
}

use std::error::Error;
use std::fmt;

/// Errors surfaced by strategies and the engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum JwinsError {
    /// A received message failed to decode.
    Codec(jwins_codec::CodecError),
    /// Wavelet transform failure (layout mismatch).
    Wavelet(jwins_wavelet::WaveletError),
    /// Topology construction failure.
    Topology(jwins_topology::TopologyError),
    /// The engine or a strategy was driven out of protocol order.
    Protocol(&'static str),
    /// Configuration rejected at build time.
    InvalidConfig(String),
}

impl fmt::Display for JwinsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JwinsError::Codec(e) => write!(f, "message codec error: {e}"),
            JwinsError::Wavelet(e) => write!(f, "wavelet error: {e}"),
            JwinsError::Topology(e) => write!(f, "topology error: {e}"),
            JwinsError::Protocol(what) => write!(f, "protocol violation: {what}"),
            JwinsError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for JwinsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JwinsError::Codec(e) => Some(e),
            JwinsError::Wavelet(e) => Some(e),
            JwinsError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<jwins_codec::CodecError> for JwinsError {
    fn from(e: jwins_codec::CodecError) -> Self {
        JwinsError::Codec(e)
    }
}

impl From<jwins_wavelet::WaveletError> for JwinsError {
    fn from(e: jwins_wavelet::WaveletError) -> Self {
        JwinsError::Wavelet(e)
    }
}

impl From<jwins_topology::TopologyError> for JwinsError {
    fn from(e: jwins_topology::TopologyError) -> Self {
        JwinsError::Topology(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, JwinsError>;
