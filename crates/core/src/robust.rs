//! Robust aggregation as a mixing-layer wrapper (extension).
//!
//! [`RobustWrapper`] wraps any [`ShareStrategy`] whose aggregation is a
//! partial average over decoded neighbour values and routes its `aggregate`
//! calls through the strategy's [`ShareStrategy::aggregate_robust`] path,
//! where a `jwins_adversary::RobustAccumulator` screens the decoded
//! contributions (trimmed mean, coordinate-wise median, or norm clipping)
//! before they are averaged.
//!
//! The wrapper sits *between* the engine and the strategy, so robustness
//! composes with everything the engine already does at the mixing layer:
//! staleness down-weighting, churn-filtered neighbour lists and topology
//! repair all happen before the wrapped `aggregate` is called, exactly as
//! without it. Removed mass is renormalized over the surviving entries
//! inside the accumulator — the same row-stochasticity contract as
//! `StalenessPolicy::downweight_row` — so the effective mixing matrix stays
//! row-stochastic and pure gossip still preserves fixed points.
//!
//! The wrapper is installed by `TrainerBuilder::build` when
//! `TrainConfig::robust` is not [`Robust::None`]; strategies that cannot
//! re-order their update as an average (`supports_robust() == false`) are
//! rejected there as a configuration error.

use crate::strategy::{OutMessage, Outbound, PairingStats, ReceivedMessage, ShareStrategy};
use crate::Result;
use jwins_adversary::{Robust, RobustStats};

/// Decorates a [`ShareStrategy`] so every aggregation runs through the
/// configured robust rule. All other trait methods delegate untouched.
pub struct RobustWrapper {
    inner: Box<dyn ShareStrategy>,
    rule: Robust,
}

impl RobustWrapper {
    /// Wraps `inner` with `rule`.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `inner` does not support robust aggregation or
    /// the rule is a no-op — both are rejected with a proper error in
    /// `TrainerBuilder::build` before this constructor runs.
    pub fn new(inner: Box<dyn ShareStrategy>, rule: Robust) -> Self {
        debug_assert!(inner.supports_robust());
        debug_assert!(!rule.is_none());
        Self { inner, rule }
    }
}

impl ShareStrategy for RobustWrapper {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn init(&mut self, params: &[f32]) {
        self.inner.init(params);
    }

    fn make_message(&mut self, round: usize, params: &[f32]) -> Result<OutMessage> {
        self.inner.make_message(round, params)
    }

    fn make_outbound(
        &mut self,
        round: usize,
        params: &[f32],
        neighbors: &[usize],
    ) -> Result<Outbound> {
        self.inner.make_outbound(round, params, neighbors)
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        self.inner
            .aggregate_robust(round, params, self_weight, received, &self.rule)
    }

    fn last_alpha(&self) -> f64 {
        self.inner.last_alpha()
    }

    fn forget_edge(&mut self, peer: usize) {
        self.inner.forget_edge(peer);
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }

    fn pairing_stats(&mut self) -> Option<PairingStats> {
        self.inner.pairing_stats()
    }

    fn supports_robust(&self) -> bool {
        true
    }

    fn aggregate_robust(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
        rule: &Robust,
    ) -> Result<Vec<f32>> {
        // Double-wrapping cannot happen through the builder; honour an
        // explicit caller's rule over the stored one.
        self.inner
            .aggregate_robust(round, params, self_weight, received, rule)
    }

    fn robust_stats(&mut self) -> Option<RobustStats> {
        self.inner.robust_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::FullSharing;

    fn msg(strategy: &mut dyn ShareStrategy, params: &[f32]) -> OutMessage {
        strategy.make_message(0, params).unwrap()
    }

    #[test]
    fn wrapper_delegates_and_screens() {
        let dim = 8;
        let honest = vec![1.0f32; dim];
        let evil = vec![100.0f32; dim];
        let mine = vec![0.0f32; dim];

        let mut peer = FullSharing::new();
        peer.init(&honest);
        let honest_msg = msg(&mut peer, &honest);
        let evil_msg = msg(&mut peer, &evil);

        let mut wrapped = RobustWrapper::new(
            Box::new({
                let mut s = FullSharing::new();
                s.init(&mine);
                s
            }),
            Robust::Median,
        );
        assert_eq!(wrapped.name(), "full-sharing");
        let received = [
            ReceivedMessage {
                from: 1,
                round: 0,
                weight: 0.25,
                edge_weight: 0.25,
                bytes: &honest_msg.bytes,
            },
            ReceivedMessage {
                from: 2,
                round: 0,
                weight: 0.25,
                edge_weight: 0.25,
                bytes: &evil_msg.bytes,
            },
        ];
        let out = wrapped.aggregate(0, &mine, 0.5, &received).unwrap();
        // Weighted median of {0.0 (w=.5), 1.0 (w=.25), 100.0 (w=.25)} is 0.0
        // at every coordinate: the outlier cannot drag the result.
        for v in out {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn wrapper_reports_stats_via_drain() {
        let dim = 4;
        let own = vec![0.0f32; dim];
        let far = vec![50.0f32; dim];
        let mut peer = FullSharing::new();
        peer.init(&far);
        let m = msg(&mut peer, &far);
        let mut wrapped = RobustWrapper::new(
            Box::new({
                let mut s = FullSharing::new();
                s.init(&own);
                s
            }),
            Robust::NormClip { tau: 1.0 },
        );
        let _ = wrapped
            .aggregate(
                0,
                &own,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &m.bytes,
                }],
            )
            .unwrap();
        let stats = wrapped.robust_stats().expect("clip happened");
        assert_eq!(stats.clipped, 1);
        assert!(stats.mass > 0.0);
        assert!(wrapped.robust_stats().is_none(), "drain resets");
    }
}
