//! TopK selection over importance scores.
//!
//! JWINS parameter selection (paper §III-B) takes the `K` coefficients with
//! the largest *absolute* accumulated score. Selection is O(d) via
//! `select_nth_unstable` rather than a full sort, which matters at model
//! scale.

/// Returns the indices of the `k` largest `|scores[i]|`, sorted ascending
/// (the order the sparse codec requires).
///
/// Ties are broken arbitrarily but deterministically. `k >= len` returns all
/// indices.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<u32> {
    let n = scores.len();
    if k == 0 || n == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n as u32).collect();
    }
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        let fa = scores[a as usize].abs();
        let fb = scores[b as usize].abs();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Gathers `values[i]` for each selected index.
///
/// # Panics
///
/// Panics if an index is out of bounds.
pub fn gather(values: &[f32], indices: &[u32]) -> Vec<f32> {
    indices.iter().map(|&i| values[i as usize]).collect()
}

/// The ceiling of `fraction · len`, clamped to `[0, len]` — the budget `K`
/// for a sharing fraction α.
pub fn budget(len: usize, fraction: f64) -> usize {
    if fraction <= 0.0 {
        return 0;
    }
    (((len as f64) * fraction).ceil() as usize).min(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn picks_largest_magnitudes() {
        let scores = [0.1f32, -5.0, 0.0, 3.0, -0.2];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 1), vec![1]);
    }

    #[test]
    fn k_zero_and_k_full() {
        let scores = [1.0f32, 2.0];
        assert!(top_k_indices(&scores, 0).is_empty());
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
        assert_eq!(top_k_indices(&scores, 99), vec![0, 1]);
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn budget_math() {
        assert_eq!(budget(100, 0.1), 10);
        assert_eq!(budget(100, 0.101), 11);
        assert_eq!(budget(100, 1.0), 100);
        assert_eq!(budget(100, 2.0), 100);
        assert_eq!(budget(100, 0.0), 0);
        assert_eq!(budget(0, 0.5), 0);
        assert_eq!(budget(3, 0.37), 2);
    }

    #[test]
    fn gather_follows_indices() {
        let values = [10.0f32, 20.0, 30.0];
        assert_eq!(gather(&values, &[0, 2]), vec![10.0, 30.0]);
    }

    proptest! {
        #[test]
        fn topk_invariants(scores in proptest::collection::vec(-100.0f32..100.0, 1..200), k in 0usize..220) {
            let got = top_k_indices(&scores, k);
            // Size.
            prop_assert_eq!(got.len(), k.min(scores.len()));
            // Sorted and unique.
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
            // Every selected magnitude >= every unselected magnitude.
            if !got.is_empty() && got.len() < scores.len() {
                let selected: std::collections::HashSet<u32> = got.iter().copied().collect();
                let min_sel = got.iter().map(|&i| scores[i as usize].abs()).fold(f32::INFINITY, f32::min);
                let max_unsel = (0..scores.len() as u32)
                    .filter(|i| !selected.contains(i))
                    .map(|i| scores[i as usize].abs())
                    .fold(0.0f32, f32::max);
                prop_assert!(min_sel >= max_unsel, "{} < {}", min_sel, max_unsel);
            }
        }
    }
}
