//! Round-by-round experiment records.
//!
//! These are the series behind every figure: test accuracy and loss per
//! round (Figures 4–8, 10), cumulative bytes per node split into payload and
//! metadata (Figure 4 row 3, Figure 9), simulated wall-clock (Figure 6), and
//! the per-node sharing fractions (Figure 3).

use jwins_net::TrafficStats;
use serde::{Deserialize, Serialize};

/// One evaluation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Communication round (0-based; the record is taken *after* the round).
    pub round: usize,
    /// Mean training loss across nodes (last local step of the round).
    pub train_loss: f64,
    /// Mean test loss across nodes on the shared test set.
    pub test_loss: f64,
    /// Mean top-1 test accuracy across nodes.
    pub test_accuracy: f64,
    /// Mean test RMSE (regression tasks; 0 otherwise).
    pub test_rmse: f64,
    /// Mean sharing fraction α drawn this round.
    pub mean_alpha: f64,
    /// Cumulative bytes sent per node (average), total.
    pub cum_bytes_per_node: f64,
    /// Payload component of [`Self::cum_bytes_per_node`].
    pub cum_payload_per_node: f64,
    /// Metadata component of [`Self::cum_bytes_per_node`].
    pub cum_metadata_per_node: f64,
    /// Simulated wall-clock seconds elapsed since round 0.
    pub sim_time_s: f64,
    /// Mean age (in simulated seconds) of neighbour information at the
    /// moment it was mixed, cumulative over the run so far. Always `0` under
    /// bulk-synchronous execution, where every mixed message is from the
    /// current round; under event-driven gossip it quantifies how stale the
    /// consumed models were.
    #[serde(default)]
    pub mean_staleness_s: f64,
    /// Node crashes injected so far (cumulative; fault-injection runs only).
    #[serde(default)]
    pub crashes: u64,
    /// Node rejoins so far (cumulative; fault-injection runs only).
    #[serde(default)]
    pub rejoins: u64,
    /// Messages discarded by the staleness policy so far — TTL expiry at
    /// mailbox drain plus over-cap drops at mix time (cumulative).
    #[serde(default)]
    pub messages_expired: u64,
    /// Total mixing-weight mass shifted from stale neighbours to
    /// self-weights by the down-weighting policy so far (cumulative).
    #[serde(default)]
    pub downweight_mass: f64,
    /// Edges added by topology repair so far — each repaired round
    /// resolution contributes the survivor–survivor edges it wired in
    /// (cumulative; zero under `RepairPolicy::None`).
    #[serde(default)]
    pub edges_rewired: u64,
    /// Bytes *not* sent to crashed neighbours because repair removed them
    /// from the sender's topology (cumulative). Under `RepairPolicy::None`
    /// these bytes are spent on dead hosts instead — the waste the paper's
    /// cost metrics would otherwise hide.
    #[serde(default)]
    pub bandwidth_saved_bytes: u64,
    /// Byzantine perturbations injected at message-build time so far
    /// (cumulative; one per attacker per round actually sent — see
    /// `TrainConfig::attack`). Zero whenever the attack plan is a no-op.
    #[serde(default)]
    pub attacks_injected: u64,
    /// Mixing-weight mass the robust aggregation rule removed from
    /// neighbour contributions (renormalized over the survivors) so far
    /// (cumulative; see `TrainConfig::robust`). Zero under `Robust::None`.
    #[serde(default)]
    pub mass_clipped: f64,
    /// Per-node test accuracy at this evaluation, indexed by node id —
    /// exposes the fast/slow (and survivor/rejoiner) gap the cluster mean
    /// [`Self::test_accuracy`] averages away. Empty in legacy records.
    #[serde(default)]
    pub per_node_accuracy: Vec<f64>,
    /// Whether this record is a virtual-time evaluation checkpoint
    /// (`TrainConfig::eval_interval_s`) rather than a round-boundary
    /// evaluation. Checkpoints report `round` as the latest fully completed
    /// round at that instant (0 also when no round has completed yet —
    /// compare `sim_time_s` against the round-boundary records to
    /// disambiguate the earliest checkpoints).
    #[serde(default)]
    pub checkpoint: bool,
}

impl RoundRecord {
    /// Whether two records are identical down to float *bit patterns* — the
    /// comparison behind the engine's determinism guarantees (thread-count
    /// invariance, degenerate-config no-ops). Every field participates;
    /// adding a field to [`RoundRecord`] must extend this method so all
    /// callers keep the full-strength comparison.
    pub fn bits_eq(&self, other: &RoundRecord) -> bool {
        self.round == other.round
            && self.train_loss.to_bits() == other.train_loss.to_bits()
            && self.test_loss.to_bits() == other.test_loss.to_bits()
            && self.test_accuracy.to_bits() == other.test_accuracy.to_bits()
            && self.test_rmse.to_bits() == other.test_rmse.to_bits()
            && self.mean_alpha.to_bits() == other.mean_alpha.to_bits()
            && self.cum_bytes_per_node.to_bits() == other.cum_bytes_per_node.to_bits()
            && self.cum_payload_per_node.to_bits() == other.cum_payload_per_node.to_bits()
            && self.cum_metadata_per_node.to_bits() == other.cum_metadata_per_node.to_bits()
            && self.sim_time_s.to_bits() == other.sim_time_s.to_bits()
            && self.mean_staleness_s.to_bits() == other.mean_staleness_s.to_bits()
            && self.crashes == other.crashes
            && self.rejoins == other.rejoins
            && self.messages_expired == other.messages_expired
            && self.downweight_mass.to_bits() == other.downweight_mass.to_bits()
            && self.edges_rewired == other.edges_rewired
            && self.bandwidth_saved_bytes == other.bandwidth_saved_bytes
            && self.attacks_injected == other.attacks_injected
            && self.mass_clipped.to_bits() == other.mass_clipped.to_bits()
            && self.per_node_accuracy.len() == other.per_node_accuracy.len()
            && self
                .per_node_accuracy
                .iter()
                .zip(&other.per_node_accuracy)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.checkpoint == other.checkpoint
    }
}

/// Round and cost at which a target accuracy was first reached.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetHit {
    /// Round of the first evaluation at or above the target.
    pub round: usize,
    /// Simulated seconds elapsed.
    pub sim_time_s: f64,
    /// Average cumulative bytes per node at that point.
    pub bytes_per_node: f64,
}

/// The outcome of one training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Strategy name (as reported by the per-node strategy).
    pub strategy: String,
    /// All evaluation records, in round order.
    pub records: Vec<RoundRecord>,
    /// Cluster-wide traffic totals.
    pub total_traffic: TrafficStats,
    /// Rounds actually executed (early stop can shorten a run).
    pub rounds_run: usize,
    /// First time the target accuracy was met, if one was set and reached.
    pub reached_target: Option<TargetHit>,
    /// Per-round, per-node sharing fractions (only when
    /// `TrainConfig::record_alphas` is set).
    pub alpha_history: Vec<Vec<f64>>,
    /// Mean in-flight message latency the transport *measured* during the
    /// run, in seconds. `None` on the simulated backend (nothing is
    /// measured — latency is modelled); `Some` on real-concurrency
    /// backends, where the cross-check harness replays it through the sim
    /// oracle (`crate::crosscheck`). Excluded from [`Self::assert_bit_identical`]:
    /// it is a wall-clock observation, not part of the deterministic run.
    pub measured_latency_s: Option<f64>,
}

impl RunResult {
    /// The last evaluation record.
    pub fn final_record(&self) -> Option<&RoundRecord> {
        self.records.last()
    }

    /// Panics unless the two runs are observably identical, down to float
    /// bit patterns — record streams ([`RoundRecord::bits_eq`]), traffic
    /// totals and round counts. `label` prefixes the panic message. This is
    /// the one shared assertion behind the determinism tests and benches,
    /// so a new [`RoundRecord`] field tightens every call site at once.
    ///
    /// # Panics
    ///
    /// Panics on the first divergence, naming the record index.
    pub fn assert_bit_identical(&self, other: &RunResult, label: &str) {
        assert_eq!(self.rounds_run, other.rounds_run, "{label}: rounds_run");
        assert_eq!(
            self.total_traffic, other.total_traffic,
            "{label}: total traffic"
        );
        assert_eq!(
            self.records.len(),
            other.records.len(),
            "{label}: record count"
        );
        for (i, (x, y)) in self.records.iter().zip(&other.records).enumerate() {
            assert!(
                x.bits_eq(y),
                "{label}: record {i} diverges:\n  {x:?}\nvs\n  {y:?}"
            );
        }
    }

    /// Final mean test accuracy (0 when no evaluation ran).
    pub fn final_accuracy(&self) -> f64 {
        self.final_record().map_or(0.0, |r| r.test_accuracy)
    }

    /// Round-boundary evaluation records only (virtual-time checkpoints
    /// filtered out).
    pub fn round_records(&self) -> impl Iterator<Item = &RoundRecord> {
        self.records.iter().filter(|r| !r.checkpoint)
    }

    /// Virtual-time evaluation checkpoints only
    /// (`TrainConfig::eval_interval_s`).
    pub fn checkpoints(&self) -> impl Iterator<Item = &RoundRecord> {
        self.records.iter().filter(|r| r.checkpoint)
    }

    /// Total bytes sent by the whole cluster, in GiB.
    pub fn total_gib_sent(&self) -> f64 {
        self.total_traffic.bytes_sent as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Serializes the records as CSV (header + one row per evaluation).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,train_loss,test_loss,test_accuracy,test_rmse,mean_alpha,\
             cum_bytes_per_node,cum_payload_per_node,cum_metadata_per_node,sim_time_s,\
             mean_staleness_s,crashes,rejoins,messages_expired,downweight_mass,checkpoint,\
             edges_rewired,bandwidth_saved_bytes,attacks_injected,mass_clipped,\
             per_node_accuracy\n",
        );
        for r in &self.records {
            // Per-node accuracies stay one CSV cell, ';'-separated, so the
            // row shape is independent of the cluster size.
            let per_node = r
                .per_node_accuracy
                .iter()
                .map(|a| format!("{a:.6}"))
                .collect::<Vec<_>>()
                .join(";");
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.4},{:.0},{:.0},{:.0},{:.3},{:.4},{},{},{},{:.4},{},{},{},{},{:.4},{}\n",
                r.round,
                r.train_loss,
                r.test_loss,
                r.test_accuracy,
                r.test_rmse,
                r.mean_alpha,
                r.cum_bytes_per_node,
                r.cum_payload_per_node,
                r.cum_metadata_per_node,
                r.sim_time_s,
                r.mean_staleness_s,
                r.crashes,
                r.rejoins,
                r.messages_expired,
                r.downweight_mass,
                u8::from(r.checkpoint),
                r.edges_rewired,
                r.bandwidth_saved_bytes,
                r.attacks_injected,
                r.mass_clipped,
                per_node
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: f64) -> RoundRecord {
        RoundRecord {
            round,
            train_loss: 1.0,
            test_loss: 0.9,
            test_accuracy: acc,
            test_rmse: 0.0,
            mean_alpha: 0.34,
            cum_bytes_per_node: 1000.0,
            cum_payload_per_node: 900.0,
            cum_metadata_per_node: 100.0,
            sim_time_s: 12.5,
            mean_staleness_s: 0.0,
            crashes: 0,
            rejoins: 0,
            messages_expired: 0,
            downweight_mass: 0.0,
            edges_rewired: 0,
            bandwidth_saved_bytes: 0,
            attacks_injected: 0,
            mass_clipped: 0.0,
            per_node_accuracy: vec![acc; 2],
            checkpoint: false,
        }
    }

    #[test]
    fn final_accessors() {
        let result = RunResult {
            strategy: "jwins".into(),
            records: vec![record(0, 0.1), record(10, 0.5)],
            total_traffic: TrafficStats::default(),
            rounds_run: 11,
            reached_target: None,
            alpha_history: Vec::new(),
            measured_latency_s: None,
        };
        assert_eq!(result.final_accuracy(), 0.5);
        assert_eq!(result.final_record().unwrap().round, 10);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let result = RunResult {
            strategy: "full-sharing".into(),
            records: vec![record(0, 0.2)],
            total_traffic: TrafficStats::default(),
            rounds_run: 1,
            reached_target: None,
            alpha_history: Vec::new(),
            measured_latency_s: None,
        };
        let csv = result.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("round,"));
        assert!(lines[0].ends_with("per_node_accuracy"));
        assert!(lines[1].starts_with("0,"));
        assert!(
            lines[1].ends_with("0.200000;0.200000"),
            "per-node accuracies join with ';': {}",
            lines[1]
        );
        // One cell per header column regardless of cluster size.
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "row shape matches header"
        );
    }

    #[test]
    fn bits_eq_covers_the_new_fields() {
        let a = record(0, 0.5);
        assert!(a.bits_eq(&a.clone()));
        let mut b = a.clone();
        b.edges_rewired = 1;
        assert!(!a.bits_eq(&b));
        let mut b = a.clone();
        b.bandwidth_saved_bytes = 1;
        assert!(!a.bits_eq(&b));
        let mut b = a.clone();
        b.attacks_injected = 1;
        assert!(!a.bits_eq(&b));
        let mut b = a.clone();
        b.mass_clipped = 0.5;
        assert!(!a.bits_eq(&b));
        let mut b = a.clone();
        b.per_node_accuracy[1] = 0.25;
        assert!(!a.bits_eq(&b));
        let mut b = a.clone();
        b.per_node_accuracy.pop();
        assert!(!a.bits_eq(&b));
    }

    #[test]
    fn empty_run_is_safe() {
        let result = RunResult {
            strategy: "jwins".into(),
            records: Vec::new(),
            total_traffic: TrafficStats::default(),
            rounds_run: 0,
            reached_target: None,
            alpha_history: Vec::new(),
            measured_latency_s: None,
        };
        assert_eq!(result.final_accuracy(), 0.0);
        assert!(result.final_record().is_none());
    }
}
