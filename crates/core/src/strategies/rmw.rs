//! Random model walk (RMW) — single-neighbour full-model gossip.
//!
//! The paper's background names RMW as the other canonical DL communication
//! pattern next to D-PSGD: models are "shared with all (e.g., D-PSGD) or a
//! subset of neighbors (e.g., random model walk (RMW))", aggregated "by
//! performing a plain (RMW) or weighted averaging (D-PSGD)" (§II-A). This
//! strategy implements it: every round the node sends its *full* model to
//! **one** uniformly chosen neighbour and plainly averages whatever models
//! arrive with its own.
//!
//! RMW spends the full-sharing payload on a single edge, so its per-round
//! traffic is `1/d` of D-PSGD full-sharing — a useful third point between
//! full-sharing and sparsification when comparing byte budgets. Mixing is
//! slower and, because plain averaging is not doubly stochastic, the
//! cluster mean wanders (unlike the Metropolis–Hastings strategies).

use crate::strategy::{OutMessage, Outbound, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_codec::float::{FloatCodec, XorFloatCodec};
use jwins_net::ByteBreakdown;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The random-model-walk sharing strategy (one instance per node).
///
/// # Example
///
/// ```
/// use jwins::strategies::RandomModelWalk;
/// use jwins::strategy::{Outbound, ShareStrategy};
///
/// # fn main() -> jwins::Result<()> {
/// let mut node = RandomModelWalk::new(7);
/// let params = vec![0.25_f32; 64];
/// node.init(&params);
/// let Outbound::PerEdge(messages) = node.make_outbound(0, &params, &[3, 5, 8])? else {
///     unreachable!("RMW is edge-based");
/// };
/// // The full model goes to exactly one of the three neighbours.
/// assert_eq!(messages.iter().flatten().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RandomModelWalk {
    rng: ChaCha8Rng,
    codec: XorFloatCodec,
    pending_round: Option<usize>,
    dim: usize,
}

impl RandomModelWalk {
    /// Creates a node-local instance; `seed` drives this node's neighbour
    /// choice and should differ across nodes.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            codec: XorFloatCodec,
            pending_round: None,
            dim: 0,
        }
    }
}

impl ShareStrategy for RandomModelWalk {
    fn name(&self) -> &'static str {
        "random-model-walk"
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
        self.pending_round = None;
    }

    fn make_message(&mut self, _round: usize, _params: &[f32]) -> Result<OutMessage> {
        Err(JwinsError::Protocol(
            "random model walk is edge-based; the engine must call make_outbound",
        ))
    }

    fn make_outbound(
        &mut self,
        round: usize,
        params: &[f32],
        neighbors: &[usize],
    ) -> Result<Outbound> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        if self.pending_round.is_some() {
            return Err(JwinsError::Protocol(
                "make_outbound called twice in a round",
            ));
        }
        self.pending_round = Some(round);
        let mut messages: Vec<Option<OutMessage>> = vec![None; neighbors.len()];
        if !neighbors.is_empty() {
            let target = self.rng.gen_range(0..neighbors.len());
            let bytes = self.codec.encode(params);
            let breakdown = ByteBreakdown {
                payload: bytes.len(),
                metadata: 0,
            };
            messages[target] = Some(OutMessage::new(bytes, breakdown));
        }
        Ok(Outbound::PerEdge(messages))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        _self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        match self.pending_round.take() {
            Some(r) if r == round => {}
            Some(_) => return Err(JwinsError::Protocol("round number mismatch")),
            None => return Err(JwinsError::Protocol("aggregate before make_outbound")),
        }
        if received.is_empty() {
            return Ok(params.to_vec());
        }
        // Plain (unweighted) averaging over own model and every walker that
        // arrived — the RMW aggregation of §II-A.
        let mut sum: Vec<f64> = params.iter().map(|&v| f64::from(v)).collect();
        for msg in received {
            let values = self.codec.decode(msg.bytes, self.dim)?;
            if values.len() != self.dim {
                return Err(JwinsError::Protocol("model dimension mismatch"));
            }
            for (s, v) in sum.iter_mut().zip(values) {
                *s += f64::from(v);
            }
        }
        let scale = 1.0 / (received.len() + 1) as f64;
        Ok(sum.into_iter().map(|s| (s * scale) as f32).collect())
    }

    fn last_alpha(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_to_exactly_one_neighbor() {
        let mut s = RandomModelWalk::new(3);
        let x = vec![1.0f32; 32];
        s.init(&x);
        for round in 0..10 {
            let out = s.make_outbound(round, &x, &[1, 2, 3, 4]).unwrap();
            let Outbound::PerEdge(msgs) = out else {
                panic!("RMW must be per-edge")
            };
            assert_eq!(msgs.len(), 4);
            assert_eq!(msgs.iter().filter(|m| m.is_some()).count(), 1);
            let _ = s.aggregate(round, &x, 1.0, &[]).unwrap();
        }
    }

    #[test]
    fn choice_covers_all_neighbors_over_time() {
        let mut s = RandomModelWalk::new(7);
        let x = vec![0.5f32; 8];
        s.init(&x);
        let mut hit = [false; 3];
        for round in 0..60 {
            let Outbound::PerEdge(msgs) = s.make_outbound(round, &x, &[5, 6, 7]).unwrap() else {
                panic!()
            };
            let pos = msgs.iter().position(Option::is_some).unwrap();
            hit[pos] = true;
            let _ = s.aggregate(round, &x, 1.0, &[]).unwrap();
        }
        assert!(
            hit.iter().all(|&h| h),
            "some neighbour never chosen: {hit:?}"
        );
    }

    #[test]
    fn plain_averaging_of_received_walkers() {
        let mut a = RandomModelWalk::new(1);
        let mut b = RandomModelWalk::new(2);
        let xa = vec![0.0f32, 2.0];
        let xb = vec![4.0f32, 0.0];
        a.init(&xa);
        b.init(&xb);
        let _ = a.make_outbound(0, &xa, &[1]).unwrap();
        let Outbound::PerEdge(mut msgs) = b.make_outbound(0, &xb, &[0]).unwrap() else {
            panic!()
        };
        let msg = msgs.remove(0).unwrap();
        let out = a
            .aggregate(
                0,
                &xa,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg.bytes,
                }],
            )
            .unwrap();
        assert_eq!(out, vec![2.0, 1.0], "plain mean of own and received");
    }

    #[test]
    fn no_walker_means_no_change() {
        let mut s = RandomModelWalk::new(9);
        let x = vec![1.0f32, -1.0, 0.25];
        s.init(&x);
        let _ = s.make_outbound(0, &x, &[]).unwrap();
        assert_eq!(s.aggregate(0, &x, 1.0, &[]).unwrap(), x);
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut s = RandomModelWalk::new(1);
        let x = vec![1.0f32; 4];
        assert!(s.make_outbound(0, &x, &[1]).is_err(), "missing init");
        s.init(&x);
        assert!(s.make_message(0, &x).is_err(), "broadcast path rejected");
        assert!(s.aggregate(0, &x, 1.0, &[]).is_err(), "aggregate first");
        let _ = s.make_outbound(0, &x, &[1]).unwrap();
        assert!(
            s.make_outbound(0, &x, &[1]).is_err(),
            "double make_outbound"
        );
    }

    #[test]
    fn corrupt_walker_rejected() {
        let mut s = RandomModelWalk::new(1);
        let x = vec![1.0f32; 16];
        s.init(&x);
        let _ = s.make_outbound(0, &x, &[1]).unwrap();
        let garbage = [1u8, 2, 3];
        assert!(s
            .aggregate(
                0,
                &x,
                1.0,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 1.0,
                    edge_weight: 1.0,
                    bytes: &garbage
                }]
            )
            .is_err());
    }
}
