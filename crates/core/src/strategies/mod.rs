//! The algorithms under evaluation.
//!
//! | Strategy | Paper role |
//! |---|---|
//! | [`FullSharing`] | D-PSGD upper baseline: whole model every round |
//! | [`RandomSampling`] | sparse baseline: seed-shared random subsets |
//! | [`Jwins`] | the contribution; ablation flags cover "without wavelet" (≈ TopK), "without accumulation", "without cut-off" |
//! | [`ChocoSgd`] | state-of-the-art compressed-gossip comparator |
//! | [`PowerGossip`] | per-edge low-rank comparator the paper cites but does not run (extension) |
//! | [`QuantizedSharing`] | QSGD-quantized full sharing — the quantization family of §II-B (extension) |
//! | [`RandomModelWalk`] | single-neighbour full-model gossip of §II-A (extension) |

mod choco;
mod full;
mod jwins_strategy;
mod power_gossip;
mod quantized;
mod random_sampling;
mod rmw;

pub use choco::{ChocoConfig, ChocoSgd};
pub use full::FullSharing;
pub use jwins_strategy::{Jwins, JwinsConfig};
pub use power_gossip::{
    MatrixLayout, PowerGossip, PowerGossipConfig, FRESH_VERSION, HISTORY_WINDOW,
};
pub use quantized::QuantizedSharing;
pub use random_sampling::RandomSampling;
pub use rmw::RandomModelWalk;
