//! CHOCO-SGD (Koloskova et al., ICML 2019), memory-efficient variant.
//!
//! The state-of-the-art compressed-gossip comparator of the paper (§IV-D).
//! Each node keeps a public estimate `x̂_i` of its own model and the weighted
//! neighbour aggregate `s_i = Σ_{j∈N(i)} w_ij x̂_j`; only the *compressed
//! difference* `q_i = C(x_i − x̂_i)` crosses the network:
//!
//! ```text
//! x_i^{t+1/2} = x_i^t − η ∇F_i            (engine: local steps)
//! q_i = TopK(x_i^{t+1/2} − x̂_i)           (make_message)
//! x̂_i ← x̂_i + q_i                         (make_message)
//! s_i ← s_i + Σ_j w_ij q_j                 (aggregate)
//! x_i^{t+1} = x_i^{t+1/2} + γ (s_i − (1 − w_ii) x̂_i)
//! ```
//!
//! The consensus step size γ is CHOCO's extra hyperparameter; the paper
//! tunes γ = 0.6 (20% budget) and γ = 0.1 (10% budget) and observes high
//! sensitivity. Because `s_i` silently assumes a *fixed* neighbourhood and
//! fixed weights, CHOCO degrades to "practically no learning" on dynamic
//! topologies (Figure 7) — this implementation reproduces that behaviour
//! naturally rather than guarding against it.

use crate::sparsify::{budget, gather, top_k_indices};
use crate::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_codec::sparse::{IndexCodec, SparseVecCodec, ValueCodec};
use jwins_net::ByteBreakdown;

/// CHOCO-SGD configuration.
#[derive(Debug, Clone)]
pub struct ChocoConfig {
    /// Fraction of parameters in each compressed difference (TopK budget).
    pub fraction: f64,
    /// Consensus step size γ.
    pub gamma: f64,
    /// Metadata codec for the TopK index list.
    pub index_codec: IndexCodec,
    /// Value codec.
    pub value_codec: ValueCodec,
}

impl ChocoConfig {
    /// The paper's 20%-budget configuration (γ = 0.6).
    pub fn budget_20() -> Self {
        Self {
            fraction: 0.20,
            gamma: 0.6,
            index_codec: IndexCodec::EliasGammaDelta,
            value_codec: ValueCodec::Xor,
        }
    }

    /// The paper's 10%-budget configuration (γ = 0.1).
    pub fn budget_10() -> Self {
        Self {
            fraction: 0.10,
            gamma: 0.1,
            index_codec: IndexCodec::EliasGammaDelta,
            value_codec: ValueCodec::Xor,
        }
    }
}

/// Memory-efficient CHOCO-SGD with TopK compression.
#[derive(Debug)]
pub struct ChocoSgd {
    config: ChocoConfig,
    codec: SparseVecCodec,
    /// `x̂_i`: the public copy every neighbour tracks of this node.
    x_hat: Vec<f32>,
    /// `s_i = Σ_{j∈N(i)} w_ij x̂_j` under the static-topology assumption.
    s: Vec<f32>,
    pending_round: Option<usize>,
    dim: usize,
}

impl ChocoSgd {
    /// Creates a node-local instance.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1` and `0 < gamma <= 1`.
    pub fn new(config: ChocoConfig) -> Self {
        assert!(
            config.fraction > 0.0 && config.fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        assert!(
            config.gamma > 0.0 && config.gamma <= 1.0,
            "gamma must be in (0, 1]"
        );
        let codec = SparseVecCodec::new(config.index_codec, config.value_codec);
        Self {
            config,
            codec,
            x_hat: Vec::new(),
            s: Vec::new(),
            pending_round: None,
            dim: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChocoConfig {
        &self.config
    }
}

impl ShareStrategy for ChocoSgd {
    fn name(&self) -> &'static str {
        "choco-sgd"
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
        // Standard CHOCO initialization: x̂ = 0, hence s = 0.
        self.x_hat = vec![0.0; self.dim];
        self.s = vec![0.0; self.dim];
        self.pending_round = None;
    }

    fn make_message(&mut self, round: usize, params: &[f32]) -> Result<OutMessage> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        if self.pending_round.is_some() {
            return Err(JwinsError::Protocol("make_message called twice in a round"));
        }
        // q_i = TopK(x − x̂).
        let diff: Vec<f32> = params.iter().zip(&self.x_hat).map(|(x, h)| x - h).collect();
        let k = budget(self.dim, self.config.fraction);
        let indices = top_k_indices(&diff, k);
        let values = gather(&diff, &indices);
        // Apply own q to x̂ (neighbours do the same with the received copy).
        for (&i, &v) in indices.iter().zip(&values) {
            self.x_hat[i as usize] += v;
        }
        let encoded = self.codec.encode(&indices, &values)?;
        let breakdown = ByteBreakdown {
            payload: encoded.payload_bytes,
            metadata: encoded.metadata_bytes,
        };
        self.pending_round = Some(round);
        Ok(OutMessage::new(encoded.into_bytes(), breakdown))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        match self.pending_round.take() {
            Some(r) if r == round => {}
            Some(_) => return Err(JwinsError::Protocol("round number mismatch")),
            None => return Err(JwinsError::Protocol("aggregate before make_message")),
        }
        // s_i += Σ_j w_ij q_j.
        for msg in received {
            let (indices, values) = self.codec.decode(msg.bytes)?;
            if indices.last().is_some_and(|&i| i as usize >= self.dim) {
                return Err(JwinsError::Protocol("received index out of range"));
            }
            for (&i, &v) in indices.iter().zip(&values) {
                self.s[i as usize] += (msg.weight * f64::from(v)) as f32;
            }
        }
        // x ← x + γ (s − (1 − w_ii) x̂): the gossip step on the public copies.
        let gamma = self.config.gamma;
        let off_diag = 1.0 - self_weight;
        let next: Vec<f32> = params
            .iter()
            .zip(&self.s)
            .zip(&self.x_hat)
            .map(|((x, s), h)| {
                (f64::from(*x) + gamma * (f64::from(*s) - off_diag * f64::from(*h))) as f32
            })
            .collect();
        Ok(next)
    }

    fn last_alpha(&self) -> f64 {
        self.config.fraction
    }

    fn state_bytes(&self) -> usize {
        // The public replica x̂ and the neighbour aggregate s.
        (self.x_hat.len() + self.s.len()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a fully connected pair through rounds of pure gossip (no
    /// gradients) and checks consensus — CHOCO's defining property.
    #[test]
    fn pure_gossip_converges_to_consensus() {
        let dim = 40;
        let config = ChocoConfig {
            fraction: 0.5,
            gamma: 0.8,
            ..ChocoConfig::budget_20()
        };
        let mut a = ChocoSgd::new(config.clone());
        let mut b = ChocoSgd::new(config);
        let mut xa: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut xb: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).cos()).collect();
        a.init(&xa);
        b.init(&xb);
        // Two-node complete graph: w_ab = 1/2 (Metropolis), w_aa = 1/2.
        for round in 0..200 {
            let ma = a.make_message(round, &xa).unwrap();
            let mb = b.make_message(round, &xb).unwrap();
            xa = a
                .aggregate(
                    round,
                    &xa,
                    0.5,
                    &[ReceivedMessage {
                        from: 1,
                        round,
                        weight: 0.5,
                        edge_weight: 0.5,
                        bytes: &mb.bytes,
                    }],
                )
                .unwrap();
            xb = b
                .aggregate(
                    round,
                    &xb,
                    0.5,
                    &[ReceivedMessage {
                        from: 0,
                        round,
                        weight: 0.5,
                        edge_weight: 0.5,
                        bytes: &ma.bytes,
                    }],
                )
                .unwrap();
        }
        let gap: f32 = xa
            .iter()
            .zip(&xb)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f32::max);
        assert!(gap < 0.01, "consensus gap {gap}");
        // And the consensus preserves the initial mean (doubly stochastic W).
        let mean0 = |i: usize| 0.5 * ((i as f32 * 0.37).sin() + (i as f32 * 0.37).cos());
        for (i, v) in xa.iter().enumerate() {
            assert!(
                (v - mean0(i)).abs() < 0.05,
                "coord {i}: {v} vs {}",
                mean0(i)
            );
        }
    }

    #[test]
    fn message_respects_budget() {
        let mut c = ChocoSgd::new(ChocoConfig::budget_10());
        let params: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.1).sin()).collect();
        c.init(&params);
        let msg = c.make_message(0, &params).unwrap();
        // 10% of 1000 = 100 coefficients; XOR payload ≤ ~4.2 bytes each.
        assert!(
            msg.breakdown.payload <= 440,
            "payload {}",
            msg.breakdown.payload
        );
    }

    #[test]
    fn x_hat_tracks_applied_differences() {
        let mut c = ChocoSgd::new(ChocoConfig {
            fraction: 1.0,
            gamma: 1.0,
            ..ChocoConfig::budget_20()
        });
        let params = vec![2.0f32, -4.0, 6.0];
        c.init(&params);
        let _ = c.make_message(0, &params).unwrap();
        // With fraction 1, x̂ jumps straight to x.
        assert_eq!(c.x_hat, params);
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut c = ChocoSgd::new(ChocoConfig::budget_20());
        let params = vec![1.0f32; 8];
        assert!(c.make_message(0, &params).is_err(), "missing init");
        c.init(&params);
        assert!(
            c.aggregate(0, &params, 0.5, &[]).is_err(),
            "aggregate first"
        );
        let _ = c.make_message(0, &params).unwrap();
        assert!(c.make_message(0, &params).is_err(), "double make_message");
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn invalid_gamma_rejected() {
        let _ = ChocoSgd::new(ChocoConfig {
            gamma: 0.0,
            ..ChocoConfig::budget_20()
        });
    }
}
