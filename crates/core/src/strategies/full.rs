//! Full-sharing D-PSGD: the accuracy upper baseline.
//!
//! Every round each node broadcasts its whole parameter vector (float-codec
//! compressed, like all algorithms in the evaluation — the paper applies
//! Fpzip "uniformly for all the model parameters and for all experiments and
//! baselines") and aggregates with Metropolis–Hastings weights.

use crate::average::PartialAverager;
use crate::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_adversary::{Robust, RobustAccumulator, RobustStats};
use jwins_codec::float::{FloatCodec, XorFloatCodec};
use jwins_codec::varint;
use jwins_net::ByteBreakdown;

/// Full-model broadcast with weighted averaging.
#[derive(Debug, Default)]
pub struct FullSharing {
    dim: usize,
    robust_stats: RobustStats,
}

impl FullSharing {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ShareStrategy for FullSharing {
    fn name(&self) -> &'static str {
        "full-sharing"
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
    }

    fn make_message(&mut self, _round: usize, params: &[f32]) -> Result<OutMessage> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        let payload = XorFloatCodec.encode(params);
        let mut bytes = Vec::with_capacity(payload.len() + 5);
        varint::write_u64(&mut bytes, params.len() as u64);
        let header = bytes.len();
        bytes.extend_from_slice(&payload);
        Ok(OutMessage::new(
            bytes,
            ByteBreakdown {
                payload: payload.len(),
                metadata: header,
            },
        ))
    }

    fn aggregate(
        &mut self,
        _round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        let mut avg = PartialAverager::new(params, self_weight);
        for msg in received {
            let (count, used) = varint::read_u64(msg.bytes)?;
            if count as usize != params.len() {
                return Err(JwinsError::Protocol("full-sharing dimension mismatch"));
            }
            let values = XorFloatCodec.decode(&msg.bytes[used..], count as usize)?;
            avg.add_dense(&values, msg.weight);
        }
        Ok(avg.finish())
    }

    fn last_alpha(&self) -> f64 {
        1.0
    }

    fn supports_robust(&self) -> bool {
        true
    }

    fn aggregate_robust(
        &mut self,
        _round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
        rule: &Robust,
    ) -> Result<Vec<f32>> {
        let mut acc = RobustAccumulator::new(params, self_weight, *rule);
        for msg in received {
            let (count, used) = varint::read_u64(msg.bytes)?;
            if count as usize != params.len() {
                return Err(JwinsError::Protocol("full-sharing dimension mismatch"));
            }
            let values = XorFloatCodec.decode(&msg.bytes[used..], count as usize)?;
            acc.add_dense(&values, msg.weight);
        }
        let (out, stats) = acc.finish();
        self.robust_stats.absorb(stats);
        Ok(out)
    }

    fn robust_stats(&mut self) -> Option<RobustStats> {
        let stats = std::mem::take(&mut self.robust_stats);
        (!stats.is_zero()).then_some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_message(params: &[f32]) -> OutMessage {
        let mut s = FullSharing::new();
        s.init(params);
        s.make_message(0, params).expect("encodes")
    }

    #[test]
    fn message_roundtrips_through_aggregate() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![3.0f32, 4.0, 5.0];
        let msg_b = roundtrip_message(&b);
        let mut s = FullSharing::new();
        s.init(&a);
        let out = s
            .aggregate(
                0,
                &a,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg_b.bytes,
                }],
            )
            .unwrap();
        for (o, expect) in out.iter().zip([2.0f32, 3.0, 4.0]) {
            assert!((o - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn no_neighbours_is_identity() {
        let a = vec![1.5f32, -2.5];
        let mut s = FullSharing::new();
        s.init(&a);
        let out = s.aggregate(0, &a, 1.0, &[]).unwrap();
        assert_eq!(out, a);
    }

    #[test]
    fn uninitialized_strategy_errors() {
        let mut s = FullSharing::new();
        assert!(s.make_message(0, &[1.0]).is_err());
    }

    #[test]
    fn corrupt_message_rejected() {
        let a = vec![1.0f32; 4];
        let mut s = FullSharing::new();
        s.init(&a);
        let bad = [7u8, 1, 2];
        assert!(s
            .aggregate(
                0,
                &a,
                0.5,
                &[ReceivedMessage {
                    from: 0,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &bad
                }]
            )
            .is_err());
    }

    #[test]
    fn metadata_is_negligible() {
        let params = vec![0.25f32; 1000];
        let msg = roundtrip_message(&params);
        assert!(msg.breakdown.metadata <= 4);
        assert!(msg.breakdown.payload > 100);
    }
}
