//! JWINS: the paper's algorithm (§III, Algorithm 1).
//!
//! Per round `t` on node `i` (the engine does the τ local SGD steps first):
//!
//! 1. `V_i += DWT(x_i^{t,τ} − x_i^{t,0})` — accumulate the local model change
//!    in the wavelet domain (eq. 3);
//! 2. draw α from the randomized cut-off; budget `K = ⌈α·D⌉`;
//! 3. `I_i = TopK(|V_i|, K)`;
//! 4. broadcast `DWT(x_i^{t,τ})[I_i]` plus Elias-gamma-compressed `I_i`;
//! 5. average received coefficients with its own, weight-renormalized per
//!    coefficient, and invert: `x_i^{t+1,0} = DWT⁻¹(x̄)`;
//! 6. `V_i[I_i] = 0`, then `V_i += DWT(x_i^{t+1,0} − x_i^{t,τ})` — the sent
//!    scores reset and the averaging-induced change is accounted for, so
//!    across the round `V` absorbs exactly `DWT(x^{t+1,0} − x^{t,0})` minus
//!    what was shared (eq. 4).
//!
//! The three ablation switches of Figure 8 are part of the configuration:
//! disabling the wavelet turns the transform into the identity (making the
//! strategy plain TopK-with-accumulation), disabling accumulation ranks on
//! the current change only, and disabling the randomized cut-off shares the
//! distribution mean every round.

use crate::cutoff::{AlphaDistribution, CutoffSampler};
use crate::scaling::ScoreScaling;
use crate::sparsify::{budget, gather, top_k_indices};
use crate::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_adversary::{Robust, RobustAccumulator, RobustStats};
use jwins_codec::sparse::{IndexCodec, SparseVecCodec, ValueCodec};
use jwins_net::ByteBreakdown;
use jwins_wavelet::{Dwt, Wavelet, WaveletCoeffs};

/// Configuration of the JWINS strategy, including the Figure-8 ablation
/// switches.
#[derive(Debug, Clone)]
pub struct JwinsConfig {
    /// Wavelet and decomposition depth; `None` disables the transform (the
    /// "without wavelet" ablation — effectively TopK in parameter space).
    pub wavelet: Option<(Wavelet, usize)>,
    /// Accumulate importance across rounds (error feedback). Disabling ranks
    /// on the current round's change only.
    pub accumulation: bool,
    /// Draw α randomly per round; disabling uses E\[α\] every round.
    pub randomized_cutoff: bool,
    /// The cut-off distribution.
    pub alpha: AlphaDistribution,
    /// Index metadata codec (Elias gamma in the paper; raw/varint for the
    /// Figure-9 comparison).
    pub index_codec: IndexCodec,
    /// Value compression (XOR-predictive stands in for Fpzip).
    pub value_codec: ValueCodec,
    /// Optional per-layer importance scaling applied to the model change
    /// before it enters the scores (the §VI "adaptive importance score"
    /// future-work direction; `None` keeps the paper's unscaled ranking).
    pub score_scaling: Option<ScoreScaling>,
}

impl JwinsConfig {
    /// The paper's configuration: 4-level Symlet-2, accumulation, randomized
    /// cut-off over the default α list, Elias gamma metadata.
    pub fn paper_default() -> Self {
        Self {
            wavelet: Some((Wavelet::sym2(), 4)),
            accumulation: true,
            randomized_cutoff: true,
            alpha: AlphaDistribution::paper_default(),
            index_codec: IndexCodec::EliasGammaDelta,
            value_codec: ValueCodec::Xor,
            score_scaling: None,
        }
    }

    /// Paper default plus a per-layer importance scaling (the §VI
    /// "adaptive importance score" extension).
    pub fn with_score_scaling(scaling: ScoreScaling) -> Self {
        Self {
            score_scaling: Some(scaling),
            ..Self::paper_default()
        }
    }

    /// Paper default with a custom α distribution (used by the low-budget
    /// Figure-6 runs).
    pub fn with_alpha(alpha: AlphaDistribution) -> Self {
        Self {
            alpha,
            ..Self::paper_default()
        }
    }

    /// Plain TopK baseline: no wavelet, fixed fraction, with accumulation.
    pub fn topk(fraction: f64) -> Self {
        Self {
            wavelet: None,
            accumulation: true,
            randomized_cutoff: false,
            alpha: AlphaDistribution::Fixed(fraction),
            ..Self::paper_default()
        }
    }

    /// The "without wavelet" ablation of Figure 8.
    pub fn without_wavelet() -> Self {
        Self {
            wavelet: None,
            ..Self::paper_default()
        }
    }

    /// The "without accumulation" ablation of Figure 8.
    pub fn without_accumulation() -> Self {
        Self {
            accumulation: false,
            ..Self::paper_default()
        }
    }

    /// The "without randomized cut-off" ablation of Figure 8.
    pub fn without_random_cutoff() -> Self {
        Self {
            randomized_cutoff: false,
            ..Self::paper_default()
        }
    }
}

/// The coefficient-domain representation: either a real DWT or the identity
/// (ablation).
#[derive(Debug)]
enum Transform {
    Wavelet(Dwt),
    Identity,
}

impl Transform {
    fn forward(&self, params: &[f32]) -> Vec<f32> {
        match self {
            Transform::Wavelet(dwt) => dwt.forward(params).data,
            Transform::Identity => params.to_vec(),
        }
    }

    fn inverse(&self, coeffs: Vec<f32>, dim: usize) -> Result<Vec<f32>> {
        match self {
            Transform::Wavelet(dwt) => {
                let layout = dwt.layout_for(dim);
                let wrapped = WaveletCoeffs::from_parts(coeffs, layout)?;
                Ok(dwt.inverse(&wrapped)?)
            }
            Transform::Identity => Ok(coeffs),
        }
    }

    fn coeff_len(&self, dim: usize) -> usize {
        match self {
            Transform::Wavelet(dwt) => dwt.layout_for(dim).coeff_len(),
            Transform::Identity => dim,
        }
    }
}

/// Per-round state carried from `make_message` to `aggregate`.
#[derive(Debug)]
struct PendingRound {
    round: usize,
    /// `DWT(x^{t,τ})` — reused for averaging.
    own_coeffs: Vec<f32>,
    /// Indices shared this round (to reset in `V`).
    sent: Vec<u32>,
}

/// The JWINS sharing strategy (one instance per node).
#[derive(Debug)]
pub struct Jwins {
    config: JwinsConfig,
    transform: Transform,
    codec: SparseVecCodec,
    cutoff: CutoffSampler,
    /// Accumulated importance scores `V_i` (coefficient domain).
    scores: Vec<f32>,
    /// `x_i^{t,0}` — parameters at the start of the current round.
    round_start: Vec<f32>,
    pending: Option<PendingRound>,
    dim: usize,
    last_alpha: f64,
    robust_stats: RobustStats,
}

impl Jwins {
    /// Creates a node-local instance. `seed` drives only this node's cut-off
    /// draws (nodes must use distinct seeds — the paper's cut-off is
    /// independent per node).
    ///
    /// # Panics
    ///
    /// Panics if the α distribution is invalid.
    pub fn new(config: JwinsConfig, seed: u64) -> Self {
        config
            .alpha
            .validate()
            .expect("alpha distribution must be valid");
        let transform = match &config.wavelet {
            Some((wavelet, levels)) => Transform::Wavelet(
                Dwt::new(wavelet.clone(), *levels).expect("levels >= 1 by construction"),
            ),
            None => Transform::Identity,
        };
        let codec = SparseVecCodec::new(config.index_codec, config.value_codec);
        let cutoff = CutoffSampler::new(config.alpha.clone(), seed, config.randomized_cutoff);
        Self {
            config,
            transform,
            codec,
            cutoff,
            scores: Vec::new(),
            round_start: Vec::new(),
            pending: None,
            dim: 0,
            last_alpha: 0.0,
            robust_stats: RobustStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &JwinsConfig {
        &self.config
    }

    /// Read-only view of the accumulated importance scores (for tests and
    /// diagnostics).
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// Inverts the averaged coefficients and applies the eq-4 bookkeeping
    /// (sent-score reset, averaging change absorbed, round-start advance) —
    /// shared by the plain and the robust aggregation paths so the two
    /// differ only in how coefficients are averaged.
    fn commit_averaged(
        &mut self,
        pending: &PendingRound,
        params: &[f32],
        averaged: Vec<f32>,
    ) -> Result<Vec<f32>> {
        let next = self.transform.inverse(averaged, self.dim)?;
        for &i in &pending.sent {
            self.scores[i as usize] = 0.0;
        }
        let mut avg_delta: Vec<f32> = next.iter().zip(params).map(|(a, b)| a - b).collect();
        if let Some(scaling) = &self.config.score_scaling {
            scaling.apply(&mut avg_delta);
        }
        let avg_delta_coeffs = self.transform.forward(&avg_delta);
        for (s, d) in self.scores.iter_mut().zip(&avg_delta_coeffs) {
            *s += d;
        }
        self.round_start = next.clone();
        Ok(next)
    }
}

impl ShareStrategy for Jwins {
    fn name(&self) -> &'static str {
        match (&self.config.wavelet, self.config.accumulation) {
            (Some(_), true) => "jwins",
            (Some(_), false) => "jwins-no-accumulation",
            (None, true) => "jwins-no-wavelet",
            (None, false) => "topk-plain",
        }
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
        self.scores = vec![0.0; self.transform.coeff_len(self.dim)];
        self.round_start = params.to_vec();
        self.pending = None;
    }

    fn make_message(&mut self, round: usize, params: &[f32]) -> Result<OutMessage> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        if self.pending.is_some() {
            return Err(JwinsError::Protocol("make_message called twice in a round"));
        }
        if let Some(scaling) = &self.config.score_scaling {
            scaling.validate_dim(self.dim)?;
        }
        // Eq. (3): accumulate the local change in the coefficient domain,
        // optionally rebalanced per layer (§VI adaptive-score extension).
        let mut delta: Vec<f32> = params
            .iter()
            .zip(&self.round_start)
            .map(|(a, b)| a - b)
            .collect();
        if let Some(scaling) = &self.config.score_scaling {
            scaling.apply(&mut delta);
        }
        let delta_coeffs = self.transform.forward(&delta);
        if self.config.accumulation {
            for (s, d) in self.scores.iter_mut().zip(&delta_coeffs) {
                *s += d;
            }
        } else {
            self.scores.copy_from_slice(&delta_coeffs);
        }
        // Randomized cut-off → budget → TopK selection.
        let alpha = self.cutoff.next_alpha();
        self.last_alpha = alpha;
        let k = budget(self.scores.len(), alpha);
        let indices = top_k_indices(&self.scores, k);
        // Share DWT(x^{t,τ}) at the selected indices.
        let own_coeffs = self.transform.forward(params);
        let values = gather(&own_coeffs, &indices);
        let encoded = self.codec.encode(&indices, &values)?;
        let breakdown = ByteBreakdown {
            payload: encoded.payload_bytes,
            metadata: encoded.metadata_bytes,
        };
        self.pending = Some(PendingRound {
            round,
            own_coeffs,
            sent: indices,
        });
        Ok(OutMessage::new(encoded.into_bytes(), breakdown))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        let pending = self
            .pending
            .take()
            .ok_or(JwinsError::Protocol("aggregate before make_message"))?;
        if pending.round != round {
            return Err(JwinsError::Protocol("round number mismatch"));
        }
        // Average in the wavelet domain, renormalizing per coefficient.
        let mut avg = crate::average::PartialAverager::new(&pending.own_coeffs, self_weight);
        for msg in received {
            let (indices, values) = self.codec.decode(msg.bytes)?;
            if indices
                .last()
                .is_some_and(|&i| i as usize >= self.scores.len())
            {
                return Err(JwinsError::Protocol(
                    "received coefficient index out of range",
                ));
            }
            avg.add_sparse(&indices, &values, msg.weight);
        }
        let averaged = avg.finish();
        // Eq. (4) bookkeeping: sent scores reset, averaging change absorbed
        // (scaled the same way as the training change, so score units match).
        self.commit_averaged(&pending, params, averaged)
    }

    fn last_alpha(&self) -> f64 {
        self.last_alpha
    }

    fn supports_robust(&self) -> bool {
        true
    }

    fn aggregate_robust(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
        rule: &Robust,
    ) -> Result<Vec<f32>> {
        let pending = self
            .pending
            .take()
            .ok_or(JwinsError::Protocol("aggregate before make_message"))?;
        if pending.round != round {
            return Err(JwinsError::Protocol("round number mismatch"));
        }
        // Same per-coefficient renormalized average as `aggregate`, but the
        // robust rule screens neighbor coefficients (in the wavelet domain —
        // trimming happens where the sharing happens).
        let mut acc = RobustAccumulator::new(&pending.own_coeffs, self_weight, *rule);
        for msg in received {
            let (indices, values) = self.codec.decode(msg.bytes)?;
            if indices
                .last()
                .is_some_and(|&i| i as usize >= self.scores.len())
            {
                return Err(JwinsError::Protocol(
                    "received coefficient index out of range",
                ));
            }
            acc.add_sparse(&indices, &values, msg.weight);
        }
        let (averaged, stats) = acc.finish();
        self.robust_stats.absorb(stats);
        self.commit_averaged(&pending, params, averaged)
    }

    fn robust_stats(&mut self) -> Option<RobustStats> {
        let stats = std::mem::take(&mut self.robust_stats);
        (!stats.is_zero()).then_some(stats)
    }

    fn state_bytes(&self) -> usize {
        // Accumulation vector V plus the round-start snapshot.
        (self.scores.len() + self.round_start.len()) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_pair(config: JwinsConfig, dim: usize) -> (Jwins, Jwins, Vec<f32>, Vec<f32>) {
        let mut a = Jwins::new(config.clone(), 1);
        let mut b = Jwins::new(config, 2);
        let xa: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).sin()).collect();
        let xb: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).cos()).collect();
        a.init(&xa);
        b.init(&xb);
        (a, b, xa, xb)
    }

    #[test]
    fn full_alpha_roundtrip_matches_dense_average() {
        // With α ≡ 1, JWINS degenerates to full-sharing (in coefficient
        // space), so the aggregate must equal the weighted parameter average.
        let config = JwinsConfig {
            alpha: AlphaDistribution::Fixed(1.0),
            ..JwinsConfig::paper_default()
        };
        let (mut a, mut b, xa, xb) = make_pair(config, 101);
        let _ = a.make_message(0, &xa).unwrap();
        let msg_b = b.make_message(0, &xb).unwrap();
        let out = a
            .aggregate(
                0,
                &xa,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg_b.bytes,
                }],
            )
            .unwrap();
        for ((o, pa), pb) in out.iter().zip(&xa).zip(&xb) {
            let expect = 0.5 * pa + 0.5 * pb;
            assert!((o - expect).abs() < 1e-3, "{o} vs {expect}");
        }
    }

    #[test]
    fn no_neighbours_reconstructs_own_model() {
        let (mut a, _, xa, _) = make_pair(JwinsConfig::paper_default(), 77);
        let _ = a.make_message(0, &xa).unwrap();
        let out = a.aggregate(0, &xa, 1.0, &[]).unwrap();
        for (o, p) in out.iter().zip(&xa) {
            assert!((o - p).abs() < 1e-4, "{o} vs {p}");
        }
    }

    #[test]
    fn budget_respected_in_message_size() {
        let config = JwinsConfig {
            alpha: AlphaDistribution::Fixed(0.1),
            randomized_cutoff: false,
            ..JwinsConfig::paper_default()
        };
        let dim = 1000;
        let mut s = Jwins::new(config, 3);
        let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.01).sin()).collect();
        s.init(&x);
        // Perturb so scores are nonzero.
        let x2: Vec<f32> = x.iter().map(|v| v + 0.01).collect();
        let msg = s.make_message(0, &x2).unwrap();
        // ~10% of coefficients as f32 ≈ 400 payload bytes upper bound (XOR
        // codec ≤ raw + small constant).
        assert!(
            msg.breakdown.payload < 600,
            "payload {} too large for 10% budget",
            msg.breakdown.payload
        );
        assert!((s.last_alpha() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn scores_reset_after_sending() {
        let config = JwinsConfig {
            alpha: AlphaDistribution::Fixed(0.2),
            randomized_cutoff: false,
            ..JwinsConfig::paper_default()
        };
        let (mut a, _, xa, _) = make_pair(config, 64);
        let x2: Vec<f32> = xa.iter().map(|v| v * 1.5 + 0.1).collect();
        let _ = a.make_message(0, &x2).unwrap();
        let sent = a.pending.as_ref().unwrap().sent.clone();
        assert!(!sent.is_empty());
        let out = a.aggregate(0, &x2, 1.0, &[]).unwrap();
        // After a no-neighbour aggregate the model is (numerically) the same,
        // so the eq-4 correction is ~0 and sent scores stay ~0.
        for &i in &sent {
            assert!(
                a.scores()[i as usize].abs() < 1e-3,
                "score {i} = {}",
                a.scores()[i as usize]
            );
        }
        let _ = out;
    }

    #[test]
    fn accumulation_carries_unsent_importance() {
        let config = JwinsConfig {
            alpha: AlphaDistribution::Fixed(0.05),
            randomized_cutoff: false,
            ..JwinsConfig::paper_default()
        };
        let dim = 200;
        let mut s = Jwins::new(config, 9);
        let x0 = vec![0.0f32; dim];
        s.init(&x0);
        // Round 0: a change too widespread for the 5% budget.
        let x1: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin() * 0.1).collect();
        let _ = s.make_message(0, &x1).unwrap();
        let _ = s.aggregate(0, &x1, 1.0, &[]).unwrap();
        // Un-sent importance must persist.
        let live = s.scores().iter().filter(|v| v.abs() > 1e-6).count();
        assert!(live > dim / 2, "only {live} scores persisted");
    }

    #[test]
    fn ablation_identity_transform_shares_parameters() {
        let config = JwinsConfig {
            alpha: AlphaDistribution::Fixed(1.0),
            ..JwinsConfig::without_wavelet()
        };
        let (mut a, mut b, xa, xb) = make_pair(config, 50);
        let _ = a.make_message(0, &xa).unwrap();
        let msg = b.make_message(0, &xb).unwrap();
        let out = a
            .aggregate(
                0,
                &xa,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg.bytes,
                }],
            )
            .unwrap();
        for ((o, pa), pb) in out.iter().zip(&xa).zip(&xb) {
            // Identity transform: exact parameter-space averaging.
            assert!((o - (0.5 * pa + 0.5 * pb)).abs() < 1e-6);
        }
    }

    #[test]
    fn protocol_violations_are_errors() {
        let (mut a, _, xa, _) = make_pair(JwinsConfig::paper_default(), 30);
        assert!(a.aggregate(0, &xa, 1.0, &[]).is_err(), "aggregate first");
        let _ = a.make_message(0, &xa).unwrap();
        assert!(a.make_message(0, &xa).is_err(), "double make_message");
        let mut fresh = Jwins::new(JwinsConfig::paper_default(), 1);
        assert!(fresh.make_message(0, &xa).is_err(), "missing init");
    }

    #[test]
    fn corrupt_neighbour_message_rejected() {
        let (mut a, _, xa, _) = make_pair(JwinsConfig::paper_default(), 30);
        let _ = a.make_message(0, &xa).unwrap();
        let garbage = [0xFFu8, 0xFF, 0x01];
        assert!(a
            .aggregate(
                0,
                &xa,
                1.0,
                &[ReceivedMessage {
                    from: 0,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &garbage
                }]
            )
            .is_err());
    }

    #[test]
    fn score_scaling_biases_selection_toward_boosted_segment() {
        // Two equal "layers"; the second gets a 50× score boost. With an
        // identity transform (no wavelet mixing) and a tight budget, the
        // selected indices must concentrate in the boosted half.
        let dim = 200;
        let scaling = ScoreScaling::new(vec![(100, 1.0), (100, 50.0)]).unwrap();
        let config = JwinsConfig {
            wavelet: None,
            alpha: AlphaDistribution::Fixed(0.1),
            randomized_cutoff: false,
            score_scaling: Some(scaling),
            ..JwinsConfig::paper_default()
        };
        let mut s = Jwins::new(config, 5);
        let x0 = vec![0.0f32; dim];
        s.init(&x0);
        // A uniform change across the whole model.
        let x1 = vec![0.1f32; dim];
        let _ = s.make_message(0, &x1).unwrap();
        let sent = s.pending.as_ref().unwrap().sent.clone();
        assert_eq!(sent.len(), 20);
        assert!(
            sent.iter().all(|&i| i >= 100),
            "boosted segment not preferred: {sent:?}"
        );
    }

    #[test]
    fn score_scaling_dim_mismatch_is_error() {
        let scaling = ScoreScaling::new(vec![(7, 2.0)]).unwrap();
        let config = JwinsConfig::with_score_scaling(scaling);
        let mut s = Jwins::new(config, 1);
        let x = vec![0.0f32; 10];
        s.init(&x);
        assert!(
            s.make_message(0, &x).is_err(),
            "7-param scaling on 10-param model"
        );
    }

    #[test]
    fn scaled_jwins_still_reconstructs_with_full_alpha() {
        let dim = 96;
        let scaling = ScoreScaling::inverse_size(&[32, 64]).unwrap();
        let config = JwinsConfig {
            alpha: AlphaDistribution::Fixed(1.0),
            score_scaling: Some(scaling),
            ..JwinsConfig::paper_default()
        };
        let (mut a, mut b, xa, xb) = make_pair(config, dim);
        let _ = a.make_message(0, &xa).unwrap();
        let msg = b.make_message(0, &xb).unwrap();
        let out = a
            .aggregate(
                0,
                &xa,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg.bytes,
                }],
            )
            .unwrap();
        // Scaling affects only the ranking, never the shared values: with
        // α = 1 the result is still the exact average.
        for ((o, pa), pb) in out.iter().zip(&xa).zip(&xb) {
            assert!((o - (0.5 * pa + 0.5 * pb)).abs() < 1e-3);
        }
    }

    #[test]
    fn randomized_cutoff_varies_alpha() {
        let (mut a, _, xa, _) = make_pair(JwinsConfig::paper_default(), 40);
        let mut alphas = std::collections::HashSet::new();
        let mut x = xa.clone();
        for round in 0..20 {
            x[round % 40] += 0.1;
            let _ = a.make_message(round, &x).unwrap();
            alphas.insert((a.last_alpha() * 100.0) as u64);
            x = a.aggregate(round, &x, 1.0, &[]).unwrap();
        }
        assert!(alphas.len() > 2, "cut-off never varied: {alphas:?}");
    }
}
