//! Random-sampling sparsification (the paper's sparse baseline, §II-B2a).
//!
//! Each round a random subset of parameters of a fixed size is shared. All
//! nodes derive the subset from a **common pseudo-random generator**, so the
//! metadata reduces to a constant-size token (the round number doubles as
//! the seed) instead of an index list — the trick the paper highlights for
//! this baseline. Aggregation renormalizes weights over the shared subset.
//!
//! Note the subtlety this reproduces: with a *common* seed, all nodes share
//! the same coordinates in a given round, so the subset mixes well but the
//! remaining coordinates receive no updates that round — which is why random
//! sampling converges slower than JWINS at equal budget (Figures 4–5).

use crate::average::PartialAverager;
use crate::sparsify::budget;
use crate::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_adversary::{Robust, RobustAccumulator, RobustStats};
use jwins_codec::float::{FloatCodec, XorFloatCodec};
use jwins_codec::varint;
use jwins_net::ByteBreakdown;
use rand::seq::index::sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Seed-shared random subset sparsification.
#[derive(Debug)]
pub struct RandomSampling {
    /// Fraction of parameters shared every round (0.37 matches JWINS's
    /// measured budget in the paper's Table I runs).
    fraction: f64,
    /// Seed shared by the whole cluster.
    shared_seed: u64,
    dim: usize,
    robust_stats: RobustStats,
}

impl RandomSampling {
    /// Creates the strategy; `fraction` is the per-round sharing budget and
    /// `shared_seed` must be identical on every node.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn new(fraction: f64, shared_seed: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        Self {
            fraction,
            shared_seed,
            dim: 0,
            robust_stats: RobustStats::default(),
        }
    }

    /// The common per-round index subset, ascending.
    fn round_indices(&self, round: usize) -> Vec<u32> {
        let k = budget(self.dim, self.fraction);
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.shared_seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut idx: Vec<u32> = sample(&mut rng, self.dim, k)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        idx.sort_unstable();
        idx
    }
}

impl ShareStrategy for RandomSampling {
    fn name(&self) -> &'static str {
        "random-sampling"
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
    }

    fn make_message(&mut self, round: usize, params: &[f32]) -> Result<OutMessage> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        let indices = self.round_indices(round);
        let values: Vec<f32> = indices.iter().map(|&i| params[i as usize]).collect();
        let payload = XorFloatCodec.encode(&values);
        // Metadata: just the round token — receivers regenerate the indices
        // from the common seed.
        let mut bytes = Vec::with_capacity(payload.len() + 12);
        varint::write_u64(&mut bytes, round as u64);
        varint::write_u64(&mut bytes, values.len() as u64);
        let header = bytes.len();
        bytes.extend_from_slice(&payload);
        Ok(OutMessage::new(
            bytes,
            ByteBreakdown {
                payload: payload.len(),
                metadata: header,
            },
        ))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        let indices = self.round_indices(round);
        let mut avg = PartialAverager::new(params, self_weight);
        for msg in received {
            let (msg_round, used1) = varint::read_u64(msg.bytes)?;
            if msg_round != round as u64 {
                return Err(JwinsError::Protocol("random-sampling round mismatch"));
            }
            let (count, used2) = varint::read_u64(&msg.bytes[used1..])?;
            if count as usize != indices.len() {
                return Err(JwinsError::Protocol("random-sampling subset size mismatch"));
            }
            let values = XorFloatCodec.decode(&msg.bytes[used1 + used2..], count as usize)?;
            avg.add_sparse(&indices, &values, msg.weight);
        }
        Ok(avg.finish())
    }

    fn last_alpha(&self) -> f64 {
        self.fraction
    }

    fn supports_robust(&self) -> bool {
        true
    }

    fn aggregate_robust(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
        rule: &Robust,
    ) -> Result<Vec<f32>> {
        let indices = self.round_indices(round);
        let mut acc = RobustAccumulator::new(params, self_weight, *rule);
        for msg in received {
            let (msg_round, used1) = varint::read_u64(msg.bytes)?;
            if msg_round != round as u64 {
                return Err(JwinsError::Protocol("random-sampling round mismatch"));
            }
            let (count, used2) = varint::read_u64(&msg.bytes[used1..])?;
            if count as usize != indices.len() {
                return Err(JwinsError::Protocol("random-sampling subset size mismatch"));
            }
            let values = XorFloatCodec.decode(&msg.bytes[used1 + used2..], count as usize)?;
            acc.add_sparse(&indices, &values, msg.weight);
        }
        let (out, stats) = acc.finish();
        self.robust_stats.absorb(stats);
        Ok(out)
    }

    fn robust_stats(&mut self) -> Option<RobustStats> {
        let stats = std::mem::take(&mut self.robust_stats);
        (!stats.is_zero()).then_some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_are_common_across_nodes_and_vary_per_round() {
        let mut a = RandomSampling::new(0.3, 42);
        let mut b = RandomSampling::new(0.3, 42);
        a.init(&vec![0.0; 100]);
        b.init(&vec![0.0; 100]);
        assert_eq!(a.round_indices(0), b.round_indices(0));
        assert_ne!(a.round_indices(0), a.round_indices(1));
        assert_eq!(a.round_indices(5).len(), 30);
        let _ = (
            a.make_message(0, &vec![0.0; 100]),
            b.make_message(0, &vec![0.0; 100]),
        );
    }

    #[test]
    fn aggregate_only_touches_subset() {
        let dim = 50;
        let mut sender = RandomSampling::new(0.2, 7);
        let mut receiver = RandomSampling::new(0.2, 7);
        let theirs = vec![10.0f32; dim];
        let mine = vec![0.0f32; dim];
        sender.init(&theirs);
        receiver.init(&mine);
        let msg = sender.make_message(3, &theirs).unwrap();
        let out = receiver
            .aggregate(
                3,
                &mine,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 3,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg.bytes,
                }],
            )
            .unwrap();
        let subset: std::collections::HashSet<u32> =
            receiver.round_indices(3).into_iter().collect();
        for (k, &v) in out.iter().enumerate() {
            if subset.contains(&(k as u32)) {
                assert!((v - 5.0).abs() < 1e-6, "subset coord {k}: {v}");
            } else {
                assert_eq!(v, 0.0, "untouched coord {k} changed");
            }
        }
    }

    #[test]
    fn metadata_is_constant_size() {
        let mut s = RandomSampling::new(0.5, 1);
        let params = vec![1.0f32; 4000];
        s.init(&params);
        let msg = s.make_message(1000, &params).unwrap();
        assert!(msg.breakdown.metadata <= 4, "seed-only metadata expected");
    }

    #[test]
    fn round_mismatch_detected() {
        let mut s = RandomSampling::new(0.5, 1);
        let params = vec![1.0f32; 10];
        s.init(&params);
        let msg = s.make_message(1, &params).unwrap();
        assert!(s
            .aggregate(
                2,
                &params,
                0.5,
                &[ReceivedMessage {
                    from: 0,
                    round: 2,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg.bytes
                }]
            )
            .is_err());
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn zero_fraction_rejected() {
        let _ = RandomSampling::new(0.0, 1);
    }
}
