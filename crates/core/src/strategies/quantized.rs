//! Quantized full-sharing: the other compression family (extension).
//!
//! The paper's background (§II-B) splits ML compression into *quantization*
//! (fewer bits per parameter — QSGD) and *sparsification* (fewer parameters —
//! JWINS). Its evaluation only covers the sparsification side; this strategy
//! fills in the quantization column so the benchmark suite can ablate the
//! two families on equal footing: every round the full parameter vector is
//! shared, but stochastically quantized to `levels` magnitude levels
//! (QSGD, Alistarh et al. 2017), shrinking each coordinate from 32 bits to
//! roughly `log2(levels) + 2` bits.
//!
//! Stochastic rounding keeps the quantizer *unbiased*, so gossip averaging
//! still contracts toward the cluster mean — but with a noise floor set by
//! the quantization error, which is exactly the behaviour the
//! `ext_quantization` bench measures against JWINS at a matched byte budget.

use crate::average::PartialAverager;
use crate::strategy::{OutMessage, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_adversary::{Robust, RobustAccumulator, RobustStats};
use jwins_codec::quantize::Qsgd;
use jwins_net::ByteBreakdown;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Full-model sharing through a QSGD quantizer.
///
/// # Example
///
/// ```
/// use jwins::strategies::QuantizedSharing;
/// use jwins::strategy::ShareStrategy;
///
/// # fn main() -> jwins::Result<()> {
/// let mut node = QuantizedSharing::new(255, 7); // "8-bit" QSGD
/// let params = vec![0.5_f32; 1000];
/// node.init(&params);
/// let msg = node.make_message(0, &params)?;
/// // ~10-12 bits per coordinate instead of 32.
/// assert!(msg.bytes.len() < 1000 * 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QuantizedSharing {
    quantizer: Qsgd,
    rng: ChaCha8Rng,
    pending_round: Option<usize>,
    dim: usize,
    robust_stats: RobustStats,
}

impl QuantizedSharing {
    /// Creates a node-local instance quantizing to `levels` levels (255 ≈
    /// "8-bit QSGD"). `seed` drives this node's stochastic rounding and
    /// should differ across nodes.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`.
    pub fn new(levels: u32, seed: u64) -> Self {
        Self {
            quantizer: Qsgd::new(levels),
            rng: ChaCha8Rng::seed_from_u64(seed),
            pending_round: None,
            dim: 0,
            robust_stats: RobustStats::default(),
        }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u32 {
        self.quantizer.levels()
    }
}

impl ShareStrategy for QuantizedSharing {
    fn name(&self) -> &'static str {
        "quantized-full"
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
        self.pending_round = None;
    }

    fn make_message(&mut self, round: usize, params: &[f32]) -> Result<OutMessage> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        if self.pending_round.is_some() {
            return Err(JwinsError::Protocol("make_message called twice in a round"));
        }
        let rng = &mut self.rng;
        let bytes = self.quantizer.encode(params, || rng.gen_range(0.0f32..1.0));
        let breakdown = ByteBreakdown {
            payload: bytes.len(),
            metadata: 0,
        };
        self.pending_round = Some(round);
        Ok(OutMessage::new(bytes, breakdown))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        match self.pending_round.take() {
            Some(r) if r == round => {}
            Some(_) => return Err(JwinsError::Protocol("round number mismatch")),
            None => return Err(JwinsError::Protocol("aggregate before make_message")),
        }
        let mut avg = PartialAverager::new(params, self_weight);
        for msg in received {
            let values = self.quantizer.decode(msg.bytes, self.dim)?;
            avg.add_dense(&values, msg.weight);
        }
        Ok(avg.finish())
    }

    fn last_alpha(&self) -> f64 {
        1.0
    }

    fn supports_robust(&self) -> bool {
        true
    }

    fn aggregate_robust(
        &mut self,
        round: usize,
        params: &[f32],
        self_weight: f64,
        received: &[ReceivedMessage<'_>],
        rule: &Robust,
    ) -> Result<Vec<f32>> {
        match self.pending_round.take() {
            Some(r) if r == round => {}
            Some(_) => return Err(JwinsError::Protocol("round number mismatch")),
            None => return Err(JwinsError::Protocol("aggregate before make_message")),
        }
        let mut acc = RobustAccumulator::new(params, self_weight, *rule);
        for msg in received {
            let values = self.quantizer.decode(msg.bytes, self.dim)?;
            acc.add_dense(&values, msg.weight);
        }
        let (out, stats) = acc.finish();
        self.robust_stats.absorb(stats);
        Ok(out)
    }

    fn robust_stats(&mut self) -> Option<RobustStats> {
        let stats = std::mem::take(&mut self.robust_stats);
        (!stats.is_zero()).then_some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_pair(dim: usize) -> (Vec<f32>, Vec<f32>) {
        let xa: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.21).sin()).collect();
        let xb: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.21).cos()).collect();
        (xa, xb)
    }

    #[test]
    fn aggregate_approximates_weighted_average() {
        let (xa, xb) = vec_pair(200);
        let mut a = QuantizedSharing::new(4095, 1);
        let mut b = QuantizedSharing::new(4095, 2);
        a.init(&xa);
        b.init(&xb);
        let _ = a.make_message(0, &xa).unwrap();
        let msg = b.make_message(0, &xb).unwrap();
        let out = a
            .aggregate(
                0,
                &xa,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &msg.bytes,
                }],
            )
            .unwrap();
        // Quantization error ≤ ‖x‖/levels per coordinate; halved by the 0.5
        // weight. Generous bound:
        let norm: f32 = xb.iter().map(|v| v * v).sum::<f32>().sqrt();
        let tol = norm / 4095.0;
        for ((o, pa), pb) in out.iter().zip(&xa).zip(&xb) {
            let expect = 0.5 * pa + 0.5 * pb;
            assert!((o - expect).abs() <= tol, "{o} vs {expect} (tol {tol})");
        }
    }

    #[test]
    fn quantized_message_is_much_smaller_than_raw() {
        let (xa, _) = vec_pair(4000);
        let mut s = QuantizedSharing::new(255, 3);
        s.init(&xa);
        let msg = s.make_message(0, &xa).unwrap();
        // 8-bit QSGD ⇒ ~10-12 bits/coord with gamma-coded levels, vs 32 raw.
        assert!(
            msg.bytes.len() < 4000 * 2,
            "{} bytes for 4000 params",
            msg.bytes.len()
        );
        assert_eq!(msg.breakdown.metadata, 0, "no index metadata needed");
    }

    #[test]
    fn gossip_converges_to_noise_floor() {
        let (mut xa, mut xb) = vec_pair(100);
        let mut a = QuantizedSharing::new(1023, 4);
        let mut b = QuantizedSharing::new(1023, 5);
        a.init(&xa);
        b.init(&xb);
        for round in 0..40 {
            let ma = a.make_message(round, &xa).unwrap();
            let mb = b.make_message(round, &xb).unwrap();
            let na = a
                .aggregate(
                    round,
                    &xa,
                    0.5,
                    &[ReceivedMessage {
                        from: 1,
                        round,
                        weight: 0.5,
                        edge_weight: 0.5,
                        bytes: &mb.bytes,
                    }],
                )
                .unwrap();
            let nb = b
                .aggregate(
                    round,
                    &xb,
                    0.5,
                    &[ReceivedMessage {
                        from: 0,
                        round,
                        weight: 0.5,
                        edge_weight: 0.5,
                        bytes: &ma.bytes,
                    }],
                )
                .unwrap();
            xa = na;
            xb = nb;
        }
        let gap: f32 = xa
            .iter()
            .zip(&xb)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f32::max);
        assert!(gap < 0.05, "gap {gap} above quantization noise floor");
    }

    #[test]
    fn protocol_violations_are_errors() {
        let (xa, _) = vec_pair(10);
        let mut s = QuantizedSharing::new(255, 1);
        assert!(s.make_message(0, &xa).is_err(), "missing init");
        s.init(&xa);
        assert!(s.aggregate(0, &xa, 0.5, &[]).is_err(), "aggregate first");
        let _ = s.make_message(0, &xa).unwrap();
        assert!(s.make_message(0, &xa).is_err(), "double make_message");
    }

    #[test]
    fn corrupt_message_rejected() {
        let (xa, _) = vec_pair(10);
        let mut s = QuantizedSharing::new(255, 1);
        s.init(&xa);
        let _ = s.make_message(0, &xa).unwrap();
        let garbage = [0x7Fu8, 0xFF, 0xFF, 0xFF]; // huge norm, then EOF
        assert!(s
            .aggregate(
                0,
                &xa,
                0.5,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &garbage
                }]
            )
            .is_err());
    }

    #[test]
    fn distinct_seeds_give_distinct_rounding() {
        let (xa, _) = vec_pair(500);
        let mut a = QuantizedSharing::new(7, 1);
        let mut b = QuantizedSharing::new(7, 2);
        a.init(&xa);
        b.init(&xa);
        let ma = a.make_message(0, &xa).unwrap();
        let mb = b.make_message(0, &xa).unwrap();
        assert_ne!(&ma.bytes[..], &mb.bytes[..], "stochastic rounding differs");
    }
}
