//! PowerGossip (Vogels et al., NeurIPS 2020) — per-edge low-rank
//! compression (extension).
//!
//! The paper names PowerGossip as "another strong communication-efficient
//! algorithm for DL, but it performs as good as tuned CHOCO in their
//! experiments. Hence, we only compare against CHOCO here" (§IV-B-c). This
//! module implements it anyway, so the benchmark suite can check that claim
//! instead of citing it: PowerGossip needs no step-size hyperparameter
//! (CHOCO's γ), which is exactly the property JWINS advertises for itself.
//!
//! For every edge `{i, j}` the algorithm approximates the *pairwise model
//! difference* `D = X_low − X_high` (endpoints ordered canonically) by
//! low-rank power iteration without either side ever materializing `D`:
//! multiplying `D` by a vector only needs `X_i v` and `X_j v`, one locally
//! computed vector from each endpoint. Both endpoints then apply the
//! antisymmetric gossip update
//!
//! ```text
//! x_low  ← x_low  − w_ij · P̂ ΔQᵀ
//! x_high ← x_high + w_ij · P̂ ΔQᵀ
//! ```
//!
//! which preserves the cluster-wide parameter mean exactly, like any doubly
//! stochastic gossip step.
//!
//! **Matricization matters.** The original PowerGossip factorizes *each
//! layer's* natural weight matrix (conv banks as `[out, in·k·k]`, linear as
//! `[out, in]`, biases as columns a rank-1 factor captures exactly), because
//! SGD updates of those matrices are near-low-rank — a property a global
//! near-square reshape of the flat vector destroys. [`MatrixLayout`] exposes
//! both: [`MatrixLayout::Segments`] (the faithful per-layer design, fed from
//! `param_segments()` in `jwins-nn`) and [`MatrixLayout::GlobalSquare`]
//! (the strawman, kept for the ablation).
//!
//! **Transport requirements.** Edge state stays consistent because both
//! endpoints see the same exchanges: symmetric node churn (both directions
//! skip a round together) is fine, but *asymmetric message loss* — one
//! direction of an edge delivered, the other dropped — desynchronizes the
//! warm-started factors. Run PowerGossip on reliable links
//! (`TrainConfig::message_loss = 0`, the default); the broadcast strategies
//! tolerate loss because they renormalize per received message.
//!
//! Adaptation to the bulk-synchronous engine: the power iteration is
//! *pipelined* across rounds. A round-`t` message carries `P = M Q` for the
//! query matrix `Q` warm-started in round `t−1`, together with `Q' = Mᵀ P̂`
//! for the left factor `P̂` orthonormalized in round `t−1`, so from the
//! second round onward every round applies one low-rank update per edge.

use crate::strategy::{OutMessage, Outbound, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_net::ByteBreakdown;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// How the flat parameter vector is viewed as matrices for factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatrixLayout {
    /// One zero-padded near-square matrix over the whole vector. Cheap to
    /// set up but discards the per-layer low-rank structure; kept as the
    /// ablation arm.
    GlobalSquare,
    /// One matrix per parameter block, `(rows, cols)` in flat order with
    /// products summing to the model dimension — the original PowerGossip
    /// design. Column blocks (`cols == 1`, e.g. biases) are represented
    /// exactly by rank 1.
    Segments(Vec<(usize, usize)>),
}

/// PowerGossip configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerGossipConfig {
    /// Target rank per matrix (clamped per segment to `min(rows, cols)`;
    /// the PowerGossip paper defaults to 1 or 2).
    pub rank: usize,
    /// Matricization of the flat parameter vector.
    pub layout: MatrixLayout,
}

impl PowerGossipConfig {
    /// Per-layer factorization at `rank` — the faithful configuration.
    /// `segments` come from the model (e.g. `ImageClassifier::param_segments`).
    pub fn per_layer(rank: usize, segments: Vec<(usize, usize)>) -> Self {
        Self {
            rank,
            layout: MatrixLayout::Segments(segments),
        }
    }

    /// Single global near-square matrix at `rank` (the ablation arm).
    pub fn global(rank: usize) -> Self {
        Self {
            rank,
            layout: MatrixLayout::GlobalSquare,
        }
    }
}

impl Default for PowerGossipConfig {
    fn default() -> Self {
        Self::global(1)
    }
}

/// One matrix view over the flat vector.
#[derive(Debug, Clone, Copy)]
struct Seg {
    offset: usize,
    rows: usize,
    cols: usize,
    /// Effective rank: `min(config.rank, rows, cols)`.
    rank: usize,
    /// Real parameters in this segment (`< rows*cols` only for the padded
    /// global layout).
    len: usize,
}

impl Seg {
    fn p_len(&self) -> usize {
        self.rows * self.rank
    }

    fn q_len(&self) -> usize {
        self.cols * self.rank
    }

    /// Copies this segment out of the flat vector, zero-padding the tail.
    fn extract(&self, flat: &[f32]) -> Vec<f32> {
        let mut m = vec![0.0f32; self.rows * self.cols];
        m[..self.len].copy_from_slice(&flat[self.offset..self.offset + self.len]);
        m
    }

    /// Writes the (possibly padded) matrix back into the flat vector.
    fn write_back(&self, flat: &mut [f32], m: &[f32]) {
        flat[self.offset..self.offset + self.len].copy_from_slice(&m[..self.len]);
    }
}

/// Per-edge power-iteration state, kept bitwise-identical on both endpoints.
#[derive(Debug, Clone)]
struct EdgeState {
    /// Query planes `Q_s` per segment (`cols_s × rank_s`, plane-major).
    q: Vec<Vec<f32>>,
    /// Orthonormal left factors `P̂_s` from the previous round (possibly
    /// all-zero planes where the difference vanished).
    p_hat: Option<Vec<Vec<f32>>>,
}

/// Own contribution to an edge, remembered between `make_outbound` and
/// `aggregate`.
#[derive(Debug)]
struct EdgePending {
    /// `P_s = M_s Q_s` per segment.
    p_own: Vec<Vec<f32>>,
    /// `Q'_s = M_sᵀ P̂_s` per segment, when `P̂` existed.
    q_own: Option<Vec<Vec<f32>>>,
}

#[derive(Debug)]
struct PendingRound {
    round: usize,
    per_edge: HashMap<usize, EdgePending>,
}

/// The PowerGossip sharing strategy (one instance per node).
///
/// Unlike the broadcast strategies, PowerGossip sends a *different* message
/// to every neighbour, so it implements [`ShareStrategy::make_outbound`] and
/// rejects plain [`ShareStrategy::make_message`].
///
/// # Example
///
/// ```
/// use jwins::strategies::{PowerGossip, PowerGossipConfig};
/// use jwins::strategy::{Outbound, ShareStrategy};
///
/// # fn main() -> jwins::Result<()> {
/// // Per-layer matricization: a [16, 25] weight block plus its bias column.
/// let config = PowerGossipConfig::per_layer(2, vec![(16, 25), (16, 1)]);
/// let mut node = PowerGossip::new(config, 0, 42); // node 0, cluster seed 42
/// let params = vec![0.1_f32; 16 * 25 + 16];
/// node.init(&params);
/// let Outbound::PerEdge(messages) = node.make_outbound(0, &params, &[1, 2])? else {
///     unreachable!("power gossip is edge-based");
/// };
/// assert_eq!(messages.len(), 2, "one message per neighbour");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PowerGossip {
    config: PowerGossipConfig,
    /// This node's id — needed to orient every edge canonically.
    node_id: usize,
    /// Seed all nodes share, so fresh edges start from identical `Q`.
    shared_seed: u64,
    segs: Vec<Seg>,
    edges: HashMap<usize, EdgeState>,
    pending: Option<PendingRound>,
    dim: usize,
}

impl PowerGossip {
    /// Creates a node-local instance. `node_id` must be the node's engine
    /// index and `shared_seed` must be identical across the cluster (it
    /// seeds the per-edge warm-start queries both endpoints must agree on).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or a segment has a zero dimension.
    pub fn new(config: PowerGossipConfig, node_id: usize, shared_seed: u64) -> Self {
        assert!(config.rank >= 1, "rank must be at least 1");
        if let MatrixLayout::Segments(segments) = &config.layout {
            assert!(!segments.is_empty(), "segment layout must be non-empty");
            for &(r, c) in segments {
                assert!(r > 0 && c > 0, "segment dimensions must be positive");
            }
        }
        Self {
            config,
            node_id,
            shared_seed,
            segs: Vec::new(),
            edges: HashMap::new(),
            pending: None,
            dim: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PowerGossipConfig {
        &self.config
    }

    /// Returns `(low, high)` for the edge to `peer`.
    fn orient(&self, peer: usize) -> (usize, usize) {
        if self.node_id < peer {
            (self.node_id, peer)
        } else {
            (peer, self.node_id)
        }
    }

    /// Deterministic initial query planes for an edge: both endpoints
    /// derive the same `Q` from `(shared_seed, low, high)`.
    fn fresh_edge(&self, peer: usize) -> EdgeState {
        let (low, high) = self.orient(peer);
        let mut z = self
            .shared_seed
            .wrapping_add((low as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((high as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = ChaCha8Rng::seed_from_u64(z ^ (z >> 31));
        let q = self
            .segs
            .iter()
            .map(|seg| {
                let mut planes = vec![0.0f32; seg.q_len()];
                for v in &mut planes {
                    *v = rng.gen_range(-1.0f32..1.0);
                }
                orthonormalize_planes(&mut planes, seg.cols, seg.rank);
                planes
            })
            .collect();
        EdgeState { q, p_hat: None }
    }

    fn message_p_len(&self) -> usize {
        self.segs.iter().map(Seg::p_len).sum()
    }

    fn message_q_len(&self) -> usize {
        self.segs.iter().map(Seg::q_len).sum()
    }

    fn encode(&self, pending: &EdgePending) -> OutMessage {
        // Wire: 1 header byte (bit0 = has Q' part), then raw LE f32 planes,
        // all segments' P blocks then all segments' Q' blocks.
        let has_q = pending.q_own.is_some();
        let floats = self.message_p_len() + if has_q { self.message_q_len() } else { 0 };
        let mut bytes = Vec::with_capacity(1 + 4 * floats);
        bytes.push(u8::from(has_q));
        for block in &pending.p_own {
            for &v in block {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        if let Some(q) = &pending.q_own {
            for block in q {
                for &v in block {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        let payload = bytes.len() - 1;
        OutMessage::new(
            bytes,
            ByteBreakdown {
                payload,
                metadata: 1,
            },
        )
    }

    #[allow(clippy::type_complexity)]
    fn decode(&self, bytes: &[u8]) -> Result<(Vec<Vec<f32>>, Option<Vec<Vec<f32>>>)> {
        let Some((&header, body)) = bytes.split_first() else {
            return Err(JwinsError::Protocol("empty power-gossip message"));
        };
        if header > 1 {
            return Err(JwinsError::Protocol("invalid power-gossip header"));
        }
        let has_q = header == 1;
        let expected = 4 * (self.message_p_len() + if has_q { self.message_q_len() } else { 0 });
        if body.len() != expected {
            return Err(JwinsError::Protocol("power-gossip message length mismatch"));
        }
        let mut cursor = body;
        let mut read_block = |n: usize| -> Vec<f32> {
            let (head, rest) = cursor.split_at(4 * n);
            cursor = rest;
            head.chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect()
        };
        let p: Vec<Vec<f32>> = self.segs.iter().map(|s| read_block(s.p_len())).collect();
        let q = has_q.then(|| self.segs.iter().map(|s| read_block(s.q_len())).collect());
        Ok((p, q))
    }
}

/// Computes `P = M Q` for plane-major `Q` (`rank` planes of `cols` each),
/// producing plane-major `P` (`rank` planes of `rows` each).
fn mat_mul_planes(m: &[f32], rows: usize, cols: usize, q: &[f32], rank: usize) -> Vec<f32> {
    debug_assert_eq!(q.len(), cols * rank);
    let mut out = vec![0.0f32; rows * rank];
    for k in 0..rank {
        let q_plane = &q[k * cols..(k + 1) * cols];
        let out_plane = &mut out[k * rows..(k + 1) * rows];
        for (r, o) in out_plane.iter_mut().enumerate() {
            let row = &m[r * cols..(r + 1) * cols];
            let mut acc = 0.0f64;
            for (a, b) in row.iter().zip(q_plane) {
                acc += f64::from(*a) * f64::from(*b);
            }
            *o = acc as f32;
        }
    }
    out
}

/// Computes `Q = Mᵀ P` for plane-major `P`, producing plane-major `Q`.
fn mat_t_mul_planes(m: &[f32], rows: usize, cols: usize, p: &[f32], rank: usize) -> Vec<f32> {
    debug_assert_eq!(p.len(), rows * rank);
    let mut out = vec![0.0f32; cols * rank];
    for k in 0..rank {
        let p_plane = &p[k * rows..(k + 1) * rows];
        let out_plane = &mut out[k * cols..(k + 1) * cols];
        for (r, &pv) in p_plane.iter().enumerate() {
            if pv == 0.0 {
                continue;
            }
            let row = &m[r * cols..(r + 1) * cols];
            for (o, &mv) in out_plane.iter_mut().zip(row) {
                *o += (f64::from(mv) * f64::from(pv)) as f32;
            }
        }
    }
    out
}

/// In-place modified Gram–Schmidt over `rank` planes of length `n`.
/// Near-zero planes are zeroed (their updates contribute nothing).
fn orthonormalize_planes(planes: &mut [f32], n: usize, rank: usize) {
    debug_assert_eq!(planes.len(), n * rank);
    for k in 0..rank {
        for prev in 0..k {
            let dot: f64 = (0..n)
                .map(|i| f64::from(planes[k * n + i]) * f64::from(planes[prev * n + i]))
                .sum();
            for i in 0..n {
                planes[k * n + i] -= (dot * f64::from(planes[prev * n + i])) as f32;
            }
        }
        let norm: f64 = (0..n)
            .map(|i| f64::from(planes[k * n + i]).powi(2))
            .sum::<f64>()
            .sqrt();
        if norm < 1e-12 {
            planes[k * n..(k + 1) * n].fill(0.0);
        } else {
            for i in 0..n {
                planes[k * n + i] = (f64::from(planes[k * n + i]) / norm) as f32;
            }
        }
    }
}

impl ShareStrategy for PowerGossip {
    /// PowerGossip's per-edge P̂/Q̂ warm starts assume both endpoints
    /// exchange messages for the *same* round; a stale message would be
    /// paired with the wrong iteration's subspace state.
    fn tolerates_stale_messages(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        match self.config.layout {
            MatrixLayout::GlobalSquare => "power-gossip-global",
            MatrixLayout::Segments(_) => "power-gossip",
        }
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
        self.segs = match &self.config.layout {
            MatrixLayout::GlobalSquare => {
                let rows = ((self.dim as f64).sqrt().ceil() as usize).max(1);
                let cols = self.dim.div_ceil(rows).max(1);
                vec![Seg {
                    offset: 0,
                    rows,
                    cols,
                    rank: self.config.rank.min(rows).min(cols),
                    len: self.dim,
                }]
            }
            MatrixLayout::Segments(segments) => {
                let mut offset = 0usize;
                let segs: Vec<Seg> = segments
                    .iter()
                    .map(|&(rows, cols)| {
                        let seg = Seg {
                            offset,
                            rows,
                            cols,
                            rank: self.config.rank.min(rows).min(cols),
                            len: rows * cols,
                        };
                        offset += rows * cols;
                        seg
                    })
                    .collect();
                assert_eq!(
                    offset, self.dim,
                    "segment layout covers {offset} parameters but the model has {}",
                    self.dim
                );
                segs
            }
        };
        self.edges.clear();
        self.pending = None;
    }

    fn make_message(&mut self, _round: usize, _params: &[f32]) -> Result<OutMessage> {
        Err(JwinsError::Protocol(
            "power gossip is edge-based; the engine must call make_outbound",
        ))
    }

    fn make_outbound(
        &mut self,
        round: usize,
        params: &[f32],
        neighbors: &[usize],
    ) -> Result<Outbound> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        if self.pending.is_some() {
            return Err(JwinsError::Protocol(
                "make_outbound called twice in a round",
            ));
        }
        let mats: Vec<Vec<f32>> = self.segs.iter().map(|s| s.extract(params)).collect();
        let mut per_edge = HashMap::with_capacity(neighbors.len());
        let mut messages = Vec::with_capacity(neighbors.len());
        for &peer in neighbors {
            if !self.edges.contains_key(&peer) {
                let fresh = self.fresh_edge(peer);
                self.edges.insert(peer, fresh);
            }
            let state = &self.edges[&peer];
            let p_own: Vec<Vec<f32>> = self
                .segs
                .iter()
                .zip(&mats)
                .zip(&state.q)
                .map(|((seg, m), q)| mat_mul_planes(m, seg.rows, seg.cols, q, seg.rank))
                .collect();
            let q_own = state.p_hat.as_ref().map(|p_hat| {
                self.segs
                    .iter()
                    .zip(&mats)
                    .zip(p_hat)
                    .map(|((seg, m), ph)| mat_t_mul_planes(m, seg.rows, seg.cols, ph, seg.rank))
                    .collect::<Vec<_>>()
            });
            let pend = EdgePending { p_own, q_own };
            messages.push(Some(self.encode(&pend)));
            per_edge.insert(peer, pend);
        }
        self.pending = Some(PendingRound { round, per_edge });
        Ok(Outbound::PerEdge(messages))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        _self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        let pending = self
            .pending
            .take()
            .ok_or(JwinsError::Protocol("aggregate before make_outbound"))?;
        if pending.round != round {
            return Err(JwinsError::Protocol("round number mismatch"));
        }
        let mut flat = params.to_vec();
        let mut mats: Vec<Vec<f32>> = self.segs.iter().map(|s| s.extract(params)).collect();
        for msg in received {
            let Some(pend) = pending.per_edge.get(&msg.from) else {
                return Err(JwinsError::Protocol("message from unexpected edge"));
            };
            let (p_peer, q_peer) = self.decode(msg.bytes)?;
            let (low, _) = self.orient(msg.from);
            let i_am_low = low == self.node_id;
            // Canonical Δ = own_low − own_high, identical on both endpoints.
            let orient = |own: &[f32], theirs: &[f32]| -> Vec<f32> {
                own.iter()
                    .zip(theirs)
                    .map(|(a, b)| if i_am_low { a - b } else { b - a })
                    .collect()
            };
            let state = self
                .edges
                .get_mut(&msg.from)
                .expect("edge created in make_outbound");
            // Pipelined update: last round's P̂ with this round's ΔQ'.
            if let (Some(q_own), Some(q_peer), Some(p_hat)) =
                (&pend.q_own, &q_peer, state.p_hat.as_ref())
            {
                let sign = if i_am_low { -1.0f64 } else { 1.0 };
                let theta = sign * msg.weight;
                let mut q_next = Vec::with_capacity(self.segs.len());
                for (((seg, m), (qo, qp)), ph) in self
                    .segs
                    .iter()
                    .zip(&mut mats)
                    .zip(q_own.iter().zip(q_peer))
                    .zip(p_hat)
                {
                    let delta_q = orient(qo, qp);
                    // x ← x ∓ w · P̂ ΔQᵀ (minus on the low endpoint).
                    for k in 0..seg.rank {
                        let p_plane = &ph[k * seg.rows..(k + 1) * seg.rows];
                        let q_plane = &delta_q[k * seg.cols..(k + 1) * seg.cols];
                        for (r, &pv) in p_plane.iter().enumerate() {
                            if pv == 0.0 {
                                continue;
                            }
                            let coeff = theta * f64::from(pv);
                            let row = &mut m[r * seg.cols..(r + 1) * seg.cols];
                            for (cell, &qv) in row.iter_mut().zip(q_plane) {
                                *cell = (f64::from(*cell) + coeff * f64::from(qv)) as f32;
                            }
                        }
                    }
                    // Warm-start next round's query (power iteration).
                    let mut next = delta_q;
                    orthonormalize_planes(&mut next, seg.cols, seg.rank);
                    q_next.push(next);
                }
                // Keep the old query where the difference vanished, so the
                // iteration can restart from a non-degenerate direction.
                for (cur, next) in state.q.iter_mut().zip(q_next) {
                    if next.iter().any(|v| *v != 0.0) {
                        *cur = next;
                    }
                }
            }
            // New left factors for next round's Q' exchange.
            let p_hat_next: Vec<Vec<f32>> = self
                .segs
                .iter()
                .zip(pend.p_own.iter().zip(&p_peer))
                .map(|(seg, (po, pp))| {
                    let mut dp = orient(po, pp);
                    orthonormalize_planes(&mut dp, seg.rows, seg.rank);
                    dp
                })
                .collect();
            state.p_hat = Some(p_hat_next);
        }
        for (seg, m) in self.segs.iter().zip(&mats) {
            seg.write_back(&mut flat, m);
        }
        Ok(flat)
    }

    fn last_alpha(&self) -> f64 {
        // Per-edge fraction of the model actually moved per round.
        (self.message_p_len() + self.message_q_len()) as f64 / self.dim.max(1) as f64
    }

    fn state_bytes(&self) -> usize {
        self.edges
            .values()
            .map(|e| {
                let q: usize = e.q.iter().map(Vec::len).sum();
                let p: usize = e
                    .p_hat
                    .as_ref()
                    .map_or(0, |ph| ph.iter().map(Vec::len).sum());
                (q + p) * std::mem::size_of::<f32>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_with(
        config: PowerGossipConfig,
        dim: usize,
    ) -> (PowerGossip, PowerGossip, Vec<f32>, Vec<f32>) {
        let mut a = PowerGossip::new(config.clone(), 0, 99);
        let mut b = PowerGossip::new(config, 1, 99);
        let xa: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.13).sin()).collect();
        let xb: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.13).cos()).collect();
        a.init(&xa);
        b.init(&xb);
        (a, b, xa, xb)
    }

    fn pair(dim: usize, rank: usize) -> (PowerGossip, PowerGossip, Vec<f32>, Vec<f32>) {
        pair_with(PowerGossipConfig::global(rank), dim)
    }

    /// One full exchange between a and b with weight w; returns new params.
    fn exchange(
        a: &mut PowerGossip,
        b: &mut PowerGossip,
        round: usize,
        xa: &[f32],
        xb: &[f32],
        w: f64,
    ) -> (Vec<f32>, Vec<f32>) {
        let out_a = a.make_outbound(round, xa, &[1]).unwrap();
        let out_b = b.make_outbound(round, xb, &[0]).unwrap();
        let msg_a = match out_a {
            Outbound::PerEdge(mut v) => v.remove(0).unwrap(),
            Outbound::Broadcast(_) => panic!("power gossip must be per-edge"),
        };
        let msg_b = match out_b {
            Outbound::PerEdge(mut v) => v.remove(0).unwrap(),
            Outbound::Broadcast(_) => panic!("power gossip must be per-edge"),
        };
        let xa2 = a
            .aggregate(
                round,
                xa,
                1.0 - w,
                &[ReceivedMessage {
                    from: 1,
                    weight: w,
                    bytes: &msg_b.bytes,
                }],
            )
            .unwrap();
        let xb2 = b
            .aggregate(
                round,
                xb,
                1.0 - w,
                &[ReceivedMessage {
                    from: 0,
                    weight: w,
                    bytes: &msg_a.bytes,
                }],
            )
            .unwrap();
        (xa2, xb2)
    }

    fn max_gap(xa: &[f32], xb: &[f32]) -> f32 {
        xa.iter()
            .zip(xb)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn pure_gossip_contracts_to_consensus() {
        let (mut a, mut b, mut xa, mut xb) = pair(100, 1);
        let initial = max_gap(&xa, &xb);
        for round in 0..120 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        let gap = max_gap(&xa, &xb);
        assert!(gap < initial * 0.05, "no contraction: {gap} vs {initial}");
    }

    #[test]
    fn rank_two_contracts_faster() {
        let run = |rank: usize| {
            let (mut a, mut b, mut xa, mut xb) = pair(144, rank);
            for round in 0..40 {
                let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
                xa = na;
                xb = nb;
            }
            xa.iter()
                .zip(&xb)
                .map(|(p, q)| f64::from(p - q).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let g1 = run(1);
        let g2 = run(2);
        assert!(g2 < g1, "rank-2 gap {g2} not below rank-1 gap {g1}");
    }

    #[test]
    fn per_layer_layout_contracts_faster_than_global() {
        // A "model" of two 12×12 blocks whose difference is exactly rank-1
        // per block: the per-layer factorization removes it in a handful of
        // rounds, while the global reshape mixes the blocks and cannot.
        let segments = vec![(12, 12), (12, 12)];
        let dim = 288;
        let base: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.05).sin()).collect();
        let mut delta = vec![0.0f32; dim];
        for blk in 0..2 {
            for r in 0..12 {
                for c in 0..12 {
                    // Outer product u vᵀ per block.
                    delta[blk * 144 + r * 12 + c] =
                        ((r + 1) as f32 * 0.1) * ((c as f32 * 0.4 + blk as f32).cos());
                }
            }
        }
        let xb_init: Vec<f32> = base.iter().zip(&delta).map(|(a, d)| a + d).collect();
        let run = |config: PowerGossipConfig| {
            let mut a = PowerGossip::new(config.clone(), 0, 7);
            let mut b = PowerGossip::new(config, 1, 7);
            let mut xa = base.clone();
            let mut xb = xb_init.clone();
            a.init(&xa);
            b.init(&xb);
            for round in 0..8 {
                let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
                xa = na;
                xb = nb;
            }
            max_gap(&xa, &xb)
        };
        let per_layer = run(PowerGossipConfig::per_layer(1, segments));
        let global = run(PowerGossipConfig::global(1));
        assert!(
            per_layer < global * 0.2,
            "per-layer {per_layer} not much better than global {global}"
        );
    }

    #[test]
    fn column_segments_are_exact_at_rank_one() {
        // Bias-like [len, 1] blocks: rank-1 represents the difference
        // exactly, so two nodes agree after the first pipelined update.
        let config = PowerGossipConfig::per_layer(1, vec![(10, 1), (6, 1)]);
        let (mut a, mut b, mut xa, mut xb) = pair_with(config, 16);
        for round in 0..4 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert!(max_gap(&xa, &xb) < 1e-5, "gap {}", max_gap(&xa, &xb));
    }

    #[test]
    fn updates_preserve_parameter_mean() {
        let (mut a, mut b, mut xa, mut xb) = pair(60, 1);
        let mean0: Vec<f64> = xa
            .iter()
            .zip(&xb)
            .map(|(p, q)| (f64::from(*p) + f64::from(*q)) / 2.0)
            .collect();
        for round in 0..30 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        for ((p, q), m0) in xa.iter().zip(&xb).zip(&mean0) {
            let m = (f64::from(*p) + f64::from(*q)) / 2.0;
            assert!((m - m0).abs() < 1e-3, "mean drifted: {m} vs {m0}");
        }
    }

    #[test]
    fn message_bytes_scale_with_rank_and_dims() {
        let (mut a, _, xa, _) = pair(400, 1); // 20x20 matrix
        let out = a.make_outbound(0, &xa, &[1]).unwrap();
        let Outbound::PerEdge(msgs) = out else {
            panic!()
        };
        let msg = msgs[0].as_ref().unwrap();
        // Round 0 has no Q' part: 1 header + 20 rows × 4 bytes.
        assert_eq!(msg.bytes.len(), 1 + 20 * 4);
        let xa2 = a.aggregate(0, &xa, 0.5, &[]).unwrap();
        assert_eq!(xa2, xa, "no neighbours, no change");
    }

    #[test]
    fn endpoints_stay_in_sync_through_missing_rounds() {
        // Round 1 is skipped on both sides (churn): edge state must remain
        // consistent and later rounds must still contract.
        let (mut a, mut b, mut xa, mut xb) = pair(81, 1);
        let (na, nb) = exchange(&mut a, &mut b, 0, &xa, &xb, 0.5);
        xa = na;
        xb = nb;
        // Round 1: both endpoints are "inactive" — no calls at all.
        for round in 2..80 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert!(max_gap(&xa, &xb) < 0.05, "gap {}", max_gap(&xa, &xb));
    }

    #[test]
    fn identical_models_produce_no_update() {
        let config = PowerGossipConfig::default();
        let mut a = PowerGossip::new(config.clone(), 0, 5);
        let mut b = PowerGossip::new(config, 1, 5);
        let x: Vec<f32> = (0..49).map(|i| i as f32 * 0.01).collect();
        a.init(&x);
        b.init(&x);
        let mut xa = x.clone();
        let mut xb = x.clone();
        for round in 0..5 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        for (v, orig) in xa.iter().zip(&x) {
            assert!((v - orig).abs() < 1e-6, "{v} vs {orig}");
        }
        assert_eq!(xa, xb);
    }

    #[test]
    fn protocol_violations_are_errors() {
        let (mut a, _, xa, _) = pair(36, 1);
        assert!(a.aggregate(0, &xa, 1.0, &[]).is_err(), "aggregate first");
        assert!(a.make_message(0, &xa).is_err(), "broadcast path rejected");
        let _ = a.make_outbound(0, &xa, &[1]).unwrap();
        assert!(
            a.make_outbound(0, &xa, &[1]).is_err(),
            "double make_outbound"
        );
        let mut fresh = PowerGossip::new(PowerGossipConfig::default(), 0, 1);
        assert!(fresh.make_outbound(0, &xa, &[1]).is_err(), "missing init");
    }

    #[test]
    #[should_panic(expected = "segment layout covers")]
    fn mismatched_segment_layout_panics_at_init() {
        let mut s = PowerGossip::new(PowerGossipConfig::per_layer(1, vec![(4, 4)]), 0, 1);
        s.init(&[0.0; 20]);
    }

    #[test]
    fn corrupt_messages_rejected() {
        let (mut a, _, xa, _) = pair(36, 1);
        let _ = a.make_outbound(0, &xa, &[1]).unwrap();
        let bad_header = [7u8, 0, 0, 0];
        assert!(a
            .aggregate(
                0,
                &xa,
                1.0,
                &[ReceivedMessage {
                    from: 1,
                    weight: 0.5,
                    bytes: &bad_header
                }]
            )
            .is_err());
        let _ = a.make_outbound(1, &xa, &[1]).unwrap();
        let truncated = [0u8, 1, 2];
        assert!(a
            .aggregate(
                1,
                &xa,
                1.0,
                &[ReceivedMessage {
                    from: 1,
                    weight: 0.5,
                    bytes: &truncated
                }]
            )
            .is_err());
        let _ = a.make_outbound(2, &xa, &[1]).unwrap();
        assert!(
            a.aggregate(
                2,
                &xa,
                1.0,
                &[ReceivedMessage {
                    from: 3,
                    weight: 0.5,
                    bytes: &[0u8]
                }]
            )
            .is_err(),
            "message from a peer we never addressed"
        );
    }

    #[test]
    fn non_square_dimension_handled() {
        // 50 params → 8×7 global matrix with 6 padded cells.
        let (mut a, mut b, mut xa, mut xb) = pair(50, 1);
        for round in 0..100 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert!(max_gap(&xa, &xb) < 0.05, "gap {}", max_gap(&xa, &xb));
    }

    #[test]
    fn orthonormalize_produces_orthonormal_planes() {
        let n = 10;
        let mut planes: Vec<f32> = (0..2 * n).map(|i| (i as f32 * 0.7).sin() + 0.3).collect();
        orthonormalize_planes(&mut planes, n, 2);
        let dot = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| f64::from(*x) * f64::from(*y))
                .sum()
        };
        let (p0, p1) = planes.split_at(n);
        assert!((dot(p0, p0) - 1.0).abs() < 1e-5);
        assert!((dot(p1, p1) - 1.0).abs() < 1e-5);
        assert!(dot(p0, p1).abs() < 1e-5);
    }

    #[test]
    fn state_bytes_counts_edge_state() {
        let (mut a, _, xa, _) = pair(100, 1);
        assert_eq!(a.state_bytes(), 0);
        let _ = a.make_outbound(0, &xa, &[1, 2, 3]).unwrap();
        // Three edges × 10-col query planes × 4 bytes.
        assert_eq!(a.state_bytes(), 3 * 10 * 4);
    }
}
