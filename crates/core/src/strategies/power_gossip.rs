//! PowerGossip (Vogels et al., NeurIPS 2020) — per-edge low-rank
//! compression (extension).
//!
//! The paper names PowerGossip as "another strong communication-efficient
//! algorithm for DL, but it performs as good as tuned CHOCO in their
//! experiments. Hence, we only compare against CHOCO here" (§IV-B-c). This
//! module implements it anyway, so the benchmark suite can check that claim
//! instead of citing it: PowerGossip needs no step-size hyperparameter
//! (CHOCO's γ), which is exactly the property JWINS advertises for itself.
//!
//! For every edge `{i, j}` the algorithm approximates the *pairwise model
//! difference* `D = X_low − X_high` (endpoints ordered canonically) by
//! low-rank power iteration without either side ever materializing `D`:
//! multiplying `D` by a vector only needs `X_i v` and `X_j v`, one locally
//! computed vector from each endpoint. Both endpoints then apply the
//! antisymmetric gossip update
//!
//! ```text
//! x_low  ← x_low  − w_ij · P̂ ΔQᵀ
//! x_high ← x_high + w_ij · P̂ ΔQᵀ
//! ```
//!
//! which preserves the cluster-wide parameter mean exactly, like any doubly
//! stochastic gossip step.
//!
//! **Matricization matters.** The original PowerGossip factorizes *each
//! layer's* natural weight matrix (conv banks as `[out, in·k·k]`, linear as
//! `[out, in]`, biases as columns a rank-1 factor captures exactly), because
//! SGD updates of those matrices are near-low-rank — a property a global
//! near-square reshape of the flat vector destroys. [`MatrixLayout`] exposes
//! both: [`MatrixLayout::Segments`] (the faithful per-layer design, fed from
//! `param_segments()` in `jwins-nn`) and [`MatrixLayout::GlobalSquare`]
//! (the strawman, kept for the ablation).
//!
//! **Round-versioned handshakes (asynchronous transport).** The warm start
//! is only meaningful while both endpoints hold bitwise-identical edge
//! state, which lockstep rounds guarantee but asynchronous gossip, message
//! expiry, churn and topology repair do not. Every edge therefore carries a
//! *handshake chain*: a running hash commitment to the sequence of rounds
//! the edge has successfully paired, starting from the deterministic fresh
//! planes both endpoints re-derive from the shared seed. Outbound messages
//! are stamped with the chain they were computed from; equal stamps imply
//! bitwise-identical edge state on both sides (a plain round or version
//! counter would not — two endpoints can reach the same *count* through
//! different pairing sequences under asymmetric loss). Each node keeps a
//! bounded round-keyed history ([`HISTORY_WINDOW`]) of its own outbound
//! halves plus a stash of early-arrived peer halves, so a half-handshake
//! that is merely *late* (or early, from a fast neighbour) still pairs with
//! the matching round's state. Anything that cannot pair — a chain
//! mismatch, a half that expired out of the window, a half for a
//! crash-skipped round — falls back to the fresh planes instead of
//! corrupting the warm start; the peer's own mismatch detection resets its
//! side within a round or two, after which the edge re-pairs from fresh.
//! One lost half-handshake thus costs a couple of warm-started rounds,
//! never factor-state correctness. Paired updates apply with the
//! *undecayed* edge weight ([`ReceivedMessage::edge_weight`]) so both
//! endpoints scale the antisymmetric update identically even when a
//! staleness policy down-weights one direction; under static topologies
//! this keeps the exact pairwise cancellation (and with it the parameter
//! mean), while dynamic or mid-round-repaired graphs can still price the
//! same edge differently at the two endpoints — a bounded perturbation of
//! the mean, of the same class as a lost broadcast message.
//!
//! Adaptation to the bulk-synchronous engine: the power iteration is
//! *pipelined* across rounds. A round-`t` message carries `P = M Q` for the
//! query matrix `Q` warm-started in round `t−1`, together with `Q' = Mᵀ P̂`
//! for the left factor `P̂` orthonormalized in round `t−1`, so from the
//! second round onward every round applies one low-rank update per edge.

use crate::strategy::{OutMessage, Outbound, PairingStats, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_net::ByteBreakdown;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, VecDeque};

/// How many rounds of per-edge handshake history are retained: own outbound
/// halves older than this can no longer pair and expire (falling back to
/// fresh planes), and peer halves from further ahead than this are treated
/// as divergence rather than stashed. Bounds both the warm-start tolerance
/// for late replies and the per-edge memory.
pub const HISTORY_WINDOW: usize = 4;

/// Diagnostic pairing counter of a fresh (never-paired-since-reset) edge
/// state — see [`PowerGossip::edge_version`].
pub const FRESH_VERSION: u64 = 0;

/// Handshake-chain stamp of a fresh edge state. Both endpoints derive
/// identical fresh planes from the shared seed, so two fresh states always
/// pair.
const FRESH_CHAIN: u64 = 0;

/// How the flat parameter vector is viewed as matrices for factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatrixLayout {
    /// One zero-padded near-square matrix over the whole vector. Cheap to
    /// set up but discards the per-layer low-rank structure; kept as the
    /// ablation arm.
    GlobalSquare,
    /// One matrix per parameter block, `(rows, cols)` in flat order with
    /// products summing to the model dimension — the original PowerGossip
    /// design. Column blocks (`cols == 1`, e.g. biases) are represented
    /// exactly by rank 1.
    Segments(Vec<(usize, usize)>),
}

/// PowerGossip configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerGossipConfig {
    /// Target rank per matrix (clamped per segment to `min(rows, cols)`;
    /// the PowerGossip paper defaults to 1 or 2).
    pub rank: usize,
    /// Matricization of the flat parameter vector.
    pub layout: MatrixLayout,
}

impl PowerGossipConfig {
    /// Per-layer factorization at `rank` — the faithful configuration.
    /// `segments` come from the model (e.g. `ImageClassifier::param_segments`).
    pub fn per_layer(rank: usize, segments: Vec<(usize, usize)>) -> Self {
        Self {
            rank,
            layout: MatrixLayout::Segments(segments),
        }
    }

    /// Single global near-square matrix at `rank` (the ablation arm).
    pub fn global(rank: usize) -> Self {
        Self {
            rank,
            layout: MatrixLayout::GlobalSquare,
        }
    }
}

impl Default for PowerGossipConfig {
    fn default() -> Self {
        Self::global(1)
    }
}

/// One matrix view over the flat vector.
#[derive(Debug, Clone, Copy)]
struct Seg {
    offset: usize,
    rows: usize,
    cols: usize,
    /// Effective rank: `min(config.rank, rows, cols)`.
    rank: usize,
    /// Real parameters in this segment (`< rows*cols` only for the padded
    /// global layout).
    len: usize,
}

impl Seg {
    fn p_len(&self) -> usize {
        self.rows * self.rank
    }

    fn q_len(&self) -> usize {
        self.cols * self.rank
    }

    /// Copies this segment out of the flat vector, zero-padding the tail.
    fn extract(&self, flat: &[f32]) -> Vec<f32> {
        let mut m = vec![0.0f32; self.rows * self.cols];
        m[..self.len].copy_from_slice(&flat[self.offset..self.offset + self.len]);
        m
    }

    /// Writes the (possibly padded) matrix back into the flat vector.
    fn write_back(&self, flat: &mut [f32], m: &[f32]) {
        flat[self.offset..self.offset + self.len].copy_from_slice(&m[..self.len]);
    }
}

/// Per-edge power-iteration state, kept bitwise-identical on both endpoints
/// whenever their handshake chains match.
#[derive(Debug, Clone)]
struct EdgeState {
    /// Query planes `Q_s` per segment (`cols_s × rank_s`, plane-major).
    q: Vec<Vec<f32>>,
    /// Orthonormal left factors `P̂_s` from the previous round (possibly
    /// all-zero planes where the difference vanished).
    p_hat: Option<Vec<Vec<f32>>>,
    /// Diagnostic pairing counter: [`FRESH_VERSION`] for the deterministic
    /// fresh planes, incremented on every successfully paired exchange.
    version: u64,
    /// Handshake-chain commitment: [`FRESH_CHAIN`] for the fresh planes,
    /// advanced by a pure hash of `(chain, paired round)` on every
    /// successful pairing. Equal chains imply bitwise-identical `q`/`p_hat`
    /// on both endpoints — both advanced through the same sequence of
    /// paired exchanges from the same seed-derived fresh planes — so the
    /// chain, stamped on every outbound half, is the protocol's equality
    /// witness. A plain counter would not be: two endpoints can reach the
    /// same *count* through different pairing sequences under asymmetric
    /// loss, which the hash of the round sequence distinguishes.
    chain: u64,
    /// Bounded history of own outbound half-handshakes, oldest first, so a
    /// late peer reply within [`HISTORY_WINDOW`] rounds still pairs.
    slots: VecDeque<EdgeSlot>,
    /// Early-arrived peer halves for rounds this node has not reached yet
    /// (a fast neighbour runs ahead under asynchronous gossip).
    stash: Vec<StashedHalf>,
}

/// One round's own contribution to an edge, kept until it pairs or expires.
#[derive(Debug, Clone)]
struct EdgeSlot {
    round: usize,
    /// Edge-state chain this half was computed from (also the stamp on the
    /// wire message carrying it).
    chain: u64,
    /// `P_s = M_s Q_s` per segment.
    p_own: Vec<Vec<f32>>,
    /// `Q'_s = M_sᵀ P̂_s` per segment, when `P̂` existed.
    q_own: Option<Vec<Vec<f32>>>,
}

/// A decoded peer half that arrived before this node reached its round.
#[derive(Debug, Clone)]
struct StashedHalf {
    round: usize,
    chain: u64,
    p_peer: Vec<Vec<f32>>,
    q_peer: Option<Vec<Vec<f32>>>,
    /// Undecayed edge weight the engine attached at delivery time.
    weight: f64,
}

/// Advances the handshake-chain commitment by one paired exchange at
/// `round` — a pure splitmix64-style hash both endpoints compute
/// identically.
fn chain_advance(chain: u64, round: usize) -> u64 {
    let mut z = chain
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((round as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The PowerGossip sharing strategy (one instance per node).
///
/// Unlike the broadcast strategies, PowerGossip sends a *different* message
/// to every neighbour, so it implements [`ShareStrategy::make_outbound`] and
/// rejects plain [`ShareStrategy::make_message`].
///
/// # Example
///
/// ```
/// use jwins::strategies::{PowerGossip, PowerGossipConfig};
/// use jwins::strategy::{Outbound, ShareStrategy};
///
/// # fn main() -> jwins::Result<()> {
/// // Per-layer matricization: a [16, 25] weight block plus its bias column.
/// let config = PowerGossipConfig::per_layer(2, vec![(16, 25), (16, 1)]);
/// let mut node = PowerGossip::new(config, 0, 42); // node 0, cluster seed 42
/// let params = vec![0.1_f32; 16 * 25 + 16];
/// node.init(&params);
/// let Outbound::PerEdge(messages) = node.make_outbound(0, &params, &[1, 2])? else {
///     unreachable!("power gossip is edge-based");
/// };
/// assert_eq!(messages.len(), 2, "one message per neighbour");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PowerGossip {
    config: PowerGossipConfig,
    /// This node's id — needed to orient every edge canonically.
    node_id: usize,
    /// Seed all nodes share, so fresh edges start from identical `Q`.
    shared_seed: u64,
    segs: Vec<Seg>,
    edges: HashMap<usize, EdgeState>,
    /// Round of the `make_outbound` awaiting its `aggregate` (protocol
    /// guard; the per-edge halves live in each edge's slot history).
    pending_round: Option<usize>,
    dim: usize,
    /// Pair-vs-fresh-fallback telemetry since the last
    /// [`ShareStrategy::pairing_stats`] drain. Write-only for the algorithm:
    /// incremented at the three handshake outcomes, read by nothing here.
    stats: PairingStats,
}

impl PowerGossip {
    /// Creates a node-local instance. `node_id` must be the node's engine
    /// index and `shared_seed` must be identical across the cluster (it
    /// seeds the per-edge warm-start queries both endpoints must agree on).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0` or a segment has a zero dimension.
    pub fn new(config: PowerGossipConfig, node_id: usize, shared_seed: u64) -> Self {
        assert!(config.rank >= 1, "rank must be at least 1");
        if let MatrixLayout::Segments(segments) = &config.layout {
            assert!(!segments.is_empty(), "segment layout must be non-empty");
            for &(r, c) in segments {
                assert!(r > 0 && c > 0, "segment dimensions must be positive");
            }
        }
        Self {
            config,
            node_id,
            shared_seed,
            segs: Vec::new(),
            edges: HashMap::new(),
            pending_round: None,
            dim: 0,
            stats: PairingStats::default(),
        }
    }

    /// Diagnostic/test hook: the handshake version of the edge state held
    /// for `peer` (`Some(`[`FRESH_VERSION`]`)` = the deterministic fresh
    /// planes; `None` = no state retained).
    pub fn edge_version(&self, peer: usize) -> Option<u64> {
        self.edges.get(&peer).map(|e| e.version)
    }

    /// Diagnostic/test hook: how many peers currently have retained
    /// per-edge state (warm-start planes, slot history, stash).
    pub fn tracked_edges(&self) -> usize {
        self.edges.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &PowerGossipConfig {
        &self.config
    }

    /// Returns `(low, high)` for the edge to `peer`.
    fn orient(&self, peer: usize) -> (usize, usize) {
        if self.node_id < peer {
            (self.node_id, peer)
        } else {
            (peer, self.node_id)
        }
    }

    /// Deterministic initial query planes for an edge: both endpoints
    /// derive the same `Q` from `(shared_seed, low, high)`.
    fn fresh_edge(&self, peer: usize) -> EdgeState {
        let (low, high) = self.orient(peer);
        let mut z = self
            .shared_seed
            .wrapping_add((low as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((high as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut rng = ChaCha8Rng::seed_from_u64(z ^ (z >> 31));
        let q = self
            .segs
            .iter()
            .map(|seg| {
                let mut planes = vec![0.0f32; seg.q_len()];
                for v in &mut planes {
                    *v = rng.gen_range(-1.0f32..1.0);
                }
                orthonormalize_planes(&mut planes, seg.cols, seg.rank);
                planes
            })
            .collect();
        EdgeState {
            q,
            p_hat: None,
            version: FRESH_VERSION,
            chain: FRESH_CHAIN,
            slots: VecDeque::new(),
            stash: Vec::new(),
        }
    }

    /// Falls back to the deterministic fresh planes for the edge to `peer`,
    /// discarding warm state, slot history and stash. Both endpoints
    /// re-derive identical fresh state, so a reset edge re-pairs as soon as
    /// the peer's side has reset too.
    fn reset_edge(&mut self, peer: usize) {
        self.stats.fresh_resets += 1;
        let fresh = self.fresh_edge(peer);
        self.edges.insert(peer, fresh);
    }

    /// Routes one decoded peer half for the edge to `peer`: pairs it with
    /// the matching history slot, stashes it for a future round, ignores a
    /// harmless leftover, or falls back to fresh planes on divergence.
    /// `now` is this node's aggregation round, `sent` the peer's stamp.
    #[allow(clippy::too_many_arguments)]
    fn handle_half(
        &mut self,
        peer: usize,
        now: usize,
        sent: usize,
        chain: u64,
        p_peer: Vec<Vec<f32>>,
        q_peer: Option<Vec<Vec<f32>>>,
        weight: f64,
        mats: &mut [Vec<f32>],
    ) {
        if sent > now {
            // The peer runs ahead; park its half until this node reaches
            // that round. Too far ahead (or an overfull stash) means the
            // edge has effectively desynchronized — fall back to fresh.
            let state = self.edges.get_mut(&peer).expect("caller verified edge");
            if sent <= now + HISTORY_WINDOW && state.stash.len() < HISTORY_WINDOW {
                state.stash.push(StashedHalf {
                    round: sent,
                    chain,
                    p_peer,
                    q_peer,
                    weight,
                });
            } else {
                self.reset_edge(peer);
            }
            return;
        }
        let state = &self.edges[&peer];
        match state
            .slots
            .iter()
            .find(|s| s.round == sent)
            .map(|s| s.chain)
        {
            Some(own) if own == chain && state.chain == own => {
                // Both halves of round `sent` derive from the state this
                // edge still holds: a proper pairing.
                self.pair(peer, sent, &p_peer, q_peer.as_deref(), weight, mats);
            }
            Some(own) if own == chain => {
                // Pre-advance leftover: both halves of round `sent` derive
                // from a common state, but a later-arriving older exchange
                // already advanced this edge's chain past it. The exchange
                // is spent — drop its slot (and any older ones, equally
                // pre-advance) so it cannot trigger a false expiry, and
                // move on without resetting: if the peer advanced the same
                // way, the chains still agree; if it advanced differently,
                // the differing stamps reveal it within a round.
                self.stats.ignored += 1;
                let state = self.edges.get_mut(&peer).expect("looked up above");
                while state.slots.front().is_some_and(|s| s.round <= sent) {
                    state.slots.pop_front();
                }
            }
            _ => {
                // Divergence: the peer is on a different handshake chain
                // (one side paired an exchange the other missed, or one
                // side reset). Fall back to the fresh planes; the peer's
                // own detection resets its side when it sees our next
                // stamp.
                self.reset_edge(peer);
            }
        }
    }

    /// Applies one successfully paired exchange on the edge to `peer`: the
    /// antisymmetric low-rank update on `mats`, the warm-started query for
    /// the next exchange, and the chain advance. The caller has verified
    /// that a slot for round `r` exists at the state's current chain.
    fn pair(
        &mut self,
        peer: usize,
        r: usize,
        p_peer: &[Vec<f32>],
        q_peer: Option<&[Vec<f32>]>,
        weight: f64,
        mats: &mut [Vec<f32>],
    ) {
        self.stats.paired += 1;
        let i_am_low = self.orient(peer).0 == self.node_id;
        let segs = &self.segs;
        let state = self.edges.get_mut(&peer).expect("caller verified edge");
        // Consume the paired half and everything older: replies to older
        // halves, if any still arrive, are pre-advance leftovers and are
        // ignored by their stamp.
        let mut paired = None;
        while let Some(front) = state.slots.front() {
            if front.round > r {
                break;
            }
            let slot = state.slots.pop_front().expect("front exists");
            if slot.round == r {
                paired = Some(slot);
            }
        }
        let slot = paired.expect("caller verified slot");
        // Canonical Δ = own_low − own_high, identical on both endpoints.
        let orient = |own: &[f32], theirs: &[f32]| -> Vec<f32> {
            own.iter()
                .zip(theirs)
                .map(|(a, b)| if i_am_low { a - b } else { b - a })
                .collect()
        };
        // Pipelined update: last exchange's P̂ with this exchange's ΔQ'.
        if let (Some(q_own), Some(q_peer), Some(p_hat)) =
            (&slot.q_own, q_peer, state.p_hat.as_ref())
        {
            let sign = if i_am_low { -1.0f64 } else { 1.0 };
            let theta = sign * weight;
            let mut q_next = Vec::with_capacity(segs.len());
            for (((seg, m), (qo, qp)), ph) in segs
                .iter()
                .zip(mats.iter_mut())
                .zip(q_own.iter().zip(q_peer))
                .zip(p_hat)
            {
                let delta_q = orient(qo, qp);
                // x ← x ∓ w · P̂ ΔQᵀ (minus on the low endpoint).
                for k in 0..seg.rank {
                    let p_plane = &ph[k * seg.rows..(k + 1) * seg.rows];
                    let q_plane = &delta_q[k * seg.cols..(k + 1) * seg.cols];
                    for (row_idx, &pv) in p_plane.iter().enumerate() {
                        if pv == 0.0 {
                            continue;
                        }
                        let coeff = theta * f64::from(pv);
                        let row = &mut m[row_idx * seg.cols..(row_idx + 1) * seg.cols];
                        for (cell, &qv) in row.iter_mut().zip(q_plane) {
                            *cell = (f64::from(*cell) + coeff * f64::from(qv)) as f32;
                        }
                    }
                }
                // Warm-start the next query (power iteration).
                let mut next = delta_q;
                orthonormalize_planes(&mut next, seg.cols, seg.rank);
                q_next.push(next);
            }
            // Keep the old query where the difference vanished, so the
            // iteration can restart from a non-degenerate direction.
            for (cur, next) in state.q.iter_mut().zip(q_next) {
                if next.iter().any(|v| *v != 0.0) {
                    *cur = next;
                }
            }
        }
        // New left factors for the next Q' exchange.
        let p_hat_next: Vec<Vec<f32>> = segs
            .iter()
            .zip(slot.p_own.iter().zip(p_peer))
            .map(|(seg, (po, pp))| {
                let mut dp = orient(po, pp);
                orthonormalize_planes(&mut dp, seg.rows, seg.rank);
                dp
            })
            .collect();
        state.p_hat = Some(p_hat_next);
        state.version += 1;
        state.chain = chain_advance(state.chain, r);
    }

    fn message_p_len(&self) -> usize {
        self.segs.iter().map(Seg::p_len).sum()
    }

    fn message_q_len(&self) -> usize {
        self.segs.iter().map(Seg::q_len).sum()
    }

    fn encode(&self, chain: u64, p_own: &[Vec<f32>], q_own: Option<&[Vec<f32>]>) -> OutMessage {
        // Wire: 1 header byte (bit0 = has Q' part), the 8-byte LE handshake
        // chain stamp, then raw LE f32 planes — all segments' P blocks
        // then all segments' Q' blocks.
        let has_q = q_own.is_some();
        let floats = self.message_p_len() + if has_q { self.message_q_len() } else { 0 };
        let mut bytes = Vec::with_capacity(9 + 4 * floats);
        bytes.push(u8::from(has_q));
        bytes.extend_from_slice(&chain.to_le_bytes());
        for block in p_own {
            for &v in block {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        if let Some(q) = q_own {
            for block in q {
                for &v in block {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        let payload = bytes.len() - 9;
        OutMessage::new(
            bytes,
            ByteBreakdown {
                payload,
                metadata: 9,
            },
        )
    }

    #[allow(clippy::type_complexity)]
    fn decode(&self, bytes: &[u8]) -> Result<(u64, Vec<Vec<f32>>, Option<Vec<Vec<f32>>>)> {
        let Some((&header, rest)) = bytes.split_first() else {
            return Err(JwinsError::Protocol("empty power-gossip message"));
        };
        if header > 1 {
            return Err(JwinsError::Protocol("invalid power-gossip header"));
        }
        if rest.len() < 8 {
            return Err(JwinsError::Protocol("power-gossip message length mismatch"));
        }
        let (stamp, body) = rest.split_at(8);
        let chain = u64::from_le_bytes(stamp.try_into().expect("8-byte stamp"));
        let has_q = header == 1;
        let expected = 4 * (self.message_p_len() + if has_q { self.message_q_len() } else { 0 });
        if body.len() != expected {
            return Err(JwinsError::Protocol("power-gossip message length mismatch"));
        }
        let mut cursor = body;
        let mut read_block = |n: usize| -> Vec<f32> {
            let (head, rest) = cursor.split_at(4 * n);
            cursor = rest;
            head.chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect()
        };
        let p: Vec<Vec<f32>> = self.segs.iter().map(|s| read_block(s.p_len())).collect();
        let q = has_q.then(|| self.segs.iter().map(|s| read_block(s.q_len())).collect());
        Ok((chain, p, q))
    }
}

/// Computes `P = M Q` for plane-major `Q` (`rank` planes of `cols` each),
/// producing plane-major `P` (`rank` planes of `rows` each).
fn mat_mul_planes(m: &[f32], rows: usize, cols: usize, q: &[f32], rank: usize) -> Vec<f32> {
    debug_assert_eq!(q.len(), cols * rank);
    let mut out = vec![0.0f32; rows * rank];
    for k in 0..rank {
        let q_plane = &q[k * cols..(k + 1) * cols];
        let out_plane = &mut out[k * rows..(k + 1) * rows];
        for (r, o) in out_plane.iter_mut().enumerate() {
            let row = &m[r * cols..(r + 1) * cols];
            let mut acc = 0.0f64;
            for (a, b) in row.iter().zip(q_plane) {
                acc += f64::from(*a) * f64::from(*b);
            }
            *o = acc as f32;
        }
    }
    out
}

/// Computes `Q = Mᵀ P` for plane-major `P`, producing plane-major `Q`.
fn mat_t_mul_planes(m: &[f32], rows: usize, cols: usize, p: &[f32], rank: usize) -> Vec<f32> {
    debug_assert_eq!(p.len(), rows * rank);
    let mut out = vec![0.0f32; cols * rank];
    for k in 0..rank {
        let p_plane = &p[k * rows..(k + 1) * rows];
        let out_plane = &mut out[k * cols..(k + 1) * cols];
        for (r, &pv) in p_plane.iter().enumerate() {
            if pv == 0.0 {
                continue;
            }
            let row = &m[r * cols..(r + 1) * cols];
            for (o, &mv) in out_plane.iter_mut().zip(row) {
                *o += (f64::from(mv) * f64::from(pv)) as f32;
            }
        }
    }
    out
}

/// In-place modified Gram–Schmidt over `rank` planes of length `n`.
/// Near-zero planes are zeroed (their updates contribute nothing).
fn orthonormalize_planes(planes: &mut [f32], n: usize, rank: usize) {
    debug_assert_eq!(planes.len(), n * rank);
    for k in 0..rank {
        for prev in 0..k {
            let dot: f64 = (0..n)
                .map(|i| f64::from(planes[k * n + i]) * f64::from(planes[prev * n + i]))
                .sum();
            for i in 0..n {
                planes[k * n + i] -= (dot * f64::from(planes[prev * n + i])) as f32;
            }
        }
        let norm: f64 = (0..n)
            .map(|i| f64::from(planes[k * n + i]).powi(2))
            .sum::<f64>()
            .sqrt();
        if norm < 1e-12 {
            planes[k * n..(k + 1) * n].fill(0.0);
        } else {
            for i in 0..n {
                planes[k * n + i] = (f64::from(planes[k * n + i]) / norm) as f32;
            }
        }
    }
}

impl ShareStrategy for PowerGossip {
    /// Drops all state for the edge to `peer`: warm-start planes, slot
    /// history and stash. Called by the engine when the edge is permanently
    /// gone (permanent crash, topology repair); if the edge ever returns it
    /// restarts from the deterministic fresh planes instead of a stale
    /// subspace.
    fn forget_edge(&mut self, peer: usize) {
        self.edges.remove(&peer);
    }

    fn name(&self) -> &'static str {
        match self.config.layout {
            MatrixLayout::GlobalSquare => "power-gossip-global",
            MatrixLayout::Segments(_) => "power-gossip",
        }
    }

    fn init(&mut self, params: &[f32]) {
        self.dim = params.len();
        self.segs = match &self.config.layout {
            MatrixLayout::GlobalSquare => {
                let rows = ((self.dim as f64).sqrt().ceil() as usize).max(1);
                let cols = self.dim.div_ceil(rows).max(1);
                vec![Seg {
                    offset: 0,
                    rows,
                    cols,
                    rank: self.config.rank.min(rows).min(cols),
                    len: self.dim,
                }]
            }
            MatrixLayout::Segments(segments) => {
                let mut offset = 0usize;
                let segs: Vec<Seg> = segments
                    .iter()
                    .map(|&(rows, cols)| {
                        let seg = Seg {
                            offset,
                            rows,
                            cols,
                            rank: self.config.rank.min(rows).min(cols),
                            len: rows * cols,
                        };
                        offset += rows * cols;
                        seg
                    })
                    .collect();
                assert_eq!(
                    offset, self.dim,
                    "segment layout covers {offset} parameters but the model has {}",
                    self.dim
                );
                segs
            }
        };
        self.edges.clear();
        self.pending_round = None;
    }

    fn make_message(&mut self, _round: usize, _params: &[f32]) -> Result<OutMessage> {
        Err(JwinsError::Protocol(
            "power gossip is edge-based; the engine must call make_outbound",
        ))
    }

    fn make_outbound(
        &mut self,
        round: usize,
        params: &[f32],
        neighbors: &[usize],
    ) -> Result<Outbound> {
        if self.dim == 0 {
            return Err(JwinsError::Protocol("init was not called"));
        }
        match self.pending_round {
            Some(r) if r == round => {
                return Err(JwinsError::Protocol(
                    "make_outbound called twice in a round",
                ));
            }
            Some(_) => {
                // The previous round was abandoned mid-flight: a crash
                // between training and mixing skips that round's aggregate
                // entirely, and a warm rejoin keeps the strategy state.
                // Its outstanding halves stay in the slot history, where
                // they expire or mismatch like any other lost handshake.
                self.pending_round = None;
            }
            None => {}
        }
        let mats: Vec<Vec<f32>> = self.segs.iter().map(|s| s.extract(params)).collect();
        let mut messages = Vec::with_capacity(neighbors.len());
        for &peer in neighbors {
            if !self.edges.contains_key(&peer) {
                let fresh = self.fresh_edge(peer);
                self.edges.insert(peer, fresh);
            }
            // Expired half-handshake: the oldest outstanding half fell out
            // of the history window without ever pairing — its reply was
            // lost, expired, or the peer diverged. Fall back to the fresh
            // planes (the peer's mismatch detection resets its side on the
            // next stamp it sees from us).
            if self.edges[&peer]
                .slots
                .front()
                .is_some_and(|s| s.round + HISTORY_WINDOW <= round)
            {
                self.reset_edge(peer);
            }
            let state = &self.edges[&peer];
            let chain = state.chain;
            let p_own: Vec<Vec<f32>> = self
                .segs
                .iter()
                .zip(&mats)
                .zip(&state.q)
                .map(|((seg, m), q)| mat_mul_planes(m, seg.rows, seg.cols, q, seg.rank))
                .collect();
            let q_own = state.p_hat.as_ref().map(|p_hat| {
                self.segs
                    .iter()
                    .zip(&mats)
                    .zip(p_hat)
                    .map(|((seg, m), ph)| mat_t_mul_planes(m, seg.rows, seg.cols, ph, seg.rank))
                    .collect::<Vec<_>>()
            });
            messages.push(Some(self.encode(chain, &p_own, q_own.as_deref())));
            let state = self.edges.get_mut(&peer).expect("inserted above");
            state.slots.push_back(EdgeSlot {
                round,
                chain,
                p_own,
                q_own,
            });
        }
        self.pending_round = Some(round);
        Ok(Outbound::PerEdge(messages))
    }

    fn aggregate(
        &mut self,
        round: usize,
        params: &[f32],
        _self_weight: f64,
        received: &[ReceivedMessage<'_>],
    ) -> Result<Vec<f32>> {
        let pending = self
            .pending_round
            .take()
            .ok_or(JwinsError::Protocol("aggregate before make_outbound"))?;
        if pending != round {
            return Err(JwinsError::Protocol("round number mismatch"));
        }
        let mut flat = params.to_vec();
        let mut mats: Vec<Vec<f32>> = self.segs.iter().map(|s| s.extract(params)).collect();
        // Stashed peer halves that have come due (they arrived while this
        // node was on an earlier round), in peer order for determinism and
        // ahead of the freshly drained messages, mirroring their earlier
        // arrival. A half for a round this node skipped entirely (crash-
        // abandoned) can never complete its handshake and resets the edge.
        let mut due: Vec<usize> = self
            .edges
            .iter()
            .filter(|(_, s)| s.stash.iter().any(|h| h.round <= round))
            .map(|(&p, _)| p)
            .collect();
        due.sort_unstable();
        for peer in due {
            let state = self.edges.get_mut(&peer).expect("listed above");
            let stash = std::mem::take(&mut state.stash);
            let (mut ready, keep): (Vec<_>, Vec<_>) =
                stash.into_iter().partition(|h| h.round <= round);
            state.stash = keep;
            ready.sort_by_key(|h| h.round);
            for h in ready {
                if h.round < round {
                    self.reset_edge(peer);
                } else {
                    self.handle_half(
                        peer, round, h.round, h.chain, h.p_peer, h.q_peer, h.weight, &mut mats,
                    );
                }
            }
        }
        for msg in received {
            let (chain, p_peer, q_peer) = self.decode(msg.bytes)?;
            if !self.edges.contains_key(&msg.from) {
                // A neighbour this node never addressed (e.g. a freshly
                // repair-added edge whose first outbound half is still ours
                // to send): no own half exists to pair with. The edge
                // starts fresh at our next outbound.
                continue;
            }
            // Pair with the *undecayed* edge weight: the antisymmetric
            // update must apply with the same magnitude on both endpoints,
            // and a one-sided staleness decay factor would break the
            // cancellation and bias the parameter mean.
            self.handle_half(
                msg.from,
                round,
                msg.round,
                chain,
                p_peer,
                q_peer,
                msg.edge_weight,
                &mut mats,
            );
        }
        for (seg, m) in self.segs.iter().zip(&mats) {
            seg.write_back(&mut flat, m);
        }
        Ok(flat)
    }

    fn last_alpha(&self) -> f64 {
        // Per-edge fraction of the model actually moved per round.
        (self.message_p_len() + self.message_q_len()) as f64 / self.dim.max(1) as f64
    }

    fn state_bytes(&self) -> usize {
        let planes = |blocks: &[Vec<f32>]| blocks.iter().map(Vec::len).sum::<usize>();
        self.edges
            .values()
            .map(|e| {
                let mut floats = planes(&e.q) + e.p_hat.as_deref().map_or(0, planes);
                for slot in &e.slots {
                    floats += planes(&slot.p_own) + slot.q_own.as_deref().map_or(0, planes);
                }
                for half in &e.stash {
                    floats += planes(&half.p_peer) + half.q_peer.as_deref().map_or(0, planes);
                }
                // Version + chain bookkeeping per edge.
                floats * std::mem::size_of::<f32>() + 2 * std::mem::size_of::<u64>()
            })
            .sum()
    }

    fn pairing_stats(&mut self) -> Option<PairingStats> {
        let stats = std::mem::take(&mut self.stats);
        stats.any().then_some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_with(
        config: PowerGossipConfig,
        dim: usize,
    ) -> (PowerGossip, PowerGossip, Vec<f32>, Vec<f32>) {
        let mut a = PowerGossip::new(config.clone(), 0, 99);
        let mut b = PowerGossip::new(config, 1, 99);
        let xa: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.13).sin()).collect();
        let xb: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.13).cos()).collect();
        a.init(&xa);
        b.init(&xb);
        (a, b, xa, xb)
    }

    fn pair(dim: usize, rank: usize) -> (PowerGossip, PowerGossip, Vec<f32>, Vec<f32>) {
        pair_with(PowerGossipConfig::global(rank), dim)
    }

    /// One full exchange between a and b with weight w; returns new params.
    fn exchange(
        a: &mut PowerGossip,
        b: &mut PowerGossip,
        round: usize,
        xa: &[f32],
        xb: &[f32],
        w: f64,
    ) -> (Vec<f32>, Vec<f32>) {
        let out_a = a.make_outbound(round, xa, &[1]).unwrap();
        let out_b = b.make_outbound(round, xb, &[0]).unwrap();
        let msg_a = match out_a {
            Outbound::PerEdge(mut v) => v.remove(0).unwrap(),
            Outbound::Broadcast(_) => panic!("power gossip must be per-edge"),
        };
        let msg_b = match out_b {
            Outbound::PerEdge(mut v) => v.remove(0).unwrap(),
            Outbound::Broadcast(_) => panic!("power gossip must be per-edge"),
        };
        let xa2 = a
            .aggregate(
                round,
                xa,
                1.0 - w,
                &[ReceivedMessage {
                    from: 1,
                    round,
                    weight: w,
                    edge_weight: w,
                    bytes: &msg_b.bytes,
                }],
            )
            .unwrap();
        let xb2 = b
            .aggregate(
                round,
                xb,
                1.0 - w,
                &[ReceivedMessage {
                    from: 0,
                    round,
                    weight: w,
                    edge_weight: w,
                    bytes: &msg_a.bytes,
                }],
            )
            .unwrap();
        (xa2, xb2)
    }

    fn max_gap(xa: &[f32], xb: &[f32]) -> f32 {
        xa.iter()
            .zip(xb)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn pure_gossip_contracts_to_consensus() {
        let (mut a, mut b, mut xa, mut xb) = pair(100, 1);
        let initial = max_gap(&xa, &xb);
        for round in 0..120 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        let gap = max_gap(&xa, &xb);
        assert!(gap < initial * 0.05, "no contraction: {gap} vs {initial}");
    }

    #[test]
    fn rank_two_contracts_faster() {
        let run = |rank: usize| {
            let (mut a, mut b, mut xa, mut xb) = pair(144, rank);
            for round in 0..40 {
                let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
                xa = na;
                xb = nb;
            }
            xa.iter()
                .zip(&xb)
                .map(|(p, q)| f64::from(p - q).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let g1 = run(1);
        let g2 = run(2);
        assert!(g2 < g1, "rank-2 gap {g2} not below rank-1 gap {g1}");
    }

    #[test]
    fn per_layer_layout_contracts_faster_than_global() {
        // A "model" of two 12×12 blocks whose difference is exactly rank-1
        // per block: the per-layer factorization removes it in a handful of
        // rounds, while the global reshape mixes the blocks and cannot.
        let segments = vec![(12, 12), (12, 12)];
        let dim = 288;
        let base: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.05).sin()).collect();
        let mut delta = vec![0.0f32; dim];
        for blk in 0..2 {
            for r in 0..12 {
                for c in 0..12 {
                    // Outer product u vᵀ per block.
                    delta[blk * 144 + r * 12 + c] =
                        ((r + 1) as f32 * 0.1) * ((c as f32 * 0.4 + blk as f32).cos());
                }
            }
        }
        let xb_init: Vec<f32> = base.iter().zip(&delta).map(|(a, d)| a + d).collect();
        let run = |config: PowerGossipConfig| {
            let mut a = PowerGossip::new(config.clone(), 0, 7);
            let mut b = PowerGossip::new(config, 1, 7);
            let mut xa = base.clone();
            let mut xb = xb_init.clone();
            a.init(&xa);
            b.init(&xb);
            for round in 0..8 {
                let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
                xa = na;
                xb = nb;
            }
            max_gap(&xa, &xb)
        };
        let per_layer = run(PowerGossipConfig::per_layer(1, segments));
        let global = run(PowerGossipConfig::global(1));
        assert!(
            per_layer < global * 0.2,
            "per-layer {per_layer} not much better than global {global}"
        );
    }

    #[test]
    fn column_segments_are_exact_at_rank_one() {
        // Bias-like [len, 1] blocks: rank-1 represents the difference
        // exactly, so two nodes agree after the first pipelined update.
        let config = PowerGossipConfig::per_layer(1, vec![(10, 1), (6, 1)]);
        let (mut a, mut b, mut xa, mut xb) = pair_with(config, 16);
        for round in 0..4 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert!(max_gap(&xa, &xb) < 1e-5, "gap {}", max_gap(&xa, &xb));
    }

    #[test]
    fn updates_preserve_parameter_mean() {
        let (mut a, mut b, mut xa, mut xb) = pair(60, 1);
        let mean0: Vec<f64> = xa
            .iter()
            .zip(&xb)
            .map(|(p, q)| (f64::from(*p) + f64::from(*q)) / 2.0)
            .collect();
        for round in 0..30 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        for ((p, q), m0) in xa.iter().zip(&xb).zip(&mean0) {
            let m = (f64::from(*p) + f64::from(*q)) / 2.0;
            assert!((m - m0).abs() < 1e-3, "mean drifted: {m} vs {m0}");
        }
    }

    #[test]
    fn message_bytes_scale_with_rank_and_dims() {
        let (mut a, _, xa, _) = pair(400, 1); // 20x20 matrix
        let out = a.make_outbound(0, &xa, &[1]).unwrap();
        let Outbound::PerEdge(msgs) = out else {
            panic!()
        };
        let msg = msgs[0].as_ref().unwrap();
        // Round 0 has no Q' part: 1 header + 8 version + 20 rows × 4 bytes.
        assert_eq!(msg.bytes.len(), 9 + 20 * 4);
        let xa2 = a.aggregate(0, &xa, 0.5, &[]).unwrap();
        assert_eq!(xa2, xa, "no neighbours, no change");
    }

    #[test]
    fn endpoints_stay_in_sync_through_missing_rounds() {
        // Round 1 is skipped on both sides (churn): edge state must remain
        // consistent and later rounds must still contract.
        let (mut a, mut b, mut xa, mut xb) = pair(81, 1);
        let (na, nb) = exchange(&mut a, &mut b, 0, &xa, &xb, 0.5);
        xa = na;
        xb = nb;
        // Round 1: both endpoints are "inactive" — no calls at all.
        for round in 2..80 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert!(max_gap(&xa, &xb) < 0.05, "gap {}", max_gap(&xa, &xb));
    }

    #[test]
    fn identical_models_produce_no_update() {
        let config = PowerGossipConfig::default();
        let mut a = PowerGossip::new(config.clone(), 0, 5);
        let mut b = PowerGossip::new(config, 1, 5);
        let x: Vec<f32> = (0..49).map(|i| i as f32 * 0.01).collect();
        a.init(&x);
        b.init(&x);
        let mut xa = x.clone();
        let mut xb = x.clone();
        for round in 0..5 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        for (v, orig) in xa.iter().zip(&x) {
            assert!((v - orig).abs() < 1e-6, "{v} vs {orig}");
        }
        assert_eq!(xa, xb);
    }

    #[test]
    fn protocol_violations_are_errors() {
        let (mut a, _, xa, _) = pair(36, 1);
        assert!(a.aggregate(0, &xa, 1.0, &[]).is_err(), "aggregate first");
        assert!(a.make_message(0, &xa).is_err(), "broadcast path rejected");
        let _ = a.make_outbound(0, &xa, &[1]).unwrap();
        assert!(
            a.make_outbound(0, &xa, &[1]).is_err(),
            "double make_outbound"
        );
        let mut fresh = PowerGossip::new(PowerGossipConfig::default(), 0, 1);
        assert!(fresh.make_outbound(0, &xa, &[1]).is_err(), "missing init");
    }

    #[test]
    fn abandoned_round_does_not_poison_the_next_make_outbound() {
        // A crash between training and mixing skips the round's aggregate
        // entirely, and a warm rejoin keeps the strategy state: the next
        // round must open cleanly, with the stale half treated as an
        // abandoned handshake — while a true double call stays an error.
        let (mut a, _, xa, _) = pair(36, 1);
        let _ = a.make_outbound(0, &xa, &[1]).unwrap();
        // No aggregate(0): the round was crash-abandoned.
        let _ = a
            .make_outbound(1, &xa, &[1])
            .expect("abandoned round must not block the next one");
        assert!(
            a.make_outbound(1, &xa, &[1]).is_err(),
            "a genuine double make_outbound is still a protocol violation"
        );
        let xa2 = a.aggregate(1, &xa, 1.0, &[]).unwrap();
        assert_eq!(xa2, xa);
    }

    #[test]
    #[should_panic(expected = "segment layout covers")]
    fn mismatched_segment_layout_panics_at_init() {
        let mut s = PowerGossip::new(PowerGossipConfig::per_layer(1, vec![(4, 4)]), 0, 1);
        s.init(&[0.0; 20]);
    }

    #[test]
    fn corrupt_messages_rejected() {
        let (mut a, mut b, xa, xb) = pair(36, 1);
        let _ = a.make_outbound(0, &xa, &[1]).unwrap();
        let bad_header = [7u8, 0, 0, 0];
        assert!(a
            .aggregate(
                0,
                &xa,
                1.0,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &bad_header
                }]
            )
            .is_err());
        let _ = a.make_outbound(1, &xa, &[1]).unwrap();
        let truncated = [0u8, 1, 2];
        assert!(a
            .aggregate(
                1,
                &xa,
                1.0,
                &[ReceivedMessage {
                    from: 1,
                    round: 1,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &truncated
                }]
            )
            .is_err());
        // A *well-formed* message from a peer we never addressed is not an
        // error under asynchronous delivery (repair can add edges whose
        // first inbound half precedes our first outbound); it is ignored
        // and pairs once both sides have sent.
        let Outbound::PerEdge(msgs) = b.make_outbound(0, &xb, &[0]).unwrap() else {
            panic!("per-edge");
        };
        let from_b = msgs.into_iter().next().unwrap().unwrap();
        let mut c = PowerGossip::new(PowerGossipConfig::global(1), 0, 99);
        c.init(&xa);
        let _ = c.make_outbound(0, &xa, &[2]).unwrap();
        let xc = c
            .aggregate(
                0,
                &xa,
                1.0,
                &[ReceivedMessage {
                    from: 1,
                    round: 0,
                    weight: 0.5,
                    edge_weight: 0.5,
                    bytes: &from_b.bytes,
                }],
            )
            .expect("unaddressed peer's message is ignored, not an error");
        assert_eq!(xc, xa, "ignored half must not move parameters");
        assert_eq!(c.edge_version(1), None, "no state allocated for it");
    }

    #[test]
    fn non_square_dimension_handled() {
        // 50 params → 8×7 global matrix with 6 padded cells.
        let (mut a, mut b, mut xa, mut xb) = pair(50, 1);
        for round in 0..100 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert!(max_gap(&xa, &xb) < 0.05, "gap {}", max_gap(&xa, &xb));
    }

    #[test]
    fn orthonormalize_produces_orthonormal_planes() {
        let n = 10;
        let mut planes: Vec<f32> = (0..2 * n).map(|i| (i as f32 * 0.7).sin() + 0.3).collect();
        orthonormalize_planes(&mut planes, n, 2);
        let dot = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| f64::from(*x) * f64::from(*y))
                .sum()
        };
        let (p0, p1) = planes.split_at(n);
        assert!((dot(p0, p0) - 1.0).abs() < 1e-5);
        assert!((dot(p1, p1) - 1.0).abs() < 1e-5);
        assert!(dot(p0, p1).abs() < 1e-5);
    }

    #[test]
    fn state_bytes_counts_edge_state() {
        let (mut a, mut b, xa, xb) = pair(100, 1);
        assert_eq!(a.state_bytes(), 0);
        let _ = a.make_outbound(0, &xa, &[1, 2, 3]).unwrap();
        // Three edges × (10-col query planes + the outstanding 10-row P
        // half in the slot history) × 4 bytes, plus 16 bytes of version
        // bookkeeping per edge — the pending halves count too, they are
        // held state exactly like the planes.
        assert_eq!(a.state_bytes(), 3 * ((10 + 10) * 4 + 16));
        // Close a's round 0 with no replies: slots stay outstanding and
        // keep counting (the undercount the old accounting had), then a
        // paired exchange at round 1 adds P̂ planes to the total.
        let xa = a.aggregate(0, &xa, 1.0, &[]).unwrap();
        assert_eq!(a.state_bytes(), 3 * ((10 + 10) * 4 + 16));
        let _ = b.make_outbound(0, &xb, &[0]).unwrap();
        let _ = b.aggregate(0, &xb, 1.0, &[]).unwrap();
        let (_, _) = exchange(&mut a, &mut b, 1, &xa, &xb, 0.5);
        // Edge 1 paired (q 10 + p_hat 10, slots consumed); edges 2 and 3
        // still hold q 10 + their unpaired round-0 slot of 10 floats.
        assert_eq!(a.state_bytes(), 3 * ((10 + 10) * 4 + 16));
        assert_eq!(a.edge_version(1), Some(1), "edge 1 advanced");
        assert_eq!(a.edge_version(2), Some(0), "edge 2 still fresh");
    }

    /// One round's messages on both sides, for manual delivery control.
    fn halves(
        a: &mut PowerGossip,
        b: &mut PowerGossip,
        round: usize,
        xa: &[f32],
        xb: &[f32],
    ) -> (OutMessage, OutMessage) {
        let Outbound::PerEdge(mut va) = a.make_outbound(round, xa, &[1]).unwrap() else {
            panic!("per-edge")
        };
        let Outbound::PerEdge(mut vb) = b.make_outbound(round, xb, &[0]).unwrap() else {
            panic!("per-edge")
        };
        (va.remove(0).unwrap(), vb.remove(0).unwrap())
    }

    fn deliver(
        node: &mut PowerGossip,
        round: usize,
        params: &[f32],
        from: usize,
        sent_round: usize,
        msg: Option<&OutMessage>,
    ) -> Vec<f32> {
        let received: Vec<ReceivedMessage<'_>> = msg
            .iter()
            .map(|m| ReceivedMessage {
                from,
                round: sent_round,
                weight: 0.5,
                edge_weight: 0.5,
                bytes: &m.bytes,
            })
            .collect();
        node.aggregate(round, params, 0.5, &received).unwrap()
    }

    #[test]
    fn late_reply_within_window_still_pairs() {
        // b's round-0 half reaches a only during a's round 1 (and vice
        // versa): both sides pair against their retained round-0 slots and
        // the chain advances without a reset.
        let (mut a, mut b, mut xa, mut xb) = pair(49, 1);
        let (m_a0, m_b0) = halves(&mut a, &mut b, 0, &xa, &xb);
        // Round 0 aggregates see nothing.
        xa = deliver(&mut a, 0, &xa, 1, 0, None);
        xb = deliver(&mut b, 0, &xb, 0, 0, None);
        // Round 1: the round-0 halves arrive late, stamped round 0.
        let (m_a1, m_b1) = halves(&mut a, &mut b, 1, &xa, &xb);
        xa = deliver(&mut a, 1, &xa, 1, 0, Some(&m_b0));
        xb = deliver(&mut b, 1, &xb, 0, 0, Some(&m_a0));
        assert_eq!(a.edge_version(1), Some(1), "late half paired");
        assert_eq!(b.edge_version(0), Some(1), "late half paired");
        // The round-1 halves (stamped with the pre-advance chain) are
        // pre-advance leftovers: ignored, no reset.
        let (_m_a2, _m_b2) = halves(&mut a, &mut b, 2, &xa, &xb);
        xa = deliver(&mut a, 2, &xa, 1, 1, Some(&m_b1));
        xb = deliver(&mut b, 2, &xb, 0, 1, Some(&m_a1));
        assert_eq!(a.edge_version(1), Some(1), "leftover ignored, not reset");
        assert_eq!(b.edge_version(0), Some(1), "leftover ignored, not reset");
        assert!(xa.iter().chain(&xb).all(|v| v.is_finite()));
    }

    #[test]
    fn expired_half_handshake_falls_back_to_fresh_and_repairs() {
        let (mut a, mut b, mut xa, mut xb) = pair(49, 1);
        // A few clean rounds build a warm chain.
        for round in 0..3 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert_eq!(a.edge_version(1), Some(3));
        // Both directions black out past the window: every outstanding
        // half expires and both sides converge back to the fresh planes.
        for round in 3..3 + HISTORY_WINDOW + 1 {
            let _ = halves(&mut a, &mut b, round, &xa, &xb);
            xa = deliver(&mut a, round, &xa, 1, round, None);
            xb = deliver(&mut b, round, &xb, 0, round, None);
        }
        let r = 3 + HISTORY_WINDOW + 1;
        let _ = halves(&mut a, &mut b, r, &xa, &xb);
        assert_eq!(a.edge_version(1), Some(FRESH_VERSION), "fell back to fresh");
        assert_eq!(b.edge_version(0), Some(FRESH_VERSION), "fell back to fresh");
        xa = deliver(&mut a, r, &xa, 1, r, None);
        xb = deliver(&mut b, r, &xb, 0, r, None);
        // Connectivity returns: fresh states pair again immediately.
        let (na, nb) = exchange(&mut a, &mut b, r + 1, &xa, &xb, 0.5);
        assert_eq!(a.edge_version(1), Some(1), "re-paired from fresh");
        assert_eq!(b.edge_version(0), Some(1), "re-paired from fresh");
        assert!(na.iter().chain(&nb).all(|v| v.is_finite()));
    }

    #[test]
    fn one_sided_loss_diverges_then_both_reset() {
        let (mut a, mut b, mut xa, mut xb) = pair(49, 1);
        let (na, nb) = exchange(&mut a, &mut b, 0, &xa, &xb, 0.5);
        xa = na;
        xb = nb;
        // Round 1: a receives b's half (pairs, v2) but b receives nothing.
        let (_m_a1, m_b1) = halves(&mut a, &mut b, 1, &xa, &xb);
        xa = deliver(&mut a, 1, &xa, 1, 1, Some(&m_b1));
        xb = deliver(&mut b, 1, &xb, 0, 1, None);
        assert_eq!(a.edge_version(1), Some(2));
        assert_eq!(b.edge_version(0), Some(1), "b missed the exchange");
        // Round 2: the mismatched stamps reveal the divergence — each side
        // resets to fresh instead of corrupting its warm start.
        let (m_a2, m_b2) = halves(&mut a, &mut b, 2, &xa, &xb);
        xa = deliver(&mut a, 2, &xa, 1, 2, Some(&m_b2));
        xb = deliver(&mut b, 2, &xb, 0, 2, Some(&m_a2));
        assert_eq!(a.edge_version(1), Some(FRESH_VERSION), "a reset");
        assert_eq!(b.edge_version(0), Some(FRESH_VERSION), "b reset");
        // Round 3: fresh pairs fresh; the edge warms up again.
        let (na, nb) = exchange(&mut a, &mut b, 3, &xa, &xb, 0.5);
        assert_eq!(a.edge_version(1), Some(1));
        assert_eq!(b.edge_version(0), Some(1));
        assert!(na.iter().chain(&nb).all(|v| v.is_finite()));
    }

    #[test]
    fn early_half_from_fast_peer_is_stashed_and_pairs_on_arrival_round() {
        // b runs one round ahead of a. Its round-1 half arrives while a is
        // still aggregating round 0: a stashes it and pairs it at round 1.
        let (mut a, mut b, mut xa, mut xb) = pair(49, 1);
        let (m_a0, m_b0) = halves(&mut a, &mut b, 0, &xa, &xb);
        xb = deliver(&mut b, 0, &xb, 0, 0, Some(&m_a0));
        let Outbound::PerEdge(mut vb) = b.make_outbound(1, &xb, &[0]).unwrap() else {
            panic!("per-edge")
        };
        let m_b1 = vb.remove(0).unwrap();
        // a's round 0 drain holds b's round-0 half *and* b's early round-1
        // half (fast peer): the former pairs, the latter is stashed.
        let recv: Vec<ReceivedMessage<'_>> = vec![
            ReceivedMessage {
                from: 1,
                round: 0,
                weight: 0.5,
                edge_weight: 0.5,
                bytes: &m_b0.bytes,
            },
            ReceivedMessage {
                from: 1,
                round: 1,
                weight: 0.5,
                edge_weight: 0.5,
                bytes: &m_b1.bytes,
            },
        ];
        xa = a.aggregate(0, &xa, 0.5, &recv).unwrap();
        assert_eq!(a.edge_version(1), Some(1), "round-0 halves paired");
        // a reaches round 1: the stashed half pairs without a new delivery.
        let Outbound::PerEdge(mut va) = a.make_outbound(1, &xa, &[1]).unwrap() else {
            panic!("per-edge")
        };
        let m_a1 = va.remove(0).unwrap();
        xa = a.aggregate(1, &xa, 0.5, &[]).unwrap();
        assert_eq!(
            a.edge_version(1),
            Some(2),
            "stashed half paired at its round"
        );
        // b receives a's round-1 half late and catches up.
        xb = deliver(&mut b, 1, &xb, 0, 1, Some(&m_a1));
        assert_eq!(b.edge_version(0), Some(2));
        assert!(xa.iter().chain(&xb).all(|v| v.is_finite()));
    }

    #[test]
    fn forget_edge_drops_state_and_restarts_fresh() {
        let (mut a, mut b, mut xa, mut xb) = pair(49, 1);
        for round in 0..2 {
            let (na, nb) = exchange(&mut a, &mut b, round, &xa, &xb, 0.5);
            xa = na;
            xb = nb;
        }
        assert_eq!(a.tracked_edges(), 1);
        assert!(a.state_bytes() > 0);
        a.forget_edge(1);
        assert_eq!(a.tracked_edges(), 0);
        assert_eq!(a.state_bytes(), 0, "no state survives a forgotten edge");
        assert_eq!(a.edge_version(1), None);
        // The edge returns: a restarts fresh, b detects the stamp mismatch
        // and resets, and the edge re-pairs clean afterwards.
        let (m_a2, m_b2) = halves(&mut a, &mut b, 2, &xa, &xb);
        xa = deliver(&mut a, 2, &xa, 1, 2, Some(&m_b2));
        xb = deliver(&mut b, 2, &xb, 0, 2, Some(&m_a2));
        assert_eq!(a.edge_version(1), Some(FRESH_VERSION));
        assert_eq!(b.edge_version(0), Some(FRESH_VERSION));
        let (na, nb) = exchange(&mut a, &mut b, 3, &xa, &xb, 0.5);
        assert_eq!(a.edge_version(1), Some(1));
        assert_eq!(b.edge_version(0), Some(1));
        assert!(na.iter().chain(&nb).all(|v| v.is_finite()));
    }
}
