//! Flat parameter storage for the whole cluster.
//!
//! At 10k+ nodes, per-node `Vec<f32>` parameter buffers scatter the hot
//! training state across the heap: every execute batch chases `n` separate
//! allocations and the allocator pays per-node bookkeeping. [`ParamArena`]
//! packs every node's flat parameter vector into one contiguous `Vec<f32>`
//! (CSR-style offsets, so heterogeneous model sizes still work) and hands
//! out disjoint `&mut [f32]` windows per node. The float values and their
//! operation order are exactly those of the per-node layout — the arena is
//! a storage change, not a numeric one — so runs stay bit-identical to the
//! pre-arena engine.
//!
//! Worker threads get their windows through [`ParamArena::slices_mut`],
//! which splits the buffer into per-node `&mut` slices once per batch;
//! distinctness of batch node ids (the event queue's independent-batch
//! contract) guarantees the borrows are disjoint.

/// One flat buffer holding every node's parameters, indexed by node id.
#[derive(Debug, Clone)]
pub(crate) struct ParamArena {
    /// `offsets[i]..offsets[i + 1]` is node `i`'s window; `n + 1` entries.
    offsets: Vec<usize>,
    data: Vec<f32>,
}

impl ParamArena {
    /// Packs per-node parameter vectors (in node order) into one buffer.
    pub(crate) fn from_nodes(params: Vec<Vec<f32>>) -> Self {
        let mut offsets = Vec::with_capacity(params.len() + 1);
        offsets.push(0);
        let total: usize = params.iter().map(Vec::len).sum();
        let mut data = Vec::with_capacity(total);
        for p in params {
            data.extend_from_slice(&p);
            offsets.push(data.len());
        }
        Self { offsets, data }
    }

    /// Number of nodes with a window in the arena.
    pub(crate) fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Node `i`'s parameters.
    pub(crate) fn node(&self, i: usize) -> &[f32] {
        &self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Node `i`'s parameters, writable.
    pub(crate) fn node_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Splits the buffer into one disjoint `&mut` window per node, in node
    /// order — the shape worker pools distribute across threads.
    pub(crate) fn slices_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out = Vec::with_capacity(self.node_count());
        let mut rest: &mut [f32] = &mut self.data;
        for w in self.offsets.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            out.push(head);
            rest = tail;
        }
        out
    }

    /// Copies node `from`'s parameters over node `to`'s (donor re-sync on
    /// recovery). Panics if the two windows differ in length.
    pub(crate) fn copy_node(&mut self, from: usize, to: usize) {
        let src = self.offsets[from]..self.offsets[from + 1];
        let dst = self.offsets[to];
        assert_eq!(
            src.len(),
            self.offsets[to + 1] - dst,
            "donor and rejoiner models must agree in size"
        );
        self.data.copy_within(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_contiguous_and_disjoint() {
        let mut arena =
            ParamArena::from_nodes(vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(arena.node_count(), 3);
        assert_eq!(arena.node(0), &[1.0, 2.0]);
        assert_eq!(arena.node(1), &[3.0]);
        assert_eq!(arena.node(2), &[4.0, 5.0, 6.0]);
        arena.node_mut(1)[0] = 9.0;
        assert_eq!(arena.node(1), &[9.0]);
        let slices = arena.slices_mut();
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[2].len(), 3);
        slices.into_iter().for_each(|s| s.fill(0.0));
        assert_eq!(arena.node(0), &[0.0, 0.0]);
    }

    #[test]
    fn copy_node_resyncs_equal_sized_windows() {
        let mut arena = ParamArena::from_nodes(vec![vec![1.0, 2.0], vec![7.0, 8.0]]);
        arena.copy_node(0, 1);
        assert_eq!(arena.node(1), &[1.0, 2.0]);
        assert_eq!(arena.node(0), &[1.0, 2.0], "donor untouched");
    }

    #[test]
    #[should_panic(expected = "agree in size")]
    fn copy_node_rejects_size_mismatch() {
        let mut arena = ParamArena::from_nodes(vec![vec![1.0], vec![2.0, 3.0]]);
        arena.copy_node(0, 1);
    }
}
