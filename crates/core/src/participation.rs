//! Node participation models: churn, dropouts and scripted outages
//! (extension).
//!
//! The paper argues that because JWINS keeps no per-neighbour state, it is
//! "more memory-efficient, and flexible to nodes leaving and joining" than
//! replica-based schemes like CHOCO-SGD (§V). The original evaluation never
//! exercises that claim; this module makes it testable. A
//! [`ParticipationModel`] decides which nodes are active each round: inactive
//! nodes neither train nor communicate, and messages are never delivered to
//! them — exactly the observable behaviour of a process that went away and
//! later rejoined with its last local model.
//!
//! The `ext_churn` bench compares JWINS, full-sharing and CHOCO-SGD under
//! random dropout; see `DESIGN.md` §7.

use std::fmt;

/// Decides, deterministically, which nodes participate in which rounds.
///
/// # Example
///
/// ```
/// use jwins::participation::{Outage, ParticipationModel, ScriptedOutages};
///
/// let schedule = ScriptedOutages::default().with_outage(Outage::new(2, 10, 20));
/// assert!(schedule.is_active(9, 2));
/// assert!(!schedule.is_active(10, 2));
/// assert_eq!(schedule.active_set(15, 4), vec![0, 1, 3]);
/// ```
pub trait ParticipationModel: Send + Sync {
    /// Whether `node` is active in `round`. Must be deterministic.
    fn is_active(&self, round: usize, node: usize) -> bool;

    /// Stable name for experiment output.
    fn name(&self) -> &'static str;

    /// The active subset of `0..nodes` for `round`.
    fn active_set(&self, round: usize, nodes: usize) -> Vec<usize> {
        (0..nodes).filter(|&v| self.is_active(round, v)).collect()
    }
}

/// Every node participates in every round (the paper's setting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysOn;

impl ParticipationModel for AlwaysOn {
    fn is_active(&self, _round: usize, _node: usize) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "always-on"
    }
}

/// Each node independently drops out of each round with probability `p`
/// (deterministic in `(seed, round, node)`).
///
/// # Example
///
/// ```
/// use jwins::participation::{ParticipationModel, RandomDropout};
///
/// let churn = RandomDropout::new(0.3, 7);
/// let active: usize = (0..100).filter(|&r| churn.is_active(r, 5)).count();
/// assert!((55..85).contains(&active), "~70% of rounds active");
/// ```
///
/// Node 0 is kept always-on so the cluster never goes fully dark, which
/// keeps small-n experiments meaningful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDropout {
    dropout: f64,
    seed: u64,
}

impl RandomDropout {
    /// Creates the model with per-round dropout probability `dropout`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= dropout < 1`.
    pub fn new(dropout: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&dropout),
            "dropout probability must be in [0, 1)"
        );
        Self { dropout, seed }
    }

    /// The configured dropout probability.
    pub fn dropout(&self) -> f64 {
        self.dropout
    }

    fn hash(&self, round: usize, node: usize) -> u64 {
        // SplitMix64 over (seed, round, node).
        let mut z = self
            .seed
            .wrapping_add((round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((node as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl ParticipationModel for RandomDropout {
    fn is_active(&self, round: usize, node: usize) -> bool {
        if node == 0 {
            return true;
        }
        let u = self.hash(round, node) as f64 / u64::MAX as f64;
        u >= self.dropout
    }

    fn name(&self) -> &'static str {
        "random-dropout"
    }
}

/// A planned absence of one node over a half-open round interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The node that goes away.
    pub node: usize,
    /// First round of the outage (inclusive).
    pub from_round: usize,
    /// First round after the outage (exclusive).
    pub until_round: usize,
}

impl Outage {
    /// Builds an outage, validating the interval.
    ///
    /// # Panics
    ///
    /// Panics if `from_round >= until_round`.
    pub fn new(node: usize, from_round: usize, until_round: usize) -> Self {
        assert!(
            from_round < until_round,
            "outage interval must be non-empty"
        );
        Self {
            node,
            from_round,
            until_round,
        }
    }
}

impl fmt::Display for Outage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} down for rounds [{}, {})",
            self.node, self.from_round, self.until_round
        )
    }
}

/// Scripted leave/re-join schedule: nodes are active except during their
/// listed [`Outage`]s. Models controlled experiments ("node 3 leaves at
/// round 50 and returns at round 80").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScriptedOutages {
    outages: Vec<Outage>,
}

impl ScriptedOutages {
    /// Creates a schedule from explicit outages.
    pub fn new(outages: Vec<Outage>) -> Self {
        Self { outages }
    }

    /// Adds one outage (builder style).
    #[must_use]
    pub fn with_outage(mut self, outage: Outage) -> Self {
        self.outages.push(outage);
        self
    }

    /// The configured outages.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }
}

impl ParticipationModel for ScriptedOutages {
    fn is_active(&self, round: usize, node: usize) -> bool {
        !self
            .outages
            .iter()
            .any(|o| o.node == node && (o.from_round..o.until_round).contains(&round))
    }

    fn name(&self) -> &'static str {
        "scripted-outages"
    }
}

/// Round-granular projection of a virtual-time fault timeline — the bridge
/// that lets one `jwins_fault` schedule drive *both* execution substrates.
///
/// The event-driven engine interprets a [`jwins_fault::FaultTimeline`]
/// natively (mid-round crashes, killed in-flight messages). The barrier
/// engine has no virtual clock mid-round, so this adapter declares a node
/// inactive for round `r` when the timeline has it down at any point of the
/// window `[r·round_s, (r+1)·round_s)` — the coarsest sound projection.
///
/// # Example
///
/// ```
/// use jwins::participation::{FaultParticipation, ParticipationModel};
/// use jwins_fault::{FaultOutage, FaultPlan, FaultTimeline};
///
/// let plan = FaultPlan::Scripted(vec![FaultOutage::new(1, 2.5, 1.0)]);
/// let timeline = FaultTimeline::expand(&plan, 4, 7).unwrap();
/// // 1-second rounds: node 1 is down somewhere in rounds 2 and 3.
/// let bridge = FaultParticipation::new(timeline, 1.0);
/// assert!(bridge.is_active(1, 1));
/// assert!(!bridge.is_active(2, 1));
/// assert!(!bridge.is_active(3, 1));
/// assert!(bridge.is_active(4, 1));
/// ```
#[derive(Debug, Clone)]
pub struct FaultParticipation {
    timeline: jwins_fault::FaultTimeline,
    round_s: f64,
}

impl FaultParticipation {
    /// Projects `timeline` onto rounds of `round_s` simulated seconds each.
    ///
    /// # Panics
    ///
    /// Panics unless `round_s` is positive and finite.
    pub fn new(timeline: jwins_fault::FaultTimeline, round_s: f64) -> Self {
        assert!(
            round_s.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater) && round_s.is_finite(),
            "round duration must be positive and finite"
        );
        Self { timeline, round_s }
    }

    /// The projected timeline.
    pub fn timeline(&self) -> &jwins_fault::FaultTimeline {
        &self.timeline
    }
}

impl ParticipationModel for FaultParticipation {
    fn is_active(&self, round: usize, node: usize) -> bool {
        let from = jwins_sim::SimTime::from_secs_f64(round as f64 * self.round_s);
        let until = jwins_sim::SimTime::from_secs_f64((round + 1) as f64 * self.round_s);
        !self.timeline.is_down_during(node, from, until)
    }

    fn name(&self) -> &'static str {
        "fault-timeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_is_always_on() {
        let m = AlwaysOn;
        assert!(m.is_active(0, 0));
        assert!(m.is_active(999, 42));
        assert_eq!(m.active_set(3, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dropout_rate_is_roughly_p() {
        let m = RandomDropout::new(0.3, 7);
        let mut active = 0usize;
        let mut total = 0usize;
        for round in 0..200 {
            for node in 1..50 {
                total += 1;
                active += usize::from(m.is_active(round, node));
            }
        }
        let rate = active as f64 / total as f64;
        assert!(
            (rate - 0.7).abs() < 0.02,
            "activity rate {rate} far from 0.7"
        );
    }

    #[test]
    fn dropout_is_deterministic_and_seed_sensitive() {
        let a = RandomDropout::new(0.5, 1);
        let b = RandomDropout::new(0.5, 1);
        let c = RandomDropout::new(0.5, 2);
        let pattern =
            |m: &RandomDropout| -> Vec<bool> { (0..64).map(|r| m.is_active(r, 5)).collect() };
        assert_eq!(pattern(&a), pattern(&b));
        assert_ne!(pattern(&a), pattern(&c));
    }

    #[test]
    fn dropout_keeps_node_zero() {
        let m = RandomDropout::new(0.99, 3);
        for round in 0..100 {
            assert!(m.is_active(round, 0));
        }
    }

    #[test]
    fn scripted_outages_cover_interval() {
        let m = ScriptedOutages::default()
            .with_outage(Outage::new(2, 5, 8))
            .with_outage(Outage::new(2, 12, 13))
            .with_outage(Outage::new(0, 6, 7));
        assert!(m.is_active(4, 2));
        assert!(!m.is_active(5, 2));
        assert!(!m.is_active(7, 2));
        assert!(m.is_active(8, 2), "until_round is exclusive");
        assert!(!m.is_active(12, 2));
        assert!(!m.is_active(6, 0));
        assert!(m.is_active(6, 1));
        // Round 6: node 0 down ([6,7)) and node 2 down ([5,8)).
        assert_eq!(m.active_set(6, 3), vec![1]);
        assert_eq!(m.active_set(9, 3), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "outage interval must be non-empty")]
    fn empty_outage_rejected() {
        let _ = Outage::new(0, 5, 5);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_of_one_rejected() {
        let _ = RandomDropout::new(1.0, 0);
    }

    #[test]
    fn fault_participation_projects_windows() {
        use jwins_fault::{FaultOutage, FaultPlan, FaultTimeline};
        // Down over [1.25, 1.75): entirely inside round 1's window.
        let plan = FaultPlan::Scripted(vec![FaultOutage::new(2, 1.25, 0.5)]);
        let timeline = FaultTimeline::expand(&plan, 4, 0).unwrap();
        let bridge = FaultParticipation::new(timeline, 1.0);
        assert!(bridge.is_active(0, 2));
        assert!(!bridge.is_active(1, 2));
        assert!(bridge.is_active(2, 2));
        // Other nodes are untouched.
        assert!(bridge.is_active(1, 0));
        assert_eq!(bridge.active_set(1, 4), vec![0, 1, 3]);
        assert_eq!(bridge.name(), "fault-timeline");
    }

    #[test]
    #[should_panic(expected = "round duration")]
    fn fault_participation_rejects_zero_round() {
        let timeline =
            jwins_fault::FaultTimeline::expand(&jwins_fault::FaultPlan::None, 1, 0).unwrap();
        let _ = FaultParticipation::new(timeline, 0.0);
    }

    #[test]
    fn outage_displays_interval() {
        let o = Outage::new(3, 1, 4);
        assert_eq!(o.to_string(), "node 3 down for rounds [1, 4)");
    }
}
