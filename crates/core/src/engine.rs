//! The decentralized training engine, with two execution substrates.
//!
//! **Bulk-synchronous** (the paper's round structure, §II-A): every round
//! each node runs τ local SGD steps, broadcasts one strategy-built message
//! to its neighbours for this round's topology, then folds the received
//! messages into its parameters using Metropolis–Hastings weights. Nodes
//! execute in parallel worker threads inside each phase; phases are
//! barrier-separated, so runs are bit-deterministic regardless of thread
//! count.
//!
//! **Event-driven** ([`crate::config::ExecutionMode::EventDriven`]): the
//! same per-node round program, but scheduled on a virtual clock through
//! `jwins_sim`'s discrete-event queue. Each node's local round costs
//! `compute_s / speed` seconds of simulated compute, outgoing messages are
//! serialized over its uplink and arrive `latency + bytes/bandwidth` later,
//! and a node mixes with whatever neighbour messages have *arrived* by its
//! local clock — possibly stale ones, whose age feeds the staleness metric.
//! Under a degenerate heterogeneity profile (uniform compute, instantaneous
//! links) the two substrates produce bit-identical results.
//!
//! # Parallel event execution and the determinism contract
//!
//! The event loop executes *batches*: at each step it pops the maximal run
//! of simultaneous same-kind events on pairwise-distinct nodes
//! ([`jwins_sim::EventQueue::pop_independent_batch`]; mix batches are
//! additionally same-*round*, so a round-completion evaluation can never
//! observe an aggregate of a different round that the one-at-a-time
//! schedule would have run later) and drives each batch through three
//! phases —
//!
//! 1. **propose** (sequential): charge the pops, drop stale-epoch events
//!    (see [`jwins_sim::LifecycleTracker`]), resolve per-round topology and
//!    participation;
//! 2. **execute** (parallel): run the expensive per-node work — τ SGD steps
//!    and message building for `TrainDone`, mailbox drain plus aggregation
//!    for `Mix` — on the crossbeam worker pool, with every shared-state
//!    side effect buffered (outgoing messages as [`jwins_net::PendingSend`],
//!    expiry/staleness counters in per-event proposals);
//! 3. **commit** (sequential, in the queue's pop order): apply the buffered
//!    sends, fold the float accumulators, schedule follow-up events, and
//!    take round-completion evaluation points.
//!
//! Because a batch is a contiguous prefix of the queue's seeded total order
//! and commits replay that order exactly, the observable run is a pure
//! function of the configuration. Concretely, these knobs **may not**
//! change any result, bit for bit:
//!
//! - [`crate::config::TrainConfig::threads`] (1, 2, 8, or 0 = all cores) —
//!   worker threads only split the execute phase of already-independent
//!   events;
//! - [`crate::config::TrainConfig::shards`] — the event queue
//!   ([`jwins_sim::ShardedEventQueue`]) routes events to per-node-group
//!   heaps but merges them behind one global insertion counter and tie
//!   hash, so any shard count replays the identical total order
//!   (`tests/scale_determinism.rs`);
//! - host core count / scheduler timing, for the same reason.
//!
//! These knobs **do** change results, deterministically:
//!
//! - [`crate::config::TrainConfig::seed`] — drives initial weights, batch
//!   order, queue tie-breaks, loss draws and fault expansion;
//! - [`crate::config::TrainConfig::ordering`] — `Window { max_skew_ns }`
//!   lets a batch absorb events within a bounded virtual-time skew of its
//!   head (each still executes at its own timestamp), trading strict
//!   commit interleaving for batch width under fully-random speeds;
//!   `Strict` (the default) is bit-identical to the pre-sharding engine;
//! - the heterogeneity profile, fault plan, staleness policy, topology and
//!   every learning hyperparameter.
//!
//! The contract is enforced by tests: `tests/parallel_determinism.rs`
//! replays a fault + staleness workload at `threads` ∈ {1, 2, 8} and
//! asserts identical [`RoundRecord`] streams; `engine::tests::`
//! `event_driven_replays_identically_and_ignores_thread_count` covers the
//! straggler path, `tests/event_driven.rs` pins event-vs-barrier
//! bit-equality on degenerate profiles, and the `jwins_sim` proptests pin
//! the batch/pop equivalence itself. The batch width also bounds the
//! attainable speedup: nodes whose clocks drift apart (fully random
//! per-node speeds) yield singleton batches, while class-structured
//! profiles (e.g. [`jwins_sim::HeterogeneityProfile::stragglers`]) keep
//! same-speed cohorts aligned and batch wide — see the `ext_parallel`
//! bench, and `ext_scale` for the windowed-ordering escape hatch at large
//! node counts.

use crate::arena::ParamArena;
use crate::config::{ExecutionMode, TrainConfig, TransportKind};
use crate::metrics::{RoundRecord, RunResult, TargetHit};
use crate::participation::{AlwaysOn, ParticipationModel};
use crate::strategy::{Outbound, ReceivedMessage, ShareStrategy};
use crate::{JwinsError, Result};
use jwins_adversary::{AttackBehavior, AttackTimeline};
use jwins_data::batch::BatchSampler;
use jwins_fault::RejoinMode;
use jwins_net::{
    LossModel, PendingSend, PurgeScope, SimNetwork, ThreadChannelTransport, Transport,
};
use jwins_nn::model::{EvalMetrics, Model};
use jwins_sim::{Conflict, LifecycleEvent, LifecycleTracker, ShardedEventQueue, SimTime};
use jwins_topology::dynamic::{RoundTopology, TopologyProvider};
use jwins_topology::repair::{dead_neighbor_counts, LiveSet};
use jwins_trace::{AttackKind, BatchClass, KillReason, TraceEvent, TraceSink, Tracer};
use std::sync::Arc;

/// Builder for [`Trainer`] (see [`Trainer::builder`]).
pub struct TrainerBuilder<M: Model> {
    config: TrainConfig,
    topology: Option<Box<dyn TopologyProvider>>,
    participation: Box<dyn ParticipationModel>,
    test: Vec<M::Sample>,
    nodes: Vec<(M, Box<dyn ShareStrategy>)>,
    shards: Vec<Vec<M::Sample>>,
    sync_init: bool,
    trace_sinks: Vec<Box<dyn TraceSink>>,
}

impl<M: Model> TrainerBuilder<M> {
    /// Sets the topology provider (static or dynamic).
    #[must_use]
    pub fn topology(mut self, provider: impl TopologyProvider + 'static) -> Self {
        self.topology = Some(Box::new(provider));
        self
    }

    /// Sets the participation model (default: every node active every
    /// round). Inactive nodes neither train nor communicate and receive no
    /// messages — they rejoin later with their last local model.
    #[must_use]
    pub fn participation(mut self, model: impl ParticipationModel + 'static) -> Self {
        self.participation = Box::new(model);
        self
    }

    /// Sets the shared test set.
    #[must_use]
    pub fn test_set(mut self, test: Vec<M::Sample>) -> Self {
        self.test = test;
        self
    }

    /// Adds one node with its model, strategy and local shard.
    #[must_use]
    pub fn node(
        mut self,
        model: M,
        strategy: Box<dyn ShareStrategy>,
        shard: Vec<M::Sample>,
    ) -> Self {
        self.nodes.push((model, strategy));
        self.shards.push(shard);
        self
    }

    /// Adds one node per shard, building model and strategy from a factory
    /// receiving the node index (`0..n` across all `node`/`nodes` calls —
    /// strategies like PowerGossip use it to orient edges, so it must match
    /// the engine's node numbering exactly).
    #[must_use]
    pub fn nodes(
        mut self,
        shards: Vec<Vec<M::Sample>>,
        mut factory: impl FnMut(usize) -> (M, Box<dyn ShareStrategy>),
    ) -> Self {
        for shard in shards {
            let index = self.nodes.len();
            let (model, strategy) = factory(index);
            self.nodes.push((model, strategy));
            self.shards.push(shard);
        }
        self
    }

    /// Keep each node's own initial weights instead of broadcasting node 0's
    /// (used by consensus tests; real D-PSGD starts from a common model).
    #[must_use]
    pub fn keep_distinct_init(mut self) -> Self {
        self.sync_init = false;
        self
    }

    /// Attaches an extra trace sink (e.g. a [`jwins_trace::MemorySink`]) on
    /// top of whatever [`TrainConfig::trace`] configures. Sinks observe the
    /// run; they cannot change it — every [`RoundRecord`] is bit-identical
    /// with or without them.
    #[must_use]
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace_sinks.push(sink);
        self
    }

    /// Validates and assembles the trainer.
    ///
    /// # Errors
    ///
    /// Fails when the configuration is invalid, the topology is missing or
    /// its node count disagrees with the number of nodes added.
    pub fn build(self) -> Result<Trainer<M>> {
        self.config.validate()?;
        let topology = self
            .topology
            .ok_or_else(|| JwinsError::InvalidConfig("topology is required".into()))?;
        if self.nodes.is_empty() {
            return Err(JwinsError::InvalidConfig(
                "at least one node required".into(),
            ));
        }
        if topology.nodes() != self.nodes.len() {
            return Err(JwinsError::InvalidConfig(format!(
                "topology has {} nodes but {} were added",
                topology.nodes(),
                self.nodes.len()
            )));
        }
        if self.test.is_empty() {
            return Err(JwinsError::InvalidConfig("test set is empty".into()));
        }
        let n = self.nodes.len();
        let init_params = {
            let (model0, _) = &self.nodes[0];
            model0.params()
        };
        let mut nodes = Vec::with_capacity(n);
        let mut init = Vec::with_capacity(n);
        for (i, ((mut model, strategy), shard)) in
            self.nodes.into_iter().zip(self.shards).enumerate()
        {
            if shard.is_empty() {
                return Err(JwinsError::InvalidConfig(format!("node {i} has no data")));
            }
            let params = if self.sync_init {
                model.set_params(&init_params);
                init_params.clone()
            } else {
                model.params()
            };
            // Robust aggregation is a mixing-layer decoration: wrap the
            // strategy so its `aggregate` routes through the configured
            // rule. Strategies whose update is not an average the mixing
            // layer can screen are a configuration error, caught here —
            // before any training state exists.
            let mut strategy = if self.config.robust.is_none() {
                strategy
            } else if strategy.supports_robust() {
                Box::new(crate::robust::RobustWrapper::new(
                    strategy,
                    self.config.robust,
                )) as Box<dyn ShareStrategy>
            } else {
                return Err(JwinsError::InvalidConfig(format!(
                    "strategy '{}' does not support robust aggregation \
                     (TrainConfig::robust must be Robust::None with it)",
                    strategy.name()
                )));
            };
            strategy.init(&params);
            let sampler = BatchSampler::new(
                shard,
                jwins_nn::init::sub_seed(self.config.seed, 0x1000 + i as u64),
            );
            nodes.push(NodeState {
                model,
                sampler,
                strategy,
                out: None,
                last_train_loss: 0.0,
                last_alpha: 0.0,
            });
            init.push(params);
        }
        let arena = ParamArena::from_nodes(init);
        // The transport is chosen here and never again: the engine speaks
        // only the `Transport` trait from this point on, so both backends
        // run the exact same round program.
        let mut network: Box<dyn Transport> = match self.config.transport {
            TransportKind::Sim => {
                if self.config.message_loss > 0.0 {
                    Box::new(SimNetwork::lossy(
                        n,
                        LossModel::new(self.config.message_loss, self.config.seed ^ 0x1055),
                    ))
                } else {
                    Box::new(SimNetwork::new(n))
                }
            }
            TransportKind::Channel(_) => Box::new(ThreadChannelTransport::new(n)),
        };
        // File sinks are opened here so a bad trace path fails the build as
        // a configuration error rather than wedging mid-run.
        let mut tracer = Tracer::from_config(&self.config.trace)
            .map_err(|e| JwinsError::InvalidConfig(format!("cannot open trace sink: {e}")))?;
        // The metrics layer rides the tracer as one more sink; like any
        // sink it only observes committed events, so attaching it cannot
        // change a bit of the run (tests/metrics_layer.rs).
        if let Some(metrics) = jwins_metrics::MetricsSink::from_config(&self.config.metrics)
            .map_err(|e| JwinsError::InvalidConfig(format!("cannot open metrics export: {e}")))?
        {
            tracer.push_sink(Box::new(metrics));
        }
        for sink in self.trace_sinks {
            tracer.push_sink(sink);
        }
        let tracer = Arc::new(tracer);
        network.set_tracer(Arc::clone(&tracer));
        Ok(Trainer {
            network: Arc::from(network),
            test: Arc::new(self.test),
            config: self.config,
            topology,
            participation: self.participation,
            nodes,
            arena,
            tracer,
        })
    }
}

/// Running fault/staleness/repair counters surfaced in every
/// [`RoundRecord`].
#[derive(Debug, Clone, Copy, Default)]
struct FaultTelemetry {
    crashes: u64,
    rejoins: u64,
    downweight_mass: f64,
    edges_rewired: u64,
    bandwidth_saved_bytes: u64,
    attacks_injected: u64,
    mass_clipped: f64,
}

/// Engine-side seed salt for attack-plan expansion — distinct from every
/// other salt so the attack schedule draws randomness independent of fault
/// expansion, compute speeds, link jitter, queue tie-breaks and loss draws.
const ATTACK_SALT: u64 = 0x4174_636B; // "Atck"

/// Maps a plan behavior to its trace-event kind tag.
fn attack_kind(behavior: AttackBehavior) -> AttackKind {
    match behavior {
        AttackBehavior::Garbage { .. } => AttackKind::Garbage,
        AttackBehavior::SignFlip => AttackKind::SignFlip,
        AttackBehavior::Scale { .. } => AttackKind::Scale,
        AttackBehavior::Drift { .. } => AttackKind::Drift,
        _ => unreachable!("unknown attack behavior"),
    }
}

/// Per-node training state. Flat model parameters live *outside* this
/// struct, in the trainer's [`ParamArena`] — one contiguous buffer indexed
/// by node id — so the hot per-batch state is cache-dense at large node
/// counts; closures receive the node's window as a `&mut [f32]` alongside
/// its `NodeState`.
pub(crate) struct NodeState<M: Model> {
    pub(crate) model: M,
    pub(crate) sampler: BatchSampler<M::Sample>,
    pub(crate) strategy: Box<dyn ShareStrategy>,
    pub(crate) out: Option<Outbound>,
    pub(crate) last_train_loss: f32,
    pub(crate) last_alpha: f64,
}

/// Runs τ local SGD steps on one node — the *identical* instruction sequence
/// for both execution substrates, so event-driven runs with a degenerate
/// heterogeneity profile replay bulk-synchronous results bit-for-bit.
pub(crate) fn train_steps<M: Model>(
    node: &mut NodeState<M>,
    params: &mut [f32],
    tau: usize,
    batch_size: usize,
    lr: f32,
) {
    node.model.set_params(params);
    let mut loss = 0.0;
    for _ in 0..tau {
        let batch = node.sampler.sample(batch_size);
        let (l, grad) = node.model.loss_and_grad(&batch);
        loss = l;
        for (p, g) in params.iter_mut().zip(&grad) {
            *p -= lr * g;
        }
        node.model.set_params(params);
    }
    node.last_train_loss = loss;
}

/// Runs each node's closure in parallel chunks, propagating the first error.
/// Phases are barrier-separated, so results do not depend on thread count.
/// Each closure gets the node's arena window alongside its state; chunks
/// carry matching (state, window) pairs, so the borrows stay disjoint.
fn par_nodes<M, F>(
    nodes: &mut [NodeState<M>],
    arena: &mut ParamArena,
    threads: usize,
    f: F,
) -> Result<()>
where
    M: Model + Send,
    M::Sample: Send + Sync,
    F: Fn(usize, &mut NodeState<M>, &mut [f32]) -> Result<()> + Sync,
{
    let threads = threads.min(nodes.len()).max(1);
    let params = arena.slices_mut();
    if threads == 1 {
        for (i, (node, params)) in nodes.iter_mut().zip(params).enumerate() {
            f(i, node, params)?;
        }
        return Ok(());
    }
    let chunk = nodes.len().div_ceil(threads);
    let mut work: Vec<(&mut NodeState<M>, &mut [f32])> = nodes.iter_mut().zip(params).collect();
    let mut chunks: Vec<Vec<(&mut NodeState<M>, &mut [f32])>> = Vec::new();
    while !work.is_empty() {
        let rest = work.split_off(chunk.min(work.len()));
        chunks.push(std::mem::replace(&mut work, rest));
    }
    let results: Vec<Result<()>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(ci, chunk_items)| {
                let f = &f;
                scope.spawn(move |_| {
                    for (k, (node, params)) in chunk_items.into_iter().enumerate() {
                        f(ci * chunk + k, node, params)?;
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect()
    })
    .expect("scope does not panic");
    results.into_iter().collect()
}

/// One unit of `par_batch` work: a node id, its state and arena window,
/// and the event payload.
type WorkItem<'a, M, T> = (usize, &'a mut NodeState<M>, &'a mut [f32], T);

/// Executes one closure per `(node, item)` pair on the worker pool — the
/// event-driven engine's *execute* phase. Items carry distinct node ids
/// (the queue's independent-batch contract), whose states are selected as
/// disjoint `&mut` borrows. Outputs come back in item order and the first
/// error *in item order* wins regardless of thread timing, so both results
/// and failures are independent of thread count.
fn par_batch<M, T, P, F>(
    nodes: &mut [NodeState<M>],
    arena: &mut ParamArena,
    items: Vec<(usize, T)>,
    threads: usize,
    f: F,
) -> Result<Vec<P>>
where
    M: Model + Send,
    M::Sample: Send + Sync,
    T: Send,
    P: Send,
    F: Fn(usize, &mut NodeState<M>, &mut [f32], T) -> Result<P> + Sync,
{
    let mut slots: Vec<Option<&mut NodeState<M>>> = nodes.iter_mut().map(Some).collect();
    let mut pslots: Vec<Option<&mut [f32]>> = arena.slices_mut().into_iter().map(Some).collect();
    let mut work: Vec<WorkItem<'_, M, T>> = items
        .into_iter()
        .map(|(id, item)| {
            let state = slots[id]
                .take()
                .expect("batch nodes must be pairwise distinct");
            let params = pslots[id].take().expect("state and window taken together");
            (id, state, params, item)
        })
        .collect();
    let threads = threads.min(work.len()).max(1);
    if threads == 1 {
        return work
            .into_iter()
            .map(|(id, state, params, item)| f(id, state, params, item))
            .collect();
    }
    let chunk = work.len().div_ceil(threads);
    let mut chunks: Vec<Vec<WorkItem<'_, M, T>>> = Vec::new();
    while !work.is_empty() {
        let rest = work.split_off(chunk.min(work.len()));
        chunks.push(std::mem::replace(&mut work, rest));
    }
    let results: Vec<Result<Vec<P>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk_items| {
                let f = &f;
                scope.spawn(move |_| {
                    chunk_items
                        .into_iter()
                        .map(|(id, state, params, item)| f(id, state, params, item))
                        .collect::<Result<Vec<P>>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect()
    })
    .expect("scope does not panic");
    let mut out = Vec::with_capacity(results.len());
    for chunk_result in results {
        out.extend(chunk_result?);
    }
    Ok(out)
}

/// A configured decentralized training run.
pub struct Trainer<M: Model> {
    pub(crate) config: TrainConfig,
    pub(crate) topology: Box<dyn TopologyProvider>,
    pub(crate) participation: Box<dyn ParticipationModel>,
    pub(crate) network: Arc<dyn Transport>,
    pub(crate) nodes: Vec<NodeState<M>>,
    /// Every node's flat parameters in one contiguous buffer (see
    /// [`ParamArena`]); `nodes[i]`'s window is `arena.node(i)`.
    pub(crate) arena: ParamArena,
    pub(crate) test: Arc<Vec<M::Sample>>,
    /// Run telemetry. Always present — the flight recorder inside is the
    /// always-on crash context — and only ever *read from* sequential code,
    /// so it can never perturb a result (see `jwins_trace`).
    pub(crate) tracer: Arc<Tracer>,
}

impl<M: Model> Trainer<M> {
    /// Starts building a trainer.
    pub fn builder(config: TrainConfig) -> TrainerBuilder<M> {
        TrainerBuilder {
            config,
            topology: None,
            participation: Box::new(AlwaysOn),
            test: Vec::new(),
            nodes: Vec::new(),
            shards: Vec::new(),
            sync_init: true,
            trace_sinks: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's current flat parameters (test hook).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_params(&self, node: usize) -> &[f32] {
        self.arena.node(node)
    }

    /// Overwrites a node's parameters (test hook for consensus experiments).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the length mismatches.
    pub fn set_node_params(&mut self, node: usize, params: &[f32]) {
        let window = self.arena.node_mut(node);
        assert_eq!(params.len(), window.len());
        window.copy_from_slice(params);
        self.nodes[node].model.set_params(params);
        self.nodes[node].strategy.init(params);
    }

    fn worker_threads(&self) -> usize {
        if self.config.threads > 0 {
            self.config.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Active neighbours of `i` this round, in sorted order.
    pub(crate) fn active_neighbors(topo: &RoundTopology, active: &[bool], i: usize) -> Vec<usize> {
        topo.graph
            .neighbors(i)
            .iter()
            .copied()
            .filter(|&j| active[j])
            .collect()
    }

    /// Local-training + message phase of one round. Inactive nodes skip
    /// both, keeping their last model. `attacks[i]` marks node `i` as
    /// Byzantine this round: it still trains honestly (its own trajectory
    /// is untouched) but builds its outbound messages from a perturbed
    /// *copy* of its parameters — the injection point the adversarial
    /// layer shares with the event-driven substrate.
    fn phase_train(
        &mut self,
        round: usize,
        topo: &RoundTopology,
        active: &[bool],
        attacks: &[Option<AttackBehavior>],
    ) -> Result<()>
    where
        M: Send,
        M::Sample: Send + Sync,
    {
        let tau = self.config.local_steps;
        let bs = self.config.batch_size;
        let lr = self.config.lr;
        let atk_seed = self.config.seed ^ ATTACK_SALT;
        let threads = self.worker_threads();
        par_nodes(
            &mut self.nodes,
            &mut self.arena,
            threads,
            move |i, node, params| {
                if !active[i] {
                    node.out = None;
                    return Ok(());
                }
                train_steps(node, params, tau, bs, lr);
                let neighbors = Self::active_neighbors(topo, active, i);
                let outbound = if let Some(behavior) = attacks[i] {
                    let mut tainted = params.to_vec();
                    jwins_adversary::apply_behavior(behavior, atk_seed, i, round, &mut tainted);
                    node.strategy.make_outbound(round, &tainted, &neighbors)?
                } else {
                    node.strategy.make_outbound(round, params, &neighbors)?
                };
                node.out = Some(outbound);
                node.last_alpha = node.strategy.last_alpha();
                Ok(())
            },
        )
    }

    /// Message delivery; returns the max bytes any single node pushed.
    /// Messages flow only between nodes active this round.
    fn phase_deliver(&mut self, topo: &RoundTopology, active: &[bool]) -> Result<u64> {
        let mut max_node_bytes = 0u64;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !active[i] {
                continue;
            }
            let outbound = node
                .out
                .take()
                .ok_or(JwinsError::Protocol("active node produced no message"))?;
            let neighbors = Self::active_neighbors(topo, active, i);
            let mut node_bytes = 0u64;
            match outbound {
                Outbound::Broadcast(msg) => {
                    node_bytes = (msg.bytes.len() * neighbors.len()) as u64;
                    for &to in &neighbors {
                        self.network.send(PendingSend::bulk(
                            i,
                            to,
                            msg.bytes.clone(),
                            msg.breakdown,
                        ));
                    }
                }
                Outbound::PerEdge(messages) => {
                    if messages.len() != neighbors.len() {
                        return Err(JwinsError::Protocol(
                            "per-edge message count mismatches neighbour count",
                        ));
                    }
                    for (&to, msg) in neighbors.iter().zip(messages) {
                        if let Some(msg) = msg {
                            node_bytes += msg.bytes.len() as u64;
                            self.network
                                .send(PendingSend::bulk(i, to, msg.bytes, msg.breakdown));
                        }
                    }
                }
            }
            max_node_bytes = max_node_bytes.max(node_bytes);
        }
        Ok(max_node_bytes)
    }

    /// Aggregation phase of one round (active nodes only).
    fn phase_aggregate(&mut self, round: usize, topo: &RoundTopology, active: &[bool]) -> Result<()>
    where
        M: Send,
        M::Sample: Send + Sync,
    {
        let network = &self.network;
        let graph = Arc::clone(&topo.graph);
        let weights = Arc::clone(&topo.weights);
        let threads = self.worker_threads();
        par_nodes(
            &mut self.nodes,
            &mut self.arena,
            threads,
            move |i, node, params| {
                if !active[i] {
                    return Ok(());
                }
                // No deadline, no TTL: barrier rounds deliver everything sent.
                let inbox = network.drain(i, SimTime::MAX, None).envelopes;
                let neighbors = graph.neighbors(i);
                let received: Vec<ReceivedMessage<'_>> = inbox
                    .iter()
                    .map(|env| {
                        let pos = neighbors
                            .binary_search(&env.from)
                            .map_err(|_| JwinsError::Protocol("message from non-neighbour"))?;
                        let weight = weights.neighbor_weights(i)[pos];
                        Ok(ReceivedMessage {
                            from: env.from,
                            // Barrier rounds are lockstep: every message in the
                            // inbox was built for this round.
                            round,
                            weight,
                            edge_weight: weight,
                            bytes: &env.payload,
                        })
                    })
                    .collect::<Result<_>>()?;
                let mixed =
                    node.strategy
                        .aggregate(round, params, weights.self_weight(i), &received)?;
                params.copy_from_slice(&mixed);
                node.model.set_params(params);
                Ok(())
            },
        )
    }

    /// Evaluates all nodes on the shared test set (possibly subsampled),
    /// returning merged metrics plus each node's own accuracy — the
    /// per-node series that makes the fast/slow (and survivor/rejoiner)
    /// gap visible where the cluster mean hides it.
    fn evaluate(&mut self) -> Result<(EvalMetrics, Vec<f64>)>
    where
        M: Send,
        M::Sample: Send + Sync,
    {
        let cap = self.config.eval_test_samples;
        let test = Arc::clone(&self.test);
        // Per-node slots merged in node order afterwards: float sums must
        // not depend on which worker thread finished first.
        let per_node: Vec<parking_lot::Mutex<EvalMetrics>> = (0..self.nodes.len())
            .map(|_| parking_lot::Mutex::new(EvalMetrics::default()))
            .collect();
        let threads = self.worker_threads();
        par_nodes(
            &mut self.nodes,
            &mut self.arena,
            threads,
            |i, node, params| {
                let subset: &[M::Sample] = if cap == 0 || cap >= test.len() {
                    &test
                } else {
                    &test[..cap]
                };
                node.model.set_params(params);
                let mut local = EvalMetrics::default();
                for chunk in subset.chunks(64) {
                    local.merge(&node.model.evaluate(chunk));
                }
                *per_node[i].lock() = local;
                Ok(())
            },
        )?;
        let mut merged = EvalMetrics::default();
        let mut accuracies = Vec::with_capacity(per_node.len());
        for slot in &per_node {
            let local = slot.lock();
            accuracies.push(local.accuracy());
            merged.merge(&local);
        }
        Ok((merged, accuracies))
    }

    #[allow(clippy::too_many_arguments)]
    fn snapshot(
        &self,
        round: usize,
        metrics: &EvalMetrics,
        per_node_accuracy: Vec<f64>,
        sim_time: f64,
        mean_staleness_s: f64,
        faults: FaultTelemetry,
        checkpoint: bool,
    ) -> RoundRecord {
        let n = self.nodes.len() as f64;
        let total = self.network.total_stats();
        let train_loss = self
            .nodes
            .iter()
            .map(|s| f64::from(s.last_train_loss))
            .sum::<f64>()
            / n;
        let mean_alpha = self.nodes.iter().map(|s| s.last_alpha).sum::<f64>() / n;
        RoundRecord {
            round,
            train_loss,
            test_loss: metrics.mean_loss(),
            test_accuracy: metrics.accuracy(),
            test_rmse: metrics.rmse(),
            mean_alpha,
            cum_bytes_per_node: total.bytes_sent as f64 / n,
            cum_payload_per_node: total.payload_sent as f64 / n,
            cum_metadata_per_node: total.metadata_sent as f64 / n,
            sim_time_s: sim_time,
            mean_staleness_s,
            crashes: faults.crashes,
            rejoins: faults.rejoins,
            messages_expired: total.messages_expired,
            downweight_mass: faults.downweight_mass,
            edges_rewired: faults.edges_rewired,
            bandwidth_saved_bytes: faults.bandwidth_saved_bytes,
            attacks_injected: faults.attacks_injected,
            mass_clipped: faults.mass_clipped,
            per_node_accuracy,
            checkpoint,
        }
    }

    /// Executes the full run on the substrate selected by
    /// [`TrainConfig::execution`].
    ///
    /// # Errors
    ///
    /// Propagates strategy, codec and topology errors.
    pub fn run(self) -> Result<RunResult>
    where
        M: Send,
        M::Sample: Send + Sync,
    {
        let tracer = Arc::clone(&self.tracer);
        tracer.emit(TraceEvent::RunStart {
            nodes: self.nodes.len() as u32,
            rounds: self.config.rounds as u32,
            seed: self.config.seed,
        });
        // If anything below panics, the guard dumps the flight recorder's
        // tail to stderr before the process unwinds.
        let guard = jwins_trace::FlightDumpGuard::new(Arc::clone(&tracer));
        let result = if self.config.transport.is_real() {
            // The channel backend has no virtual clock to schedule either
            // substrate on; its driver runs the round program on one OS
            // thread per node (validation already pinned the execution
            // mode to BulkSynchronous).
            crate::channel_driver::run_channel(self)
        } else {
            match self.config.execution {
                ExecutionMode::BulkSynchronous => self.run_sync(),
                ExecutionMode::EventDriven => self.run_event_driven(),
            }
        };
        drop(guard);
        if result.is_err() {
            // Protocol violations surface as errors, not panics; dump the
            // same crash context for them.
            tracer.dump_flight_to_stderr("protocol violation");
        }
        tracer.finish();
        result
    }

    /// The paper's barrier-synchronized round loop.
    fn run_sync(mut self) -> Result<RunResult>
    where
        M: Send,
        M::Sample: Send + Sync,
    {
        let tracer = Arc::clone(&self.tracer);
        let strategy_name = self.nodes[0].strategy.name().to_owned();
        let n = self.nodes.len();
        let attacks =
            AttackTimeline::expand(&self.config.attack, n, self.config.seed ^ ATTACK_SALT)
                .map_err(JwinsError::InvalidConfig)?;
        let mut attacks_injected = 0u64;
        let mut mass_clipped = 0.0f64;
        let mut records = Vec::new();
        let mut alpha_history = Vec::new();
        let mut sim_time = 0.0f64;
        let mut reached_target = None;
        let mut rounds_run = 0;
        for round in 0..self.config.rounds {
            let topo = self.topology.topology(round);
            let active: Vec<bool> = (0..n)
                .map(|i| self.participation.is_active(round, i))
                .collect();
            // Attack windows are virtual-time spans; resolve them at the
            // round's start time, sequentially, so the parallel train phase
            // only reads the finished slice.
            let t_start = SimTime::from_secs_f64(sim_time);
            let round_attacks: Vec<Option<AttackBehavior>> = if attacks.is_empty() {
                vec![None; n]
            } else {
                (0..n)
                    .map(|i| {
                        if active[i] {
                            attacks.behavior_at(i, t_start)
                        } else {
                            None
                        }
                    })
                    .collect()
            };
            self.phase_train(round, &topo, &active, &round_attacks)?;
            // Sequential, after the barrier: one injection event per
            // attacker that actually sent this round.
            for (i, behavior) in round_attacks.iter().enumerate() {
                if let Some(b) = *behavior {
                    attacks_injected += 1;
                    tracer.emit(TraceEvent::AttackInject {
                        t_ns: t_start.0,
                        node: i as u32,
                        round: round as u32,
                        kind: attack_kind(b),
                    });
                }
            }
            if self.config.record_alphas {
                alpha_history.push(self.nodes.iter().map(|s| s.last_alpha).collect());
            }
            let max_bytes = self.phase_deliver(&topo, &active)?;
            sim_time += self.config.time_model.round_seconds(max_bytes);
            self.phase_aggregate(round, &topo, &active)?;
            rounds_run = round + 1;
            let t_ns = SimTime::from_secs_f64(sim_time).0;
            // Sequential, in node order — pairing telemetry is drained only
            // from the barrier, never from the parallel aggregate phase.
            for (i, node) in self.nodes.iter_mut().enumerate() {
                if let Some(ps) = node.strategy.pairing_stats() {
                    tracer.emit(TraceEvent::StrategyPairing {
                        t_ns,
                        node: i as u32,
                        round: round as u32,
                        paired: ps.paired,
                        fresh_resets: ps.fresh_resets,
                        ignored: ps.ignored,
                    });
                }
                if let Some(rs) = node.strategy.robust_stats() {
                    mass_clipped += rs.mass;
                    tracer.emit(TraceEvent::RobustClip {
                        t_ns,
                        node: i as u32,
                        round: round as u32,
                        clipped: rs.clipped,
                        mass: rs.mass,
                    });
                }
            }
            tracer.emit(TraceEvent::RoundComplete {
                t_ns,
                round: round as u32,
            });
            let is_last = round + 1 == self.config.rounds;
            let eval_due = is_last
                || (self.config.eval_every > 0 && (round + 1) % self.config.eval_every == 0);
            if eval_due {
                let (metrics, per_node) = self.evaluate()?;
                let record = self.snapshot(
                    round,
                    &metrics,
                    per_node,
                    sim_time,
                    0.0,
                    FaultTelemetry {
                        attacks_injected,
                        mass_clipped,
                        ..FaultTelemetry::default()
                    },
                    false,
                );
                tracer.emit(TraceEvent::Eval {
                    t_ns,
                    round: round as u32,
                    checkpoint: false,
                    accuracy: record.test_accuracy,
                });
                let hit_target = self
                    .config
                    .target_accuracy
                    .is_some_and(|t| record.test_accuracy >= t);
                let bytes_per_node = record.cum_bytes_per_node;
                records.push(record);
                if hit_target && reached_target.is_none() {
                    reached_target = Some(TargetHit {
                        round,
                        sim_time_s: sim_time,
                        bytes_per_node,
                    });
                    break;
                }
            }
        }
        tracer.emit(TraceEvent::RunEnd {
            t_ns: SimTime::from_secs_f64(sim_time).0,
            rounds_run: rounds_run as u32,
            queue_depth_hwm: 0,
        });
        Ok(RunResult {
            strategy: strategy_name,
            records,
            total_traffic: self.network.total_stats(),
            rounds_run,
            reached_target,
            alpha_history,
            measured_latency_s: None,
        })
    }

    /// The discrete-event asynchronous-gossip loop.
    ///
    /// Each node cycles through three events on the shared virtual clock:
    ///
    /// 1. `StartRound` — consult participation; an active node schedules
    ///    `TrainDone` after `compute_s / speed` seconds, an inactive one
    ///    idles for the same window;
    /// 2. `TrainDone` — run τ SGD steps, then serialize this round's
    ///    messages over the uplink one neighbour at a time (each arrives
    ///    `latency + bytes/bandwidth` after its transmission starts) and
    ///    schedule `Mix` once the last byte has left;
    /// 3. `Mix` — drain every message that has *arrived* by the local
    ///    clock and survived the staleness policy (TTL expiry at drain,
    ///    over-cap drop or down-weighting at mix — down-weighted mass moves
    ///    to the self-weight so mixing stays row-stochastic), aggregate,
    ///    and start the next round.
    ///
    /// The fault plan (see `jwins_fault`) is replayed as `Crash`/`Recover`
    /// events: a crash abandons the node's round in progress, destroys its
    /// inbox and its in-flight outgoing messages, and invalidates its
    /// scheduled events via lifecycle epochs; a recovery rejoins warm or
    /// re-synced from the lowest-indexed live peer and resumes with the
    /// node's next round. `TrainConfig::eval_interval_s` adds virtual-time
    /// evaluation checkpoints so fast nodes' progress is visible mid-round.
    ///
    /// Simultaneous events are ordered fault < train < mix < start < eval,
    /// then by node id, so equal-time rounds interleave exactly like the
    /// barrier engine — which is why a degenerate heterogeneity profile
    /// (with a no-op fault config) reproduces bulk-synchronous results
    /// bit-for-bit.
    ///
    /// Independent simultaneous events (same kind — same round, for mixes —
    /// on disjoint nodes) execute as one parallel batch whose side effects
    /// are buffered and committed in pop order — see the module docs for
    /// the full propose/execute/commit contract and why `threads` cannot
    /// change any result.
    fn run_event_driven(mut self) -> Result<RunResult>
    where
        M: Send,
        M::Sample: Send + Sync,
    {
        #[derive(Debug, Clone, Copy)]
        enum Ev {
            StartRound {
                node: usize,
                round: usize,
                epoch: u64,
            },
            TrainDone {
                node: usize,
                round: usize,
                epoch: u64,
            },
            Mix {
                node: usize,
                round: usize,
                trained: bool,
                epoch: u64,
            },
            Fault {
                event: LifecycleEvent,
                rejoin: RejoinMode,
            },
            EvalTick,
        }
        const RANK_FAULT: u64 = 0;
        const RANK_TRAIN: u64 = 1;
        const RANK_MIX: u64 = 2;
        const RANK_START: u64 = 3;
        const RANK_EVAL: u64 = 4;
        fn prio(rank: u64, node: usize) -> u64 {
            (rank << 32) | node as u64
        }

        let n = self.nodes.len();
        let rounds = self.config.rounds;
        let strategy_name = self.nodes[0].strategy.name().to_owned();
        // Telemetry. Every emit below sits in sequential propose/commit
        // code and only *reads* engine state, so tracing can never perturb
        // RNG draws, event order or any RoundRecord bit. Wall-clock phase
        // timings (the ExecuteBatch side channel) are the one
        // non-deterministic payload; `TraceEvent::canonical` zeroes them.
        let tracer = Arc::clone(&self.tracer);
        let run_wall = std::time::Instant::now();
        let fault_timeline = jwins_fault::FaultTimeline::expand(
            &self.config.faults.plan,
            n,
            self.config.seed ^ 0xFA_17,
        )
        .map_err(JwinsError::InvalidConfig)?;
        // Byzantine schedule, expanded once like the fault plan. A crashed
        // node can never inject: its TrainDone events are epoch-stale and
        // it builds no messages while down.
        let attack_timeline =
            AttackTimeline::expand(&self.config.attack, n, self.config.seed ^ ATTACK_SALT)
                .map_err(JwinsError::InvalidConfig)?;
        let staleness = self.config.faults.staleness;
        let ttl = staleness.ttl().map(SimTime::from_secs_f64);
        let has_cap = staleness.has_cap();
        // Cross-round messages (real heterogeneity, fault plans) are part of
        // the contract: every delivery carries its sender's round stamp, and
        // strategies with per-edge state version their handshakes by it (see
        // the edge-state versioning contract on `ShareStrategy`), so no
        // strategy needs to be refused here.
        let speeds = self
            .config
            .heterogeneity
            .compute
            .speeds(n, self.config.seed ^ 0xC0_FFEE);
        let links = self.config.heterogeneity.links.clone();
        let link_seed = self.config.seed ^ 0x11_4B;
        let compute_time: Vec<SimTime> = speeds
            .iter()
            .map(|s| SimTime::from_secs_f64(self.config.time_model.compute_s / s))
            .collect();

        // Liveness-aware topology repair: when active, every round context
        // is resolved through the provider's live-aware path and then
        // repaired around the currently-dead nodes; crashes and rejoins
        // re-resolve the rounds in progress. `RepairPolicy::None` takes the
        // plain `topology(round)` path below, bit-for-bit as before.
        let repair = self.config.repair;
        let repair_on = !repair.is_none();
        let repair_seed = self.config.seed ^ 0x5245_5041; // "REPA"

        // The sharded queue preserves the single-heap total order exactly
        // (global sequence counter + seeded tie-break, min over shard
        // heads), so the shard count is a pure data-structure knob; only
        // `Ordering::Window` changes the schedule, and only batch shapes.
        let mut queue: ShardedEventQueue<Ev> = ShardedEventQueue::new(
            self.config.seed ^ 0xE0E0,
            self.config.shards,
            self.config.ordering,
        );
        for node in 0..n {
            queue.push(
                SimTime::ZERO,
                prio(RANK_START, node),
                node,
                Ev::StartRound {
                    node,
                    round: 0,
                    epoch: 0,
                },
            );
        }
        // Fault and checkpoint events are scheduled *after* the initial
        // StartRounds so a no-op fault config leaves every insertion
        // sequence number — and with it the queue's seeded tie-breaks —
        // exactly as before, preserving the bit-for-bit contract.
        for tf in fault_timeline.events() {
            queue.push(
                tf.at,
                prio(RANK_FAULT, tf.event.node()),
                tf.event.node(),
                Ev::Fault {
                    event: tf.event,
                    rejoin: tf.rejoin,
                },
            );
        }
        if let Some(interval) = self.config.eval_interval_s {
            queue.push(
                SimTime::from_secs_f64(interval),
                prio(RANK_EVAL, 0),
                0,
                Ev::EvalTick,
            );
        }

        // Per-round topology + participation cache: nodes at the same round
        // share one construction (dynamic topologies rebuild graph + MH
        // weights per call — 2n calls per round without this). Entries are
        // evicted once every node has completed the round, bounding memory
        // by the fast/slow-node spread. Under repair each entry also keeps
        // the per-node count of dead base-graph neighbours the repaired
        // topology avoids (the bandwidth-savings accounting).
        struct RoundCtx {
            topo: RoundTopology,
            active: Arc<Vec<bool>>,
            avoided: Arc<Vec<u64>>,
        }
        let mut round_ctx: std::collections::HashMap<usize, RoundCtx> =
            std::collections::HashMap::new();
        let mut lifecycle = LifecycleTracker::new(n);
        let mut edges_rewired = 0u64;
        let mut bandwidth_saved = 0u64;
        macro_rules! ctx_for {
            ($round:expr, $time:expr) => {{
                let round = $round;
                let resolve_time: SimTime = $time;
                if !round_ctx.contains_key(&round) {
                    let active: Vec<bool> = (0..n)
                        .map(|j| self.participation.is_active(round, j))
                        .collect();
                    let (topo, avoided) = if repair_on {
                        let live =
                            LiveSet::new(lifecycle.alive_flags().to_vec(), lifecycle.version());
                        let base = self.topology.topology_for(round, &live);
                        let out = repair.apply(&base, &live, repair_seed, round);
                        edges_rewired += out.edges_added;
                        // Savings count against the liveness-blind graph: a
                        // live-aware provider (PeerSampling) filters dead
                        // peers out of `base` itself, which would zero the
                        // avoided-sends accounting. Blind providers already
                        // counted on that graph inside apply().
                        let avoided = if self.topology.is_live_aware() && !live.is_fully_alive() {
                            dead_neighbor_counts(&self.topology.topology(round).graph, &live)
                        } else {
                            out.dead_neighbors
                        };
                        (out.topology, avoided)
                    } else {
                        (self.topology.topology(round), Vec::new())
                    };
                    tracer.emit(TraceEvent::RoundResolve {
                        t_ns: resolve_time.0,
                        round: round as u32,
                        edges: topo.graph.edges().count() as u32,
                        repaired: repair_on,
                    });
                    round_ctx.insert(
                        round,
                        RoundCtx {
                            topo,
                            active: Arc::new(active),
                            avoided: Arc::new(avoided),
                        },
                    );
                }
                let ctx = &round_ctx[&round];
                (
                    ctx.topo.clone(),
                    Arc::clone(&ctx.active),
                    Arc::clone(&ctx.avoided),
                )
            }};
        }

        // Re-resolves every cached (in-progress) round against the current
        // live set after a crash or rejoin: survivors re-wire, Metropolis
        // weights refresh, and the round's messages on edges the repair
        // removed — in flight *or already arrived* — are invalidated with
        // their receive accounting reversed. An arrived message on a
        // removed edge could never be mixed anyway (the mix weight lookup
        // no longer lists the sender), so purging it meters the loss
        // instead of leaving it to be skipped silently. Runs only in the
        // sequential commit path of solo fault events, so determinism is
        // untouched; rounds iterate in sorted order because the map's
        // iteration order is not deterministic.
        macro_rules! repair_refresh {
            ($time:expr) => {{
                let refresh_time: SimTime = $time;
                let live = LiveSet::new(lifecycle.alive_flags().to_vec(), lifecycle.version());
                let mut cached: Vec<usize> = round_ctx.keys().copied().collect();
                cached.sort_unstable();
                let rounds_refreshed = cached.len() as u32;
                let mut refresh_edges_added = 0u64;
                for round in cached {
                    let base = self.topology.topology_for(round, &live);
                    let out = repair.apply(&base, &live, repair_seed, round);
                    edges_rewired += out.edges_added;
                    refresh_edges_added += out.edges_added;
                    let ctx = round_ctx.get_mut(&round).expect("key just listed");
                    for (a, b) in ctx.topo.graph.edges() {
                        if !out.topology.graph.has_edge(a, b) {
                            // The connection is gone in both directions;
                            // only this round's messages die — other rounds
                            // may still carry the edge.
                            let killed_ab = self
                                .network
                                .purge(PurgeScope::Link {
                                    from: a,
                                    to: b,
                                    sent_round: Some(round),
                                })
                                .messages;
                            let killed_ba = self
                                .network
                                .purge(PurgeScope::Link {
                                    from: b,
                                    to: a,
                                    sent_round: Some(round),
                                })
                                .messages;
                            if killed_ab > 0 {
                                tracer.emit(TraceEvent::MsgKill {
                                    t_ns: refresh_time.0,
                                    node: b as u32,
                                    count: killed_ab,
                                    reason: KillReason::RepairEdge,
                                });
                            }
                            if killed_ba > 0 {
                                tracer.emit(TraceEvent::MsgKill {
                                    t_ns: refresh_time.0,
                                    node: a as u32,
                                    count: killed_ba,
                                    reason: KillReason::RepairEdge,
                                });
                            }
                            // Live endpoints drop their per-edge strategy
                            // state for the removed connection: its pending
                            // handshakes can never complete, and if repair
                            // later restores the edge it must restart from
                            // the deterministic fresh state rather than a
                            // stale warm start.
                            if lifecycle.is_alive(a) {
                                self.nodes[a].strategy.forget_edge(b);
                            }
                            if lifecycle.is_alive(b) {
                                self.nodes[b].strategy.forget_edge(a);
                            }
                        }
                    }
                    ctx.topo = out.topology;
                    // Same liveness-blind savings accounting as ctx_for!.
                    ctx.avoided =
                        Arc::new(if self.topology.is_live_aware() && !live.is_fully_alive() {
                            dead_neighbor_counts(&self.topology.topology(round).graph, &live)
                        } else {
                            out.dead_neighbors
                        });
                }
                tracer.emit(TraceEvent::RepairRewire {
                    t_ns: refresh_time.0,
                    live_version: lifecycle.version(),
                    edges_added: refresh_edges_added,
                    rounds_refreshed,
                });
            }};
        }

        let mut records = Vec::new();
        let mut reached_target = None;
        let mut rounds_run = 0usize;
        let mut completed = vec![0usize; rounds];
        let mut total_staleness_s = 0.0f64;
        let mut mixed_messages = 0u64;
        // Per-(round, node) sharing fractions, filled as TrainDone/idle
        // events fire; only fully completed rounds are reported.
        let mut alpha_rows: Vec<Vec<f64>> = if self.config.record_alphas {
            vec![vec![0.0; n]; rounds]
        } else {
            Vec::new()
        };
        let mut current_alpha = vec![0.0f64; n];
        let mut downweight_mass = 0.0f64;
        let mut attacks_injected = 0u64;
        let mut mass_clipped = 0.0f64;
        // Rounds each node has passed — by mixing or by crash-abandonment.
        // A node's pending events always concern round `rounds_passed[i]`,
        // so every node contributes to every round's completion exactly
        // once and `completed` still counts to `n` under churn.
        let mut rounds_passed = vec![0usize; n];
        let mut last_time = SimTime::ZERO;
        // Queued StartRound/TrainDone/Mix events (the initial StartRounds
        // count). Fault events scheduled far past the end of training must
        // not keep evaluation checkpoints ticking, so EvalTick re-arms only
        // while training events remain — not while the queue is non-empty.
        let mut pending_work = n;
        // Scheduled recoveries per node, and how many of the currently-down
        // nodes will resume actual training when they fire: a down node with
        // rounds left re-adds work on recovery, so the checkpoint cadence
        // must keep ticking through its outage even when every live node has
        // drained its queue.
        let mut recoveries_scheduled = vec![0usize; n];
        for tf in fault_timeline.events() {
            if !tf.event.is_crash() {
                recoveries_scheduled[tf.event.node()] += 1;
            }
        }
        let mut productive_recoveries = 0usize;

        // Round-completion bookkeeping, entered when a node *passes* a
        // round (its Mix fired, or a crash abandoned its round in
        // progress): the last of the `n` passes triggers the round's
        // evaluation point and, on target hit, the early stop. Evaluates to
        // `true` when the run just stopped — the caller must commit nothing
        // further from the current batch, mirroring how the sequential
        // schedule leaves simultaneous events to die in the cleared queue.
        macro_rules! pass_round {
            ($round:expr, $time:expr) => {{
                let round = $round;
                let time: SimTime = $time;
                let mut stop = false;
                completed[round] += 1;
                if completed[round] == n {
                    round_ctx.remove(&round);
                    rounds_run = round + 1;
                    tracer.emit(TraceEvent::RoundComplete {
                        t_ns: time.0,
                        round: round as u32,
                    });
                    let is_last = round + 1 == rounds;
                    let eval_due = is_last
                        || (self.config.eval_every > 0
                            && (round + 1) % self.config.eval_every == 0);
                    if eval_due {
                        let (metrics, per_node) = self.evaluate()?;
                        let mean_staleness_s = if mixed_messages == 0 {
                            0.0
                        } else {
                            total_staleness_s / mixed_messages as f64
                        };
                        let record = self.snapshot(
                            round,
                            &metrics,
                            per_node,
                            time.as_secs_f64(),
                            mean_staleness_s,
                            FaultTelemetry {
                                crashes: lifecycle.crashes(),
                                rejoins: lifecycle.recoveries(),
                                downweight_mass,
                                edges_rewired,
                                bandwidth_saved_bytes: bandwidth_saved,
                                attacks_injected,
                                mass_clipped,
                            },
                            false,
                        );
                        let hit_target = self
                            .config
                            .target_accuracy
                            .is_some_and(|t| record.test_accuracy >= t);
                        tracer.emit(TraceEvent::Eval {
                            t_ns: time.0,
                            round: round as u32,
                            checkpoint: false,
                            accuracy: record.test_accuracy,
                        });
                        records.push(record);
                        if hit_target && reached_target.is_none() {
                            reached_target = Some(TargetHit {
                                round,
                                sim_time_s: time.as_secs_f64(),
                                bytes_per_node: records
                                    .last()
                                    .map_or(0.0, |r| r.cum_bytes_per_node),
                            });
                            // Early stop: cancel everything in flight.
                            queue.clear();
                            stop = true;
                        }
                    }
                }
                stop
            }};
        }

        // Work items and buffered proposals of the two expensive event
        // kinds. Proposals are everything an event wants to do to *shared*
        // state; they are applied at commit, in the queue's pop order.
        struct TrainItem {
            round: usize,
            /// This event's own fire time — the batch head's under Strict,
            /// up to `max_skew_ns` later under Window.
            at: SimTime,
            topo: RoundTopology,
            active: Arc<Vec<bool>>,
            /// Dead base-graph neighbours this node no longer addresses
            /// because repair removed them (0 with repair off).
            avoided: u64,
            /// Byzantine behavior covering this node at train-completion
            /// time (`None` for honest nodes — the overwhelmingly common
            /// case takes the exact pre-attack code path).
            attack: Option<AttackBehavior>,
        }
        struct TrainProposal {
            sends: Vec<PendingSend>,
            mix_at: SimTime,
            alpha: f64,
            /// Bytes not spent on dead neighbours thanks to repair
            /// (per-message size × avoided edges).
            saved_bytes: u64,
        }
        struct MixItem {
            round: usize,
            /// This event's own fire time (see [`TrainItem::at`]).
            at: SimTime,
            topo: RoundTopology,
        }
        struct MixProposal {
            // Per *message*, in drain order: `(from, sent_round,
            // staleness_s)`. The global accumulator folds the staleness
            // terms one at a time at commit, so the float-addition grouping
            // is identical to processing events singly; the provenance pair
            // only feeds `TraceEvent::MsgMixed`.
            staleness: Vec<(usize, usize, f64)>,
            absorbed: f64,
            expired: u64,
        }

        // Resolved once: available_parallelism is a syscall, and the batch
        // loop runs hundreds of thousands of iterations on large sweeps.
        let threads = self.worker_threads();

        // Per-node events batch with same-kind events on other nodes; fault
        // replay and checkpoints touch cluster state and run alone. Mix
        // classes additionally encode the *round*: a round's completion
        // evaluates all nodes, so a mix must never share a batch (and thus
        // an execute phase) with a mix of a different round — the n-th
        // completer of a round is then always the last item of its batch,
        // with every other aggregate of that round already committed and no
        // foreign-round aggregate executed early.
        let classify = |ev: &Ev| match *ev {
            Ev::StartRound { node, .. } => Conflict::Exclusive {
                class: RANK_START,
                node,
            },
            Ev::TrainDone { node, .. } => Conflict::Exclusive {
                class: RANK_TRAIN,
                node,
            },
            Ev::Mix { node, round, .. } => Conflict::Exclusive {
                class: (RANK_MIX << 32) | round as u64,
                node,
            },
            Ev::Fault { .. } | Ev::EvalTick => Conflict::Solo,
        };

        let mut queue_hwm = queue.len() as u32;
        loop {
            let batch = queue.pop_independent_batch(classify);
            let Some(first) = batch.first() else {
                break;
            };
            // Reconstruct the pre-pop depth: the popped batch was still
            // queued when this iteration began.
            queue_hwm = queue_hwm.max((queue.len() + batch.len()) as u32);
            let time = first.time;
            let head = first.event;
            // Under `Ordering::Window` a batch spans fire times; the run's
            // last event time is the batch tail's (equal to the head's
            // under Strict, where batches are simultaneous).
            last_time = batch.last().expect("batch has a head").time;
            match head {
                Ev::StartRound { .. } => {
                    // Pure scheduling — no compute worth parallelizing;
                    // processed in pop order like the sequential loop.
                    for s in batch {
                        let Ev::StartRound { node, round, epoch } = s.event else {
                            unreachable!("batches are homogeneous by class")
                        };
                        pending_work -= 1;
                        if !lifecycle.is_current(node, epoch) {
                            continue;
                        }
                        let (_, active_set, _) = ctx_for!(round, s.time);
                        let active = active_set[node];
                        let end = s.time.plus(compute_time[node]);
                        pending_work += 1;
                        if active {
                            queue.push(
                                end,
                                prio(RANK_TRAIN, node),
                                node,
                                Ev::TrainDone { node, round, epoch },
                            );
                        } else {
                            // Idle through the round window; no train, no I/O.
                            queue.push(
                                end,
                                prio(RANK_MIX, node),
                                node,
                                Ev::Mix {
                                    node,
                                    round,
                                    trained: false,
                                    epoch,
                                },
                            );
                        }
                    }
                }
                Ev::TrainDone { .. } => {
                    let wall_start = run_wall.elapsed();
                    // Propose: charge the pops, filter stale epochs, and
                    // resolve round contexts up front (the cache is only
                    // touched here, sequentially).
                    let mut meta: Vec<(usize, usize, u64, Option<AttackBehavior>, SimTime)> =
                        Vec::new();
                    let mut items: Vec<(usize, TrainItem)> = Vec::new();
                    for s in batch {
                        let Ev::TrainDone { node, round, epoch } = s.event else {
                            unreachable!("batches are homogeneous by class")
                        };
                        pending_work -= 1;
                        if !lifecycle.is_current(node, epoch) {
                            continue;
                        }
                        let (topo, active, avoided) = ctx_for!(round, s.time);
                        let attack = attack_timeline.behavior_at(node, s.time);
                        meta.push((node, round, epoch, attack, s.time));
                        items.push((
                            node,
                            TrainItem {
                                round,
                                at: s.time,
                                topo,
                                active,
                                avoided: avoided.get(node).copied().unwrap_or(0),
                                attack,
                            },
                        ));
                    }
                    let width = items.len() as u32;
                    let queue_depth = queue.len() as u32;
                    // Train batches may span rounds (the class ignores the
                    // round); the batch record reports the head's, and the
                    // shard id is the head node's.
                    let Ev::TrainDone {
                        node: batch_node,
                        round: batch_round,
                        ..
                    } = head
                    else {
                        unreachable!("batches are homogeneous by class")
                    };
                    let batch_shard = queue.shard_of(batch_node) as u32;
                    let propose_done = run_wall.elapsed();
                    let tau = self.config.local_steps;
                    let bs = self.config.batch_size;
                    let lr = self.config.lr;
                    let atk_seed = self.config.seed ^ ATTACK_SALT;
                    let links = &links;
                    // Execute: τ SGD steps and message building on the
                    // worker pool. Everything a handler would do to shared
                    // state — mailbox appends, metering, the Mix schedule —
                    // is buffered into the proposal instead.
                    let proposals = par_batch(
                        &mut self.nodes,
                        &mut self.arena,
                        items,
                        threads,
                        |node, state, params, item| {
                            let neighbors = Self::active_neighbors(&item.topo, &item.active, node);
                            train_steps(state, params, tau, bs, lr);
                            // Byzantine nodes train honestly but build their
                            // messages from a perturbed copy — the same
                            // injection point as the barrier substrate.
                            let outbound = if let Some(behavior) = item.attack {
                                let mut tainted = params.to_vec();
                                jwins_adversary::apply_behavior(
                                    behavior,
                                    atk_seed,
                                    node,
                                    item.round,
                                    &mut tainted,
                                );
                                state
                                    .strategy
                                    .make_outbound(item.round, &tainted, &neighbors)?
                            } else {
                                state
                                    .strategy
                                    .make_outbound(item.round, params, &neighbors)?
                            };
                            state.last_alpha = state.strategy.last_alpha();
                            // Serialize over the uplink one message at a
                            // time: the k-th transmission starts when the
                            // (k-1)-th has left, and arrives one link
                            // latency after its last byte.
                            let mut departure = item.at;
                            let mut sends = Vec::with_capacity(neighbors.len());
                            let mut buffer_send =
                                |to: usize,
                                 msg: crate::strategy::OutMessage,
                                 departure: &mut SimTime| {
                                    let link = links.link(node, to, link_seed);
                                    let bytes = msg.bytes.len() as u64;
                                    let tx = link.serialize_secs(bytes);
                                    sends.push(PendingSend {
                                        from: node,
                                        to,
                                        payload: msg.bytes,
                                        breakdown: msg.breakdown,
                                        sent: item.at,
                                        arrives: departure.after_secs(tx + link.latency_s),
                                        sent_round: item.round,
                                    });
                                    *departure = departure.after_secs(tx);
                                };
                            // Savings accounting: the bytes this node would
                            // have pushed to its dead base-graph neighbours
                            // had repair not removed them (one message per
                            // avoided edge, at this round's message size).
                            let per_msg_bytes = match &outbound {
                                Outbound::Broadcast(msg) => msg.bytes.len() as u64,
                                Outbound::PerEdge(messages) => {
                                    let (count, total) = messages
                                        .iter()
                                        .flatten()
                                        .fold((0u64, 0u64), |(c, t), m| {
                                            (c + 1, t + m.bytes.len() as u64)
                                        });
                                    total.checked_div(count).unwrap_or(0)
                                }
                            };
                            match outbound {
                                Outbound::Broadcast(msg) => {
                                    for &to in &neighbors {
                                        buffer_send(to, msg.clone(), &mut departure);
                                    }
                                }
                                Outbound::PerEdge(messages) => {
                                    if messages.len() != neighbors.len() {
                                        return Err(JwinsError::Protocol(
                                            "per-edge message count mismatches neighbour count",
                                        ));
                                    }
                                    for (&to, msg) in neighbors.iter().zip(messages) {
                                        if let Some(msg) = msg {
                                            buffer_send(to, msg, &mut departure);
                                        }
                                    }
                                }
                            }
                            Ok(TrainProposal {
                                sends,
                                mix_at: departure,
                                alpha: state.last_alpha,
                                saved_bytes: item.avoided * per_msg_bytes,
                            })
                        },
                    )?;
                    let execute_done = run_wall.elapsed();
                    // Commit in pop order: mailbox append order, loss-model
                    // link sequences and the Mix schedule replay the
                    // sequential interleaving exactly.
                    for ((node, round, epoch, attack, at), proposal) in
                        meta.into_iter().zip(proposals)
                    {
                        tracer.emit(TraceEvent::Train {
                            t_ns: at.0,
                            node: node as u32,
                            round: round as u32,
                            compute_ns: compute_time[node].0,
                        });
                        if let Some(b) = attack {
                            attacks_injected += 1;
                            tracer.emit(TraceEvent::AttackInject {
                                t_ns: at.0,
                                node: node as u32,
                                round: round as u32,
                                kind: attack_kind(b),
                            });
                        }
                        self.network.send_batch(proposal.sends);
                        bandwidth_saved += proposal.saved_bytes;
                        current_alpha[node] = proposal.alpha;
                        if self.config.record_alphas {
                            alpha_rows[round][node] = proposal.alpha;
                        }
                        pending_work += 1;
                        queue.push(
                            proposal.mix_at,
                            prio(RANK_MIX, node),
                            node,
                            Ev::Mix {
                                node,
                                round,
                                trained: true,
                                epoch,
                            },
                        );
                    }
                    if width > 0 {
                        tracer.emit(TraceEvent::ExecuteBatch {
                            t_ns: time.0,
                            class: BatchClass::Train,
                            round: batch_round as u32,
                            width,
                            queue_depth,
                            shard: batch_shard,
                            wall_start_ns: wall_start.as_nanos() as u64,
                            propose_ns: (propose_done - wall_start).as_nanos() as u64,
                            execute_ns: (execute_done - propose_done).as_nanos() as u64,
                            commit_ns: (run_wall.elapsed() - execute_done).as_nanos() as u64,
                        });
                    }
                }
                Ev::Mix { .. } => {
                    let wall_start = run_wall.elapsed();
                    // Propose: charge the pops, filter stale epochs, and
                    // resolve topologies for the trained mixes (idle ones
                    // touch nothing shared until commit).
                    let mut live: Vec<(usize, usize, bool, u64, SimTime)> = Vec::new();
                    for s in batch {
                        let Ev::Mix {
                            node,
                            round,
                            trained,
                            epoch,
                        } = s.event
                        else {
                            unreachable!("batches are homogeneous by class")
                        };
                        pending_work -= 1;
                        if !lifecycle.is_current(node, epoch) {
                            continue;
                        }
                        live.push((node, round, trained, epoch, s.time));
                    }
                    let mut items: Vec<(usize, MixItem)> = Vec::new();
                    for &(node, round, trained, _, at) in &live {
                        if trained {
                            let (topo, _, _) = ctx_for!(round, at);
                            items.push((node, MixItem { round, at, topo }));
                        }
                    }
                    let width = items.len() as u32;
                    let queue_depth = queue.len() as u32;
                    // Mix classes encode the round, so the batch is
                    // single-round by construction; the shard id is the
                    // head node's.
                    let Ev::Mix {
                        node: batch_node,
                        round: batch_round,
                        ..
                    } = head
                    else {
                        unreachable!("batches are homogeneous by class")
                    };
                    let batch_shard = queue.shard_of(batch_node) as u32;
                    let propose_done = run_wall.elapsed();
                    let network = &self.network;
                    // Execute: drain and aggregate on the worker pool.
                    // Mailboxes are per-node, so disjoint drains cannot
                    // race; expiry counters and the shared staleness
                    // accumulators are deferred into the proposal because
                    // float sums must be committed in pop order — and not
                    // at all for events discarded by an early stop.
                    let proposals = par_batch(
                        &mut self.nodes,
                        &mut self.arena,
                        items,
                        threads,
                        |node, state, params, item| {
                            let drained = network.drain(node, item.at, ttl);
                            let (inbox, mut expired) = (drained.envelopes, drained.expired);
                            let neighbors = item.topo.graph.neighbors(node);
                            let mut received = Vec::with_capacity(inbox.len());
                            let mut absorbed = 0.0f64;
                            let mut staleness_terms = Vec::with_capacity(inbox.len());
                            for env in &inbox {
                                // A message from a node that is no longer a
                                // neighbour under this round's topology
                                // carries no mixing weight; drop it (dynamic
                                // graphs only — static topologies never hit
                                // this).
                                let Ok(pos) = neighbors.binary_search(&env.from) else {
                                    continue;
                                };
                                let base = item.topo.weights.neighbor_weights(node)[pos];
                                let factor = if has_cap {
                                    staleness.weight_factor(
                                        env.age_rounds(item.round),
                                        env.age_at(item.at).as_secs_f64(),
                                    )
                                } else {
                                    1.0
                                };
                                if factor == 0.0
                                    && matches!(staleness.over_cap, jwins_fault::CapAction::Drop)
                                {
                                    // Over the staleness cap with a Drop
                                    // action: never decoded, counted as
                                    // expired. The absent weight
                                    // renormalizes inside the strategy's
                                    // partial averaging, exactly like a
                                    // lost message. (A Decay factor that
                                    // *underflows* to zero is not a drop:
                                    // the message stays in the mix at
                                    // weight zero and its whole mass moves
                                    // to the self-weight below.)
                                    expired += 1;
                                    continue;
                                }
                                // Down-weighted mass moves to the
                                // self-weight so the effective mixing row
                                // stays stochastic (factor 1.0 keeps the
                                // weight bit-unchanged).
                                let (weight, moved) = jwins_fault::apply_factor(base, factor);
                                absorbed += moved;
                                staleness_terms.push((
                                    env.from,
                                    env.sent_round,
                                    item.at.since(env.sent).as_secs_f64(),
                                ));
                                received.push(ReceivedMessage {
                                    from: env.from,
                                    round: env.sent_round,
                                    weight,
                                    edge_weight: base,
                                    bytes: &env.payload,
                                });
                            }
                            let mut self_weight = item.topo.weights.self_weight(node);
                            if absorbed > 0.0 {
                                self_weight += absorbed;
                            }
                            let mixed = state.strategy.aggregate(
                                item.round,
                                params,
                                self_weight,
                                &received,
                            )?;
                            params.copy_from_slice(&mixed);
                            state.model.set_params(params);
                            Ok(MixProposal {
                                staleness: staleness_terms,
                                absorbed,
                                expired,
                            })
                        },
                    )?;
                    let execute_done = run_wall.elapsed();
                    // Commit in pop order. An early stop breaks out: since
                    // a batch is single-round and the stop fires at the
                    // round's n-th completer, the trigger is necessarily
                    // the batch's last item — the break just keeps the
                    // discard-the-rest invariant explicit.
                    let mut proposals = proposals.into_iter();
                    for (node, round, trained, epoch, at) in live {
                        if trained {
                            let p = proposals.next().expect("one proposal per trained mix");
                            self.network.record_expired(node, p.expired);
                            if p.expired > 0 {
                                tracer.emit(TraceEvent::MsgExpire {
                                    t_ns: at.0,
                                    node: node as u32,
                                    round: round as u32,
                                    count: p.expired,
                                });
                            }
                            // Fold per message, not per event: the same
                            // non-associative float grouping as one-at-a-
                            // time execution.
                            for &(from, sent_round, s) in &p.staleness {
                                total_staleness_s += s;
                                tracer.emit(TraceEvent::MsgMixed {
                                    t_ns: at.0,
                                    node: node as u32,
                                    from: from as u32,
                                    round: round as u32,
                                    sent_round: sent_round as u32,
                                    staleness_s: s,
                                });
                            }
                            mixed_messages += p.staleness.len() as u64;
                            if p.absorbed > 0.0 {
                                downweight_mass += p.absorbed;
                            }
                            // Drain unconditionally (take-and-reset): the
                            // drain itself is part of the deterministic
                            // schedule whether or not any sink listens.
                            if let Some(ps) = self.nodes[node].strategy.pairing_stats() {
                                tracer.emit(TraceEvent::StrategyPairing {
                                    t_ns: at.0,
                                    node: node as u32,
                                    round: round as u32,
                                    paired: ps.paired,
                                    fresh_resets: ps.fresh_resets,
                                    ignored: ps.ignored,
                                });
                            }
                            if let Some(rs) = self.nodes[node].strategy.robust_stats() {
                                mass_clipped += rs.mass;
                                tracer.emit(TraceEvent::RobustClip {
                                    t_ns: at.0,
                                    node: node as u32,
                                    round: round as u32,
                                    clipped: rs.clipped,
                                    mass: rs.mass,
                                });
                            }
                        } else if self.config.record_alphas {
                            // Idle rounds carry the node's previous
                            // fraction, mirroring the barrier engine's
                            // snapshot.
                            alpha_rows[round][node] = current_alpha[node];
                        }
                        rounds_passed[node] = round + 1;
                        if pass_round!(round, at) {
                            break;
                        }
                        if round + 1 < rounds {
                            pending_work += 1;
                            queue.push(
                                at,
                                prio(RANK_START, node),
                                node,
                                Ev::StartRound {
                                    node,
                                    round: round + 1,
                                    epoch,
                                },
                            );
                        }
                    }
                    if width > 0 {
                        tracer.emit(TraceEvent::ExecuteBatch {
                            t_ns: time.0,
                            class: BatchClass::Mix,
                            round: batch_round as u32,
                            width,
                            queue_depth,
                            shard: batch_shard,
                            wall_start_ns: wall_start.as_nanos() as u64,
                            propose_ns: (propose_done - wall_start).as_nanos() as u64,
                            execute_ns: (execute_done - propose_done).as_nanos() as u64,
                            commit_ns: (run_wall.elapsed() - execute_done).as_nanos() as u64,
                        });
                    }
                }
                Ev::Fault { event, rejoin } => match event {
                    LifecycleEvent::Crash { node } => {
                        if !lifecycle.crash(node) {
                            continue;
                        }
                        // The host dies with its inbox and open connections:
                        // everything queued for it and everything it still
                        // has in flight is destroyed.
                        let killed_inbox = self.network.purge(PurgeScope::Inbox { node }).messages;
                        let killed_in_flight = self
                            .network
                            .purge(PurgeScope::InFlightFrom {
                                from: node,
                                cutoff: time,
                            })
                            .messages;
                        let permanent = recoveries_scheduled[node] == 0;
                        tracer.emit(TraceEvent::NodeCrash {
                            t_ns: time.0,
                            node: node as u32,
                            epoch: lifecycle.epoch(node),
                            permanent,
                        });
                        if killed_inbox > 0 {
                            tracer.emit(TraceEvent::MsgKill {
                                t_ns: time.0,
                                node: node as u32,
                                count: killed_inbox,
                                reason: KillReason::CrashInbox,
                            });
                        }
                        if killed_in_flight > 0 {
                            tracer.emit(TraceEvent::MsgKill {
                                t_ns: time.0,
                                node: node as u32,
                                count: killed_in_flight,
                                reason: KillReason::CrashInFlight,
                            });
                        }
                        // A crash with no scheduled recovery is permanent:
                        // no handshake with this node can ever complete, so
                        // every other node drops its per-edge strategy
                        // state for it — otherwise stale warm starts would
                        // survive across lifecycle epochs and the state
                        // would leak for the rest of the run.
                        if permanent {
                            for (i, state) in self.nodes.iter_mut().enumerate() {
                                if i != node {
                                    state.strategy.forget_edge(node);
                                }
                            }
                        }
                        // Survivors re-wire around the hole: every round in
                        // progress is re-resolved against the shrunken live
                        // set, and sends on repair-removed edges die.
                        if repair_on {
                            repair_refresh!(time);
                        }
                        // Abandon the round in progress (its scheduled
                        // events are now stale via the epoch bump) so the
                        // cluster-wide round completion still counts to n.
                        let round = rounds_passed[node];
                        if round < rounds {
                            rounds_passed[node] = round + 1;
                            tracer.emit(TraceEvent::RoundAbandon {
                                t_ns: time.0,
                                node: node as u32,
                                round: round as u32,
                            });
                        }
                        // A scheduled recovery that will resume training
                        // keeps the checkpoint cadence alive through the
                        // outage.
                        if recoveries_scheduled[node] > 0 && rounds_passed[node] < rounds {
                            productive_recoveries += 1;
                        }
                        if round < rounds {
                            // A solo event is its whole batch: on early stop
                            // there is nothing further to discard.
                            let _ = pass_round!(round, time);
                        }
                    }
                    LifecycleEvent::Recover { node } => {
                        recoveries_scheduled[node] -= 1;
                        if lifecycle.is_alive(node) {
                            continue;
                        }
                        // Pick the re-sync donor *before* marking the node
                        // alive, so the tracker's lowest-indexed-live query
                        // cannot hand the rejoiner its own stale model.
                        let donor = if rejoin == RejoinMode::Resync {
                            lifecycle.first_alive()
                        } else {
                            None
                        };
                        lifecycle.recover(node);
                        tracer.emit(TraceEvent::NodeRejoin {
                            t_ns: time.0,
                            node: node as u32,
                            epoch: lifecycle.epoch(node),
                            resync_from: donor.map(|d| d as u32),
                        });
                        if rounds_passed[node] < rounds {
                            productive_recoveries -= 1;
                        }
                        // Deliveries that completed while the host was down
                        // hit a dead machine; still-in-flight tails land on
                        // the recovered host and survive.
                        let killed = self
                            .network
                            .purge(PurgeScope::ArrivedBy {
                                node,
                                deadline: time,
                            })
                            .messages;
                        if killed > 0 {
                            tracer.emit(TraceEvent::MsgKill {
                                t_ns: time.0,
                                node: node as u32,
                                count: killed,
                                reason: KillReason::RejoinArrived,
                            });
                        }
                        // Re-synced rejoin: adopt the current model of the
                        // lowest-indexed live peer (deterministic); fall
                        // back to a warm restart if fully alone.
                        if let Some(donor) = donor {
                            self.arena.copy_node(donor, node);
                            let params = self.arena.node(node);
                            let state = &mut self.nodes[node];
                            state.model.set_params(params);
                            state.strategy.init(params);
                        }
                        // Re-admission runs through the same repair policy:
                        // in-progress rounds re-resolve with the node back
                        // in the live set (repair-added detour edges drop
                        // out; their in-flight messages are invalidated).
                        if repair_on {
                            repair_refresh!(time);
                        }
                        let round = rounds_passed[node];
                        if round < rounds {
                            pending_work += 1;
                            queue.push(
                                time,
                                prio(RANK_START, node),
                                node,
                                Ev::StartRound {
                                    node,
                                    round,
                                    epoch: lifecycle.epoch(node),
                                },
                            );
                        }
                    }
                },
                Ev::EvalTick => {
                    // Training is over and no down node will resume it:
                    // swallow the trailing tick instead of emitting a
                    // checkpoint dated after the run's real end.
                    if pending_work == 0 && productive_recoveries == 0 {
                        continue;
                    }
                    let interval = self
                        .config
                        .eval_interval_s
                        .expect("EvalTick only scheduled with an interval");
                    let (metrics, per_node) = self.evaluate()?;
                    let mean_staleness_s = if mixed_messages == 0 {
                        0.0
                    } else {
                        total_staleness_s / mixed_messages as f64
                    };
                    let record = self.snapshot(
                        rounds_run.saturating_sub(1),
                        &metrics,
                        per_node,
                        time.as_secs_f64(),
                        mean_staleness_s,
                        FaultTelemetry {
                            crashes: lifecycle.crashes(),
                            rejoins: lifecycle.recoveries(),
                            downweight_mass,
                            edges_rewired,
                            bandwidth_saved_bytes: bandwidth_saved,
                            attacks_injected,
                            mass_clipped,
                        },
                        true,
                    );
                    tracer.emit(TraceEvent::Eval {
                        t_ns: time.0,
                        round: rounds_run.saturating_sub(1) as u32,
                        checkpoint: true,
                        accuracy: record.test_accuracy,
                    });
                    records.push(record);
                    // Keep ticking while training events remain or a down
                    // node will resume training on recovery — fault events
                    // scheduled past the end of training must not prolong
                    // the cadence. Checkpoints never trigger early stop.
                    if pending_work > 0 || productive_recoveries > 0 {
                        queue.push(
                            time.after_secs(interval),
                            prio(RANK_EVAL, 0),
                            0,
                            Ev::EvalTick,
                        );
                    }
                }
            }
        }

        // Nodes still down at the end never recovered to purge the
        // deliveries that piled up at their dead hosts; destroy them now so
        // the traffic accounting honours the crash semantics (no-fault runs
        // have every node alive, so this cannot disturb their totals).
        for node in 0..n {
            if !lifecycle.is_alive(node) {
                self.network.purge(PurgeScope::Inbox { node });
            }
        }

        if reached_target.is_none() && rounds_run < rounds {
            // A node stayed crashed to the end, so later rounds never
            // completed cluster-wide and their evaluation points never
            // fired. Close the run with a final checkpoint at the last
            // event time so the result still reflects the trained models.
            let (metrics, per_node) = self.evaluate()?;
            let mean_staleness_s = if mixed_messages == 0 {
                0.0
            } else {
                total_staleness_s / mixed_messages as f64
            };
            let record = self.snapshot(
                rounds_run.saturating_sub(1),
                &metrics,
                per_node,
                last_time.as_secs_f64(),
                mean_staleness_s,
                FaultTelemetry {
                    crashes: lifecycle.crashes(),
                    rejoins: lifecycle.recoveries(),
                    downweight_mass,
                    edges_rewired,
                    bandwidth_saved_bytes: bandwidth_saved,
                    attacks_injected,
                    mass_clipped,
                },
                true,
            );
            tracer.emit(TraceEvent::Eval {
                t_ns: last_time.0,
                round: rounds_run.saturating_sub(1) as u32,
                checkpoint: true,
                accuracy: record.test_accuracy,
            });
            records.push(record);
        }

        tracer.emit(TraceEvent::RunEnd {
            t_ns: last_time.0,
            rounds_run: rounds_run as u32,
            queue_depth_hwm: queue_hwm,
        });

        let alpha_history: Vec<Vec<f64>> = alpha_rows.into_iter().take(rounds_run).collect();
        Ok(RunResult {
            strategy: strategy_name,
            records,
            total_traffic: self.network.total_stats(),
            rounds_run,
            reached_target,
            alpha_history,
            measured_latency_s: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::FullSharing;
    use jwins_data::images::{cifar_like, ImageConfig};
    use jwins_nn::models::mlp_classifier;
    use jwins_topology::dynamic::StaticTopology;

    fn tiny_trainer(rounds: usize, lr: f32) -> Trainer<jwins_nn::models::ImageClassifier> {
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = rounds;
        cfg.lr = lr;
        cfg.eval_every = 0;
        Trainer::builder(cfg)
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test)
            .nodes(data.node_train, |_| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_shapes() {
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        // Topology size mismatch: 3-node topology, 4 nodes.
        let err = Trainer::builder(TrainConfig::quick_test())
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test.clone())
            .nodes(data.node_train[..3].to_vec(), |_| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                )
            })
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn all_nodes_start_identical() {
        let trainer = tiny_trainer(1, 0.05);
        let p0 = trainer.node_params(0).to_vec();
        for i in 1..trainer.node_count() {
            assert_eq!(trainer.node_params(i), &p0[..]);
        }
    }

    #[test]
    fn consensus_on_pure_gossip() {
        // lr so small that gradients are negligible: full sharing must
        // contract distinct initial models toward their mean.
        let mut trainer = tiny_trainer(25, 1e-9);
        let d = trainer.node_params(0).len();
        for i in 0..4 {
            let params: Vec<f32> = (0..d).map(|k| ((k + i * 13) as f32 * 0.01).sin()).collect();
            trainer.set_node_params(i, &params);
        }
        let before_spread = {
            let p0 = trainer.node_params(0).to_vec();
            let p1 = trainer.node_params(1).to_vec();
            p0.iter()
                .zip(&p1)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        let mut means = vec![0.0f64; d];
        for i in 0..4 {
            for (m, &v) in means.iter_mut().zip(trainer.node_params(i)) {
                *m += f64::from(v) / 4.0;
            }
        }
        let result = run_and_reclaim(trainer);
        let (after_params, _) = result;
        let spread = (0..d)
            .map(|k| {
                let vals: Vec<f32> = after_params.iter().map(|p| p[k]).collect();
                let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
                max - min
            })
            .fold(0.0f32, f32::max);
        assert!(
            spread < before_spread * 0.05,
            "no contraction: spread {spread} vs initial {before_spread}"
        );
        // Doubly stochastic mixing preserves the mean.
        for k in 0..d {
            let mean_after: f64 = after_params.iter().map(|p| f64::from(p[k])).sum::<f64>() / 4.0;
            assert!((mean_after - means[k]).abs() < 1e-4);
        }
    }

    /// Runs a trainer and returns final per-node params plus the result —
    /// exercises run() while keeping node state inspectable.
    fn run_and_reclaim(
        mut trainer: Trainer<jwins_nn::models::ImageClassifier>,
    ) -> (Vec<Vec<f32>>, RunResult) {
        // Execute the same loop as `run` via public API: we simply run and
        // then rebuild params from the consumed trainer's last snapshot.
        // Trainer::run consumes self, so capture params through a manual
        // round loop instead.
        let rounds = trainer.config.rounds;
        let active = vec![true; trainer.node_count()];
        let no_attacks = vec![None; trainer.node_count()];
        let mut sim_time = 0.0;
        for round in 0..rounds {
            let topo = trainer.topology.topology(round);
            trainer
                .phase_train(round, &topo, &active, &no_attacks)
                .unwrap();
            let bytes = trainer.phase_deliver(&topo, &active).unwrap();
            sim_time += trainer.config.time_model.round_seconds(bytes);
            trainer.phase_aggregate(round, &topo, &active).unwrap();
        }
        let params: Vec<Vec<f32>> = (0..trainer.node_count())
            .map(|i| trainer.node_params(i).to_vec())
            .collect();
        let (metrics, per_node) = trainer.evaluate().unwrap();
        let record = trainer.snapshot(
            rounds - 1,
            &metrics,
            per_node,
            sim_time,
            0.0,
            FaultTelemetry::default(),
            false,
        );
        let result = RunResult {
            strategy: "test".into(),
            records: vec![record],
            total_traffic: trainer.network.total_stats(),
            rounds_run: rounds,
            reached_target: None,
            alpha_history: Vec::new(),
            measured_latency_s: None,
        };
        (params, result)
    }

    #[test]
    fn training_reduces_loss_and_counts_bytes() {
        let trainer = tiny_trainer(12, 0.1);
        let result = trainer.run().unwrap();
        assert_eq!(result.rounds_run, 12);
        let last = result.final_record().unwrap();
        assert!(last.test_accuracy > 0.3, "accuracy {}", last.test_accuracy);
        assert!(result.total_traffic.bytes_sent > 0);
        assert!(last.cum_bytes_per_node > 0.0);
        assert!(last.sim_time_s > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let r1 = tiny_trainer(4, 0.1).run().unwrap();
        let r2 = tiny_trainer(4, 0.1).run().unwrap();
        assert_eq!(
            r1.final_record().unwrap().test_accuracy,
            r2.final_record().unwrap().test_accuracy
        );
        assert_eq!(r1.total_traffic.bytes_sent, r2.total_traffic.bytes_sent);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mk = |threads: usize| {
            let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
            let mut cfg = TrainConfig::quick_test();
            cfg.rounds = 4;
            cfg.lr = 0.1;
            cfg.threads = threads;
            Trainer::builder(cfg)
                .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
                .test_set(data.test)
                .nodes(data.node_train, |_| {
                    (
                        mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                        Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                    )
                })
                .build()
                .unwrap()
        };
        let a = mk(1).run().unwrap();
        let b = mk(4).run().unwrap();
        assert_eq!(
            a.final_record().unwrap().test_accuracy,
            b.final_record().unwrap().test_accuracy
        );
        assert_eq!(a.total_traffic.bytes_sent, b.total_traffic.bytes_sent);
    }

    #[test]
    fn node_factory_receives_consecutive_indices() {
        // Regression: the factory index is the engine's node id. Strategies
        // like PowerGossip orient edges by it, so 0, 2, 4, … (the old bug)
        // silently desynchronized per-edge state between endpoints.
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut seen = Vec::new();
        let _ = Trainer::builder(TrainConfig::quick_test())
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test)
            .nodes(data.node_train, |node| {
                seen.push(node);
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_edge_strategy_trains_end_to_end() {
        use crate::strategies::{PowerGossip, PowerGossipConfig};
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = 15;
        cfg.lr = 0.1;
        let trainer = Trainer::builder(cfg)
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test)
            .nodes(data.node_train, |node| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(PowerGossip::new(PowerGossipConfig::default(), node, 42))
                        as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap();
        let result = trainer.run().unwrap();
        let last = result.final_record().unwrap();
        assert!(last.test_accuracy > 0.3, "accuracy {}", last.test_accuracy);
        // Per-edge rank-1 messages are far smaller than the model.
        let model_bytes = (2 * 8 * 8 * 8 + 8 + 8 * 4 + 4) * 4; // rough
        let per_round_per_edge = result.total_traffic.bytes_sent as f64 / (15.0 * 4.0 * 2.0);
        assert!(
            per_round_per_edge < model_bytes as f64 / 4.0,
            "per-edge bytes {per_round_per_edge} not small vs model {model_bytes}"
        );
    }

    #[test]
    fn lossy_links_still_train_broadcast_strategies() {
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = 12;
        cfg.lr = 0.1;
        cfg.message_loss = 0.2;
        let trainer = Trainer::builder(cfg)
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test)
            .nodes(data.node_train, |_| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap();
        let result = trainer.run().unwrap();
        // 20% of deliveries vanish; renormalized averaging shrugs it off.
        assert!(result.total_traffic.messages_dropped > 0);
        assert!(
            result.total_traffic.bytes_received < result.total_traffic.bytes_sent,
            "drops must show up as a sent/received gap"
        );
        assert!(result.final_record().unwrap().test_accuracy > 0.3);
    }

    #[test]
    fn scripted_outage_pauses_node_traffic() {
        use crate::participation::{Outage, ScriptedOutages};
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = 6;
        cfg.lr = 0.05;
        let run = |outages: ScriptedOutages| {
            Trainer::builder(cfg.clone())
                .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
                .participation(outages)
                .test_set(data.test.clone())
                .nodes(data.node_train.clone(), |_| {
                    (
                        mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                        Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                    )
                })
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let full = run(ScriptedOutages::default());
        let churned = run(ScriptedOutages::default().with_outage(Outage::new(3, 1, 5)));
        // The absent node neither sends nor receives for 4 of 6 rounds.
        assert!(
            churned.total_traffic.bytes_sent < full.total_traffic.bytes_sent,
            "{} vs {}",
            churned.total_traffic.bytes_sent,
            full.total_traffic.bytes_sent
        );
        // Training still completes and produces a usable model.
        assert_eq!(churned.rounds_run, 6);
        assert!(churned.final_record().unwrap().test_accuracy > 0.2);
    }

    #[test]
    fn sparsifying_strategy_survives_churn() {
        use crate::participation::RandomDropout;
        use crate::strategies::{Jwins, JwinsConfig};
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = 10;
        cfg.lr = 0.05;
        let trainer = Trainer::builder(cfg)
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .participation(RandomDropout::new(0.4, 11))
            .test_set(data.test)
            .nodes(data.node_train, |node| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(Jwins::new(JwinsConfig::paper_default(), 100 + node as u64))
                        as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap();
        // Protocol bookkeeping (pending rounds, accumulation resets) must
        // tolerate nodes skipping rounds entirely.
        let result = trainer.run().unwrap();
        assert_eq!(result.rounds_run, 10);
    }

    #[test]
    fn event_driven_degenerate_profile_matches_sync_bitwise() {
        use jwins_sim::HeterogeneityProfile;
        let build = |execution: ExecutionMode| {
            let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
            let mut cfg = TrainConfig::quick_test();
            cfg.rounds = 8;
            cfg.lr = 0.1;
            cfg.eval_every = 2;
            cfg.execution = execution;
            cfg.heterogeneity = HeterogeneityProfile::default();
            Trainer::builder(cfg)
                .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
                .test_set(data.test)
                .nodes(data.node_train, |_| {
                    (
                        mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                        Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                    )
                })
                .build()
                .unwrap()
        };
        let sync = build(ExecutionMode::BulkSynchronous).run().unwrap();
        let event = build(ExecutionMode::EventDriven).run().unwrap();
        assert_eq!(sync.rounds_run, event.rounds_run);
        assert_eq!(sync.total_traffic, event.total_traffic);
        assert_eq!(sync.records.len(), event.records.len());
        for (s, e) in sync.records.iter().zip(&event.records) {
            assert_eq!(s.round, e.round);
            assert_eq!(s.train_loss.to_bits(), e.train_loss.to_bits());
            assert_eq!(s.test_loss.to_bits(), e.test_loss.to_bits());
            assert_eq!(s.test_accuracy.to_bits(), e.test_accuracy.to_bits());
            assert_eq!(s.cum_bytes_per_node, e.cum_bytes_per_node);
            // Instant links leave nothing in flight, so nothing is stale.
            assert_eq!(e.mean_staleness_s, 0.0);
        }
    }

    #[test]
    fn stragglers_slow_the_clock_and_create_staleness() {
        use jwins_sim::HeterogeneityProfile;
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = 6;
        cfg.lr = 0.1;
        cfg.eval_every = 0;
        cfg.time_model.compute_s = 1.0;
        cfg.execution = ExecutionMode::EventDriven;
        // One node 4x slower over thin links: messages now spend real time
        // in flight and fast nodes mix stale models.
        cfg.heterogeneity = HeterogeneityProfile::stragglers(0.25, 4.0, 0.01, 64_000.0);
        let trainer = Trainer::builder(cfg)
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test)
            .nodes(data.node_train, |_| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap();
        let result = trainer.run().unwrap();
        assert_eq!(result.rounds_run, 6);
        let last = result.final_record().unwrap();
        // The straggler bounds the run: at least rounds * slowed compute.
        assert!(last.sim_time_s >= 6.0 * 4.0, "sim time {}", last.sim_time_s);
        assert!(last.mean_staleness_s > 0.0, "expected stale mixes");
        assert!(result.total_traffic.bytes_sent > 0);
    }

    #[test]
    fn power_gossip_runs_async_under_real_heterogeneity() {
        use crate::strategies::{PowerGossip, PowerGossipConfig};
        use jwins_sim::HeterogeneityProfile;
        // Until the per-edge state was round-versioned, the engine refused
        // to run PowerGossip under any non-degenerate profile. Now the
        // async run must complete, stay finite, and actually learn.
        let build = |heterogeneity: HeterogeneityProfile| {
            let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
            let mut cfg = TrainConfig::quick_test();
            cfg.rounds = 15;
            cfg.lr = 0.1;
            cfg.eval_every = 1;
            cfg.execution = ExecutionMode::EventDriven;
            cfg.heterogeneity = heterogeneity;
            Trainer::builder(cfg)
                .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
                .test_set(data.test)
                .nodes(data.node_train, |node| {
                    (
                        mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                        Box::new(PowerGossip::new(PowerGossipConfig::default(), node, 42))
                            as Box<dyn ShareStrategy>,
                    )
                })
                .build()
                .unwrap()
        };
        let result = build(HeterogeneityProfile::stragglers(0.25, 4.0, 0.01, 1e6))
            .run()
            .expect("round-versioned PowerGossip runs under real heterogeneity");
        assert_eq!(result.rounds_run, 15);
        assert!(
            result
                .records
                .iter()
                .all(|r| r.test_accuracy.is_finite() && r.train_loss.is_finite()),
            "no corrupted state may leak into the metrics"
        );
        let first = result.records.first().unwrap();
        let last = result.final_record().unwrap();
        assert!(
            last.test_accuracy > first.test_accuracy,
            "async PowerGossip must improve: {} -> {}",
            first.test_accuracy,
            last.test_accuracy
        );
        assert!(
            last.mean_staleness_s > 0.0,
            "the profile must actually deliver stale messages"
        );
    }

    #[test]
    fn event_driven_replays_identically_and_ignores_thread_count() {
        use jwins_sim::HeterogeneityProfile;
        let run = |threads: usize| {
            let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
            let mut cfg = TrainConfig::quick_test();
            cfg.rounds = 5;
            cfg.lr = 0.1;
            cfg.threads = threads;
            cfg.eval_every = 1;
            cfg.execution = ExecutionMode::EventDriven;
            cfg.heterogeneity = HeterogeneityProfile::stragglers(0.5, 3.0, 0.002, 1.0e6);
            Trainer::builder(cfg)
                .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
                .test_set(data.test)
                .nodes(data.node_train, |_| {
                    (
                        mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                        Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                    )
                })
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run(1);
        let b = run(1);
        let c = run(4);
        for other in [&b, &c] {
            assert_eq!(a.rounds_run, other.rounds_run);
            assert_eq!(a.total_traffic, other.total_traffic);
            assert_eq!(a.records.len(), other.records.len());
            for (x, y) in a.records.iter().zip(&other.records) {
                assert_eq!(x.test_accuracy.to_bits(), y.test_accuracy.to_bits());
                assert_eq!(x.train_loss.to_bits(), y.train_loss.to_bits());
                assert_eq!(x.sim_time_s.to_bits(), y.sim_time_s.to_bits());
                assert_eq!(x.mean_staleness_s.to_bits(), y.mean_staleness_s.to_bits());
            }
        }
    }

    #[test]
    fn repair_rewires_around_a_permanent_crash_and_saves_bytes() {
        use jwins_fault::{FaultConfig, FaultOutage, FaultPlan};
        use jwins_topology::repair::RepairPolicy;
        let run = |repair: RepairPolicy| {
            let data = cifar_like(&ImageConfig::tiny(), 8, 2, 5);
            let mut cfg = TrainConfig::quick_test();
            cfg.rounds = 6;
            cfg.lr = 0.1;
            cfg.eval_every = 1;
            cfg.execution = ExecutionMode::EventDriven;
            cfg.time_model.compute_s = 1.0;
            cfg.repair = repair;
            cfg.faults = FaultConfig {
                plan: FaultPlan::Scripted(vec![FaultOutage::new(2, 2.5, f64::INFINITY)]),
                ..FaultConfig::default()
            };
            Trainer::builder(cfg)
                .topology(StaticTopology::random_regular(8, 3, 3).unwrap())
                .test_set(data.test)
                .nodes(data.node_train, |_| {
                    (
                        mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                        Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                    )
                })
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let none = run(RepairPolicy::None);
        let repaired = run(RepairPolicy::DegreePreserving);
        let last_none = none.records.last().unwrap();
        let last_rep = repaired.records.last().unwrap();
        assert_eq!(last_none.edges_rewired, 0);
        assert_eq!(last_none.bandwidth_saved_bytes, 0);
        assert!(last_rep.edges_rewired > 0, "survivors re-wired");
        assert!(
            last_rep.bandwidth_saved_bytes > 0,
            "dead-edge sends avoided"
        );
        // Without repair the dead node's neighbours keep paying for it.
        assert!(
            repaired.total_traffic.bytes_sent < none.total_traffic.bytes_sent,
            "repair must reduce bytes: {} vs {}",
            repaired.total_traffic.bytes_sent,
            none.total_traffic.bytes_sent
        );
        // Per-node accuracies are reported for every node at every eval.
        assert_eq!(last_rep.per_node_accuracy.len(), 8);
        assert!(
            (last_rep.per_node_accuracy.iter().sum::<f64>() / 8.0 - last_rep.test_accuracy).abs()
                < 1e-9,
            "per-node accuracies are consistent with the cluster mean"
        );
    }

    #[test]
    fn early_stop_on_target() {
        let data = cifar_like(&ImageConfig::tiny(), 4, 2, 5);
        let mut cfg = TrainConfig::quick_test();
        cfg.rounds = 50;
        cfg.lr = 0.1;
        cfg.eval_every = 1;
        cfg.target_accuracy = Some(0.3);
        let trainer = Trainer::builder(cfg)
            .topology(StaticTopology::random_regular(4, 2, 3).unwrap())
            .test_set(data.test)
            .nodes(data.node_train, |_| {
                (
                    mlp_classifier(2 * 8 * 8, &[8], 4, 7),
                    Box::new(FullSharing::new()) as Box<dyn ShareStrategy>,
                )
            })
            .build()
            .unwrap();
        let result = trainer.run().unwrap();
        let hit = result
            .reached_target
            .expect("should reach 30% on tiny data");
        assert!(result.rounds_run < 50, "stopped at {}", result.rounds_run);
        assert_eq!(hit.round + 1, result.rounds_run);
    }
}
