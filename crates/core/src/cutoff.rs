//! The randomized communication cut-off (paper §III-B).
//!
//! Each node independently draws its sharing fraction α every round. The
//! paper motivates randomization three ways: slowly-changing parameters
//! eventually get their turn (some rounds share a lot), no synchronized
//! network burst (nodes draw independently), and no herd-behaviour quality
//! drop from all nodes jumping to a large α simultaneously.
//!
//! The evaluation uses two shapes, both covered here:
//! - main runs: α uniform over `{10, 15, 20, 25, 30, 40, 100}%` (E\[α\] ≈ 34%);
//! - low-budget runs (Fig. 6): two-point distributions such as
//!   `P(α=100%) = 0.1, P(α=10%) = 0.9` for a 20% budget.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A distribution over sharing fractions in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AlphaDistribution {
    /// Deterministic fraction every round (the "without randomized cut-off"
    /// ablation, and plain TopK baselines).
    Fixed(f64),
    /// Uniform over an explicit list of fractions (the paper's default).
    UniformList(Vec<f64>),
    /// `P(hi) = p_hi`, else `lo` (the paper's low-budget shape).
    TwoPoint {
        /// The large fraction.
        hi: f64,
        /// Probability of drawing `hi`.
        p_hi: f64,
        /// The small fraction.
        lo: f64,
    },
}

impl AlphaDistribution {
    /// The paper's default list: `{10, 15, 20, 25, 30, 40, 100}%`.
    pub fn paper_default() -> Self {
        AlphaDistribution::UniformList(vec![0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 1.0])
    }

    /// The paper's 20%-budget shape: `P(100%) = 0.1, P(10%) = 0.9`.
    pub fn budget_20() -> Self {
        AlphaDistribution::TwoPoint {
            hi: 1.0,
            p_hi: 0.1,
            lo: 0.10,
        }
    }

    /// The paper's 10%-budget shape: `P(100%) = 0.05, P(5%) = 0.95`.
    pub fn budget_10() -> Self {
        AlphaDistribution::TwoPoint {
            hi: 1.0,
            p_hi: 0.05,
            lo: 0.05,
        }
    }

    /// Validates that every fraction lies in `[0, 1]` and probabilities are
    /// proper.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        let ok = |f: f64| (0.0..=1.0).contains(&f);
        match self {
            AlphaDistribution::Fixed(a) => ok(*a)
                .then_some(())
                .ok_or_else(|| format!("fixed fraction {a} outside [0,1]")),
            AlphaDistribution::UniformList(list) => {
                if list.is_empty() {
                    return Err("empty fraction list".into());
                }
                list.iter()
                    .all(|&a| ok(a))
                    .then_some(())
                    .ok_or_else(|| "list fraction outside [0,1]".into())
            }
            AlphaDistribution::TwoPoint { hi, p_hi, lo } => (ok(*hi) && ok(*lo) && ok(*p_hi))
                .then_some(())
                .ok_or_else(|| "two-point parameters outside [0,1]".into()),
        }
    }

    /// Expected sharing fraction E\[α\] — the long-run communication budget.
    pub fn mean(&self) -> f64 {
        match self {
            AlphaDistribution::Fixed(a) => *a,
            AlphaDistribution::UniformList(list) => list.iter().sum::<f64>() / list.len() as f64,
            AlphaDistribution::TwoPoint { hi, p_hi, lo } => p_hi * hi + (1.0 - p_hi) * lo,
        }
    }

    /// Draws one fraction.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        match self {
            AlphaDistribution::Fixed(a) => *a,
            AlphaDistribution::UniformList(list) => list[rng.gen_range(0..list.len())],
            AlphaDistribution::TwoPoint { hi, p_hi, lo } => {
                if rng.gen_range(0.0..1.0) < *p_hi {
                    *hi
                } else {
                    *lo
                }
            }
        }
    }
}

/// A seeded sampler wrapping a distribution — one per node, so draws are
/// independent across nodes but reproducible across runs.
#[derive(Debug, Clone)]
pub struct CutoffSampler {
    dist: AlphaDistribution,
    rng: ChaCha8Rng,
    randomized: bool,
}

impl CutoffSampler {
    /// Creates a sampler; `randomized = false` collapses the distribution to
    /// its mean (the Figure-8 ablation).
    pub fn new(dist: AlphaDistribution, seed: u64, randomized: bool) -> Self {
        Self {
            dist,
            rng: ChaCha8Rng::seed_from_u64(seed),
            randomized,
        }
    }

    /// The distribution being sampled.
    pub fn distribution(&self) -> &AlphaDistribution {
        &self.dist
    }

    /// Next sharing fraction.
    pub fn next_alpha(&mut self) -> f64 {
        if self.randomized {
            self.dist.sample(&mut self.rng)
        } else {
            self.dist.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_mean_is_about_34_percent() {
        let mean = AlphaDistribution::paper_default().mean();
        assert!((mean - 0.3428).abs() < 1e-3, "mean {mean}");
    }

    #[test]
    fn budget_distributions_hit_their_budgets() {
        assert!((AlphaDistribution::budget_20().mean() - 0.19).abs() < 1e-12);
        assert!((AlphaDistribution::budget_10().mean() - 0.0975).abs() < 1e-12);
    }

    #[test]
    fn samples_come_from_support() {
        let dist = AlphaDistribution::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let support = [0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 1.0];
        for _ in 0..200 {
            let a = dist.sample(&mut rng);
            assert!(support.contains(&a), "unexpected draw {a}");
        }
    }

    #[test]
    fn empirical_mean_approaches_analytic() {
        let dist = AlphaDistribution::budget_20();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        assert!((sum / n as f64 - dist.mean()).abs() < 0.01);
    }

    #[test]
    fn non_randomized_sampler_returns_mean() {
        let mut s = CutoffSampler::new(AlphaDistribution::paper_default(), 3, false);
        let m = AlphaDistribution::paper_default().mean();
        for _ in 0..5 {
            assert!((s.next_alpha() - m).abs() < 1e-12);
        }
    }

    #[test]
    fn samplers_are_reproducible_and_node_independent() {
        let mut a = CutoffSampler::new(AlphaDistribution::paper_default(), 5, true);
        let mut b = CutoffSampler::new(AlphaDistribution::paper_default(), 5, true);
        let mut c = CutoffSampler::new(AlphaDistribution::paper_default(), 6, true);
        let sa: Vec<f64> = (0..20).map(|_| a.next_alpha()).collect();
        let sb: Vec<f64> = (0..20).map(|_| b.next_alpha()).collect();
        let sc: Vec<f64> = (0..20).map(|_| c.next_alpha()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn validation_catches_bad_fractions() {
        assert!(AlphaDistribution::Fixed(1.5).validate().is_err());
        assert!(AlphaDistribution::UniformList(vec![]).validate().is_err());
        assert!(AlphaDistribution::UniformList(vec![0.5, -0.1])
            .validate()
            .is_err());
        assert!(AlphaDistribution::paper_default().validate().is_ok());
    }
}
