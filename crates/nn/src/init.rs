//! Seeded weight initializers.
//!
//! Every experiment in the paper is repeated over five seeds that determine
//! "the data distribution, neighbors, and initial weights" (§IV-B), so
//! initialization must be a pure function of an explicit seed. All nodes in a
//! run start from identical weights (standard D-PSGD practice), which the
//! engine achieves by initializing one model and broadcasting its flat
//! parameter vector.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The default for linear and embedding weights.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, len: usize, seed: u64) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let dist = Uniform::new_inclusive(-a, a);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| dist.sample(&mut rng) as f32).collect()
}

/// Kaiming/He normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU stacks
/// (convolutions in GN-LeNet).
pub fn kaiming_normal(fan_in: usize, len: usize, seed: u64) -> Vec<f32> {
    let std = (2.0 / fan_in as f64).sqrt();
    let dist = Normal::new(0.0, std).expect("std is finite and positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| dist.sample(&mut rng) as f32).collect()
}

/// Small-scale normal `N(0, std)` for embedding tables.
pub fn scaled_normal(std: f64, len: usize, seed: u64) -> Vec<f32> {
    let dist = Normal::new(0.0, std).expect("std is finite and positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| dist.sample(&mut rng) as f32).collect()
}

/// Uniform in `[lo, hi)`, for miscellaneous parameters.
pub fn uniform(lo: f32, hi: f32, len: usize, seed: u64) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Derives a fresh sub-seed from a base seed and a stream index, so layers of
/// one model get decorrelated streams while the whole model stays a pure
/// function of its seed.
pub fn sub_seed(seed: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over (seed, stream).
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(xavier_uniform(10, 10, 32, 7), xavier_uniform(10, 10, 32, 7));
        assert_ne!(xavier_uniform(10, 10, 32, 7), xavier_uniform(10, 10, 32, 8));
    }

    #[test]
    fn xavier_respects_bound() {
        let a = (6.0f64 / 20.0).sqrt() as f32;
        for v in xavier_uniform(10, 10, 1000, 3) {
            assert!(v.abs() <= a + 1e-6);
        }
    }

    #[test]
    fn kaiming_has_expected_scale() {
        let vals = kaiming_normal(50, 20_000, 11);
        let mean: f64 = vals.iter().map(|&v| f64::from(v)).sum::<f64>() / vals.len() as f64;
        let var: f64 = vals
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / vals.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn sub_seed_decorrelates_streams() {
        let s0 = sub_seed(1, 0);
        let s1 = sub_seed(1, 1);
        let s2 = sub_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        assert_eq!(s0, sub_seed(1, 0));
    }

    #[test]
    fn uniform_in_range() {
        for v in uniform(-0.5, 0.5, 500, 5) {
            assert!((-0.5..0.5).contains(&v));
        }
    }
}
