//! Loss functions: softmax cross-entropy and mean squared error.
//!
//! Classification tasks (CIFAR/FEMNIST/CelebA/Shakespeare analogues) use
//! cross-entropy; the MovieLens-style matrix factorization uses MSE. Both
//! return the mean loss over the batch together with the gradient w.r.t. the
//! predictions, already divided by the batch size so optimizer steps are
//! batch-size invariant.

use crate::tensor::Tensor;

/// Numerically stable mean softmax cross-entropy.
///
/// `logits` is `[batch, classes]`; `targets[b]` is the class index of sample
/// `b`. Returns `(mean_loss, grad)` with `grad = (softmax - onehot) / batch`.
///
/// # Panics
///
/// Panics on shape mismatch or out-of-range targets.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let [b, c]: [usize; 2] = logits.shape().try_into().expect("expects [batch, classes]");
    assert_eq!(targets.len(), b, "one target per sample");
    let x = logits.data();
    let mut grad = vec![0.0f32; x.len()];
    let mut loss = 0.0f64;
    for (s, &target) in targets.iter().enumerate() {
        assert!(target < c, "target {target} out of {c} classes");
        let row = &x[s * c..(s + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &v in row {
            denom += f64::from(v - max).exp();
        }
        let log_denom = denom.ln();
        loss += log_denom - f64::from(row[target] - max);
        let grow = &mut grad[s * c..(s + 1) * c];
        for (k, g) in grow.iter_mut().enumerate() {
            let p = (f64::from(row[k] - max).exp() / denom) as f32;
            *g = (p - if k == target { 1.0 } else { 0.0 }) / b as f32;
        }
    }
    ((loss / b as f64) as f32, Tensor::from_vec(&[b, c], grad))
}

/// Softmax probabilities of a logit matrix (used for evaluation).
pub fn softmax(logits: &Tensor) -> Tensor {
    let [b, c]: [usize; 2] = logits.shape().try_into().expect("expects [batch, classes]");
    let x = logits.data();
    let mut out = vec![0.0f32; x.len()];
    for s in 0..b {
        let row = &x[s * c..(s + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for &v in row {
            denom += f64::from(v - max).exp();
        }
        for (k, o) in out[s * c..(s + 1) * c].iter_mut().enumerate() {
            *o = (f64::from(row[k] - max).exp() / denom) as f32;
        }
    }
    Tensor::from_vec(&[b, c], out)
}

/// Index of the largest logit per row.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let [b, c]: [usize; 2] = logits.shape().try_into().expect("expects [batch, classes]");
    let x = logits.data();
    (0..b)
        .map(|s| {
            let row = &x[s * c..(s + 1) * c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
                .map(|(i, _)| i)
                .expect("nonzero class count")
        })
        .collect()
}

/// Mean squared error: returns `(mean_loss, grad)` with
/// `grad = 2 (pred - target) / n`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty batch");
    let n = pred.len() as f64;
    let mut loss = 0.0f64;
    let grad: Vec<f32> = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| {
            let d = f64::from(p) - f64::from(t);
            loss += d * d;
            (2.0 * d / n) as f32
        })
        .collect();
    ((loss / n) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
        // Gradient rows sum to zero.
        for row in grad.data().chunks(4) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        let (loss_wrong, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss_wrong > 10.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let base = vec![0.3f32, -0.7, 1.2, 0.1, 0.9, -0.2];
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&Tensor::from_vec(&[2, 3], base.clone()), &targets);
        let eps = 1e-3f32;
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&Tensor::from_vec(&[2, 3], plus), &targets);
            let (lm, _) = softmax_cross_entropy(&Tensor::from_vec(&[2, 3], minus), &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "coord {i}: numeric {numeric} vs analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn stability_under_huge_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1e4, -1e4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn argmax_picks_largest() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 5.0, 3.0, -1.0, -2.0, -0.5]);
        assert_eq!(argmax_rows(&logits), vec![1, 2]);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let (loss, grad) = mse(&[1.0, 2.0], &[0.0, 4.0]);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad, vec![1.0, -2.0]); // 2d/n
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_rejects_mismatch() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
