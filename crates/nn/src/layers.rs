//! The [`Layer`] trait and the dense/stateless layers.
//!
//! Layers own their parameters and gradients as flat `f32` buffers so a
//! [`crate::sequential::Sequential`] container can expose the whole network
//! as one parameter vector — the representation JWINS sparsifies. Every
//! backward implementation here is covered by finite-difference tests in
//! [`crate::gradcheck`].

use crate::init;
use crate::tensor::Tensor;

/// A differentiable module with owned parameters.
///
/// Contract: `forward` caches whatever `backward` needs; `backward` consumes
/// the cache of the *most recent* forward, accumulates parameter gradients
/// into `grads()` and returns the gradient with respect to the input.
pub trait Layer: Send + std::fmt::Debug {
    /// Computes the layer output for a batch.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_out`, returning the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// May panic if called before `forward` or with a mismatched shape.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Flat view of the parameters.
    fn params(&self) -> &[f32] {
        &[]
    }

    /// Mutable flat view of the parameters.
    fn params_mut(&mut self) -> &mut [f32] {
        &mut []
    }

    /// Flat view of the accumulated gradients (same layout as `params`).
    fn grads(&self) -> &[f32] {
        &[]
    }

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Matrix shapes of the parameter blocks, in flat order; the `(rows,
    /// cols)` products sum to [`Self::param_count`]. Low-rank compressors
    /// (PowerGossip) factorize each block separately, which only pays off
    /// when the shapes match the layer's natural matrices — the default
    /// treats all parameters as one column vector, which a rank-1
    /// factorization represents exactly (right for biases and norms).
    fn param_segments(&self) -> Vec<(usize, usize)> {
        if self.param_count() == 0 {
            Vec::new()
        } else {
            vec![(self.param_count(), 1)]
        }
    }
}

/// Fully connected layer: `y = W x + b`, weights `[out, in]` row-major
/// followed by the bias in the flat parameter buffer.
#[derive(Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    params: Vec<f32>,
    grads: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut params =
            init::xavier_uniform(in_features, out_features, in_features * out_features, seed);
        params.extend(std::iter::repeat_n(0.0f32, out_features)); // bias
        let len = params.len();
        Self {
            in_features,
            out_features,
            params,
            grads: vec![0.0; len],
            cached_input: None,
        }
    }

    fn weight(&self) -> &[f32] {
        &self.params[..self.in_features * self.out_features]
    }

    fn bias(&self) -> &[f32] {
        &self.params[self.in_features * self.out_features..]
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let b = input.shape()[0];
        assert_eq!(
            input.len(),
            b * self.in_features,
            "linear expects [batch, {}]",
            self.in_features
        );
        let x = input.data();
        let w = self.weight();
        let bias = self.bias();
        let mut out = vec![0.0f32; b * self.out_features];
        for s in 0..b {
            let xs = &x[s * self.in_features..(s + 1) * self.in_features];
            let ys = &mut out[s * self.out_features..(s + 1) * self.out_features];
            for (o, y) in ys.iter_mut().enumerate() {
                let row = &w[o * self.in_features..(o + 1) * self.in_features];
                let mut acc = bias[o];
                for (xi, wi) in xs.iter().zip(row) {
                    acc += xi * wi;
                }
                *y = acc;
            }
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(&[b, self.out_features], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let b = input.shape()[0];
        assert_eq!(grad_out.len(), b * self.out_features);
        let x = input.data();
        let gy = grad_out.data();
        let wlen = self.in_features * self.out_features;
        let mut gx = vec![0.0f32; b * self.in_features];
        {
            let (gw, gb) = self.grads.split_at_mut(wlen);
            let w = &self.params[..wlen];
            for s in 0..b {
                let xs = &x[s * self.in_features..(s + 1) * self.in_features];
                let gys = &gy[s * self.out_features..(s + 1) * self.out_features];
                let gxs = &mut gx[s * self.in_features..(s + 1) * self.in_features];
                for (o, &g) in gys.iter().enumerate() {
                    gb[o] += g;
                    let grow = &mut gw[o * self.in_features..(o + 1) * self.in_features];
                    let wrow = &w[o * self.in_features..(o + 1) * self.in_features];
                    for i in 0..self.in_features {
                        grow[i] += g * xs[i];
                        gxs[i] += g * wrow[i];
                    }
                }
            }
        }
        Tensor::from_vec(&[b, self.in_features], gx)
    }

    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn param_segments(&self) -> Vec<(usize, usize)> {
        // Weight matrix [out, in] then the bias column.
        vec![
            (self.out_features, self.in_features),
            (self.out_features, 1),
        ]
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn grads(&self) -> &[f32] {
        &self.grads
    }

    fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Vec<bool>,
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.mask = input.data().iter().map(|&v| v > 0.0).collect();
        self.shape = input.shape().to_vec();
        let out: Vec<f32> = input.data().iter().map(|&v| v.max(0.0)).collect();
        Tensor::from_vec(input.shape(), out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        let gx: Vec<f32> = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(&self.shape, gx)
    }
}

/// Hyperbolic tangent.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Vec<f32>,
    shape: Vec<usize>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_output = input.data().iter().map(|&v| v.tanh()).collect();
        self.shape = input.shape().to_vec();
        Tensor::from_vec(input.shape(), self.cached_output.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let gx: Vec<f32> = grad_out
            .data()
            .iter()
            .zip(&self.cached_output)
            .map(|(&g, &y)| g * (1.0 - y * y))
            .collect();
        Tensor::from_vec(&self.shape, gx)
    }
}

/// Collapses `[batch, d1, d2, …]` to `[batch, d1·d2·…]`.
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.input_shape = input.shape().to_vec();
        let b = input.shape()[0];
        let rest = input.len() / b.max(1);
        input.clone().reshape(&[b, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone().reshape(&self.input_shape)
    }
}

/// Non-overlapping average pooling over `[batch, ch, h, w]` with a square
/// window.
#[derive(Debug)]
pub struct AvgPool2d {
    window: usize,
    input_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average pool with the given square window/stride.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            input_shape: Vec::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [b, c, h, w]: [usize; 4] = input.shape().try_into().expect("expects [b,c,h,w]");
        assert!(
            h % self.window == 0 && w % self.window == 0,
            "spatial dims {h}x{w} not divisible by window {}",
            self.window
        );
        self.input_shape = input.shape().to_vec();
        let (oh, ow) = (h / self.window, w / self.window);
        let mut out = vec![0.0f32; b * c * oh * ow];
        let x = input.data();
        let norm = 1.0 / (self.window * self.window) as f32;
        for bi in 0..b {
            for ci in 0..c {
                let plane = &x[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w];
                let dst = &mut out[(bi * c + ci) * oh * ow..(bi * c + ci + 1) * oh * ow];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                acc += plane[(oy * self.window + dy) * w + ox * self.window + dx];
                            }
                        }
                        dst[oy * ow + ox] = acc * norm;
                    }
                }
            }
        }
        Tensor::from_vec(&[b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [b, c, h, w]: [usize; 4] = self.input_shape[..]
            .try_into()
            .expect("backward before forward");
        let (oh, ow) = (h / self.window, w / self.window);
        let gy = grad_out.data();
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut gx = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for ci in 0..c {
                let src = &gy[(bi * c + ci) * oh * ow..(bi * c + ci + 1) * oh * ow];
                let dst = &mut gx[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = src[oy * ow + ox] * norm;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                dst[(oy * self.window + dy) * w + ox * self.window + dx] += g;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(&self.input_shape, gx)
    }
}

/// Non-overlapping max pooling over `[batch, ch, h, w]`.
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    input_shape: Vec<usize>,
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max pool with the given square window/stride.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            input_shape: Vec::new(),
            argmax: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [b, c, h, w]: [usize; 4] = input.shape().try_into().expect("expects [b,c,h,w]");
        assert!(
            h % self.window == 0 && w % self.window == 0,
            "spatial dims {h}x{w} not divisible by window {}",
            self.window
        );
        self.input_shape = input.shape().to_vec();
        let (oh, ow) = (h / self.window, w / self.window);
        let x = input.data();
        let mut out = vec![0.0f32; b * c * oh * ow];
        self.argmax = vec![0; out.len()];
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                let obase = (bi * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..self.window {
                            for dx in 0..self.window {
                                let idx =
                                    base + (oy * self.window + dy) * w + ox * self.window + dx;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[obase + oy * ow + ox] = best;
                        self.argmax[obase + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        Tensor::from_vec(&[b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gx = vec![0.0f32; self.input_shape.iter().product()];
        for (g, &idx) in grad_out.data().iter().zip(&self.argmax) {
            gx[idx] += g;
        }
        Tensor::from_vec(&self.input_shape, gx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_known() {
        let mut l = Linear::new(2, 2, 0);
        l.params_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        // W = [[1,2],[3,4]], b = [0.5,-0.5]; x = [1, -1]
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -1.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[1.0 - 2.0 + 0.5, 3.0 - 4.0 - 0.5]);
    }

    #[test]
    fn linear_backward_shapes_and_bias_grad() {
        let mut l = Linear::new(3, 2, 1);
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0]);
        let _ = l.forward(&x);
        let gy = Tensor::from_vec(&[2, 2], vec![1.0, 1.0, 1.0, 1.0]);
        let gx = l.backward(&gy);
        assert_eq!(gx.shape(), &[2, 3]);
        // Bias grads sum over the batch.
        let gb = &l.grads()[6..];
        assert_eq!(gb, &[2.0, 2.0]);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = r.backward(&Tensor::from_vec(&[1, 4], vec![1.0; 4]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_uses_output() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(&[1, 1], vec![0.0]);
        let y = t.forward(&x);
        assert_eq!(y.data(), &[0.0]);
        let g = t.backward(&Tensor::from_vec(&[1, 1], vec![2.0]));
        assert_eq!(g.data(), &[2.0]); // 1 - tanh(0)^2 = 1
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&Tensor::zeros(&[2, 48]));
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn avg_pool_known() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = p.forward(&x);
        assert_eq!(y.data(), &[2.5]);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 4.0]);
        let y = p.forward(&x);
        assert_eq!(y.data(), &[5.0]);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![7.0]));
        assert_eq!(g.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn stateless_layers_report_zero_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Flatten::new().param_count(), 0);
        assert_eq!(AvgPool2d::new(2).param_count(), 0);
    }
}
