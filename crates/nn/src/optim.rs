//! Stochastic gradient descent.
//!
//! The paper tunes a plain SGD optimizer without momentum (§IV-B); momentum
//! is provided as an option for the extension experiments but defaults off.

/// Plain SGD with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no momentum.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum `v ← μv + g; p ← p − ηv`.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 <= momentum < 1`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ in length, or if the length
    /// changes between calls while momentum is active.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; params.len()];
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter count changed");
        for ((p, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_step() {
        let mut sgd = Sgd::new(0.1);
        let mut p = vec![1.0f32, -1.0];
        sgd.step(&mut p, &[2.0, -2.0]);
        assert_eq!(p, vec![0.8, -0.8]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut sgd = Sgd::with_momentum(0.1, 0.5);
        let mut p = vec![0.0f32];
        sgd.step(&mut p, &[1.0]); // v=1, p=-0.1
        sgd.step(&mut p, &[1.0]); // v=1.5, p=-0.25
        assert!((p[0] + 0.25).abs() < 1e-6);
    }

    #[test]
    fn descends_a_quadratic() {
        // f(x) = x², gradient 2x: iterates must converge to 0.
        let mut sgd = Sgd::new(0.1);
        let mut x = vec![5.0f32];
        for _ in 0..100 {
            let g = vec![2.0 * x[0]];
            sgd.step(&mut x, &g);
        }
        assert!(x[0].abs() < 1e-3, "did not converge: {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }
}
