//! The flat-parameter-vector model interface.
//!
//! Decentralized learning algorithms in this reproduction never look inside a
//! model: they read and write a flat `f32` parameter vector, ask for a loss
//! gradient on a local mini-batch, and evaluate held-out metrics. This
//! mirrors the paper's design ("JWINS considers models as flat vectors of
//! parameters", §IV-G) and keeps the sparsifiers architecture-agnostic.

/// Aggregated evaluation counters, mergeable across batches and nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalMetrics {
    /// Sum of per-sample losses.
    pub loss_sum: f64,
    /// Number of samples evaluated.
    pub count: usize,
    /// Correct top-1 predictions (classification tasks; 0 otherwise).
    pub correct: usize,
    /// Sum of squared errors (regression tasks; 0 otherwise).
    pub sq_err_sum: f64,
}

impl EvalMetrics {
    /// Mean loss per sample.
    pub fn mean_loss(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.loss_sum / self.count as f64
        }
    }

    /// Top-1 accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f64 / self.count as f64
        }
    }

    /// Root mean squared error.
    pub fn rmse(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sq_err_sum / self.count as f64).sqrt()
        }
    }

    /// Combines counters from another batch/node.
    pub fn merge(&mut self, other: &EvalMetrics) {
        self.loss_sum += other.loss_sum;
        self.count += other.count;
        self.correct += other.correct;
        self.sq_err_sum += other.sq_err_sum;
    }
}

/// A trainable model exposed as a flat parameter vector.
///
/// Implementations cache activations internally, hence `&mut self` on the
/// compute methods. `loss_and_grad` must be a deterministic function of
/// `(params, batch)` — the finite-difference checker in [`crate::gradcheck`]
/// relies on it.
pub trait Model: Send {
    /// One training/evaluation example.
    type Sample: Clone + Send + Sync;

    /// Number of trainable parameters (`d` in the paper).
    fn param_count(&self) -> usize;

    /// Copies the parameters into a fresh flat vector.
    fn params(&self) -> Vec<f32>;

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Implementations panic if `flat.len() != self.param_count()`.
    fn set_params(&mut self, flat: &[f32]);

    /// Computes the mean loss over `batch` and its gradient w.r.t. the
    /// parameters (same layout as [`Self::params`]).
    fn loss_and_grad(&mut self, batch: &[Self::Sample]) -> (f32, Vec<f32>);

    /// Evaluates `batch` without touching gradients.
    fn evaluate(&mut self, batch: &[Self::Sample]) -> EvalMetrics;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_aggregate() {
        let mut a = EvalMetrics {
            loss_sum: 2.0,
            count: 4,
            correct: 3,
            sq_err_sum: 8.0,
        };
        let b = EvalMetrics {
            loss_sum: 6.0,
            count: 4,
            correct: 1,
            sq_err_sum: 0.0,
        };
        a.merge(&b);
        assert_eq!(a.count, 8);
        assert!((a.mean_loss() - 1.0).abs() < 1e-12);
        assert!((a.accuracy() - 0.5).abs() < 1e-12);
        assert!((a.rmse() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = EvalMetrics::default();
        assert_eq!(m.mean_loss(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.rmse(), 0.0);
    }
}
