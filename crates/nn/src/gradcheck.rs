//! Finite-difference gradient verification.
//!
//! Every model in this crate must pass `check_model` before it is trusted in
//! an experiment: analytic backprop is compared against central differences
//! `(L(p+ε) − L(p−ε)) / 2ε` on a deterministic subset of coordinates. A wrong
//! backward pass is off by orders of magnitude on at least some coordinates,
//! so a modest relative tolerance reliably separates correct from broken
//! implementations despite `f32` noise.

use crate::model::Model;

/// Compares analytic and numeric gradients on up to `max_checks` evenly
/// spaced parameter coordinates.
///
/// # Errors
///
/// Returns a human-readable description of the first failing coordinate.
pub fn check_model<M: Model>(
    model: &mut M,
    batch: &[M::Sample],
    eps: f32,
    rel_tol: f32,
    max_checks: usize,
) -> Result<(), String> {
    let (_, analytic) = model.loss_and_grad(batch);
    let base = model.params();
    let n = base.len();
    if n == 0 {
        return Err("model has no parameters".to_owned());
    }
    let stride = (n / max_checks.max(1)).max(1);
    let numeric_at = |model: &mut M, idx: usize, eps: f32| -> f64 {
        let mut plus = base.clone();
        plus[idx] += eps;
        model.set_params(&plus);
        let (loss_plus, _) = model.loss_and_grad(batch);
        let mut minus = base.clone();
        minus[idx] -= eps;
        model.set_params(&minus);
        let (loss_minus, _) = model.loss_and_grad(batch);
        (f64::from(loss_plus) - f64::from(loss_minus)) / (2.0 * f64::from(eps))
    };
    let mut skipped = 0usize;
    let mut checked = 0usize;
    for idx in (0..n).step_by(stride) {
        let coarse = numeric_at(model, idx, eps);
        let fine = numeric_at(model, idx, eps / 2.0);
        let got = f64::from(analytic[idx]);
        let scale = fine.abs().max(got.abs()).max(0.05);
        // If halving the step moves the estimate materially, the loss is not
        // locally smooth here (e.g. a ReLU kink sits inside the probe
        // interval) and the finite difference says nothing about the
        // analytic gradient — skip the coordinate.
        if (coarse - fine).abs() > 0.25 * f64::from(rel_tol) * scale {
            skipped += 1;
            continue;
        }
        checked += 1;
        if (fine - got).abs() > f64::from(rel_tol) * scale {
            model.set_params(&base);
            return Err(format!(
                "gradient mismatch at parameter {idx}: numeric {fine:.6e}, analytic {got:.6e}"
            ));
        }
    }
    model.set_params(&base);
    if checked < skipped {
        return Err(format!(
            "only {checked} smooth coordinates out of {} probed — check inconclusive",
            checked + skipped
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EvalMetrics;

    /// Scalar quadratic with an intentionally scalable gradient bug.
    struct Quadratic {
        p: Vec<f32>,
        grad_scale: f32,
    }

    impl Model for Quadratic {
        type Sample = f32;

        fn param_count(&self) -> usize {
            self.p.len()
        }

        fn params(&self) -> Vec<f32> {
            self.p.clone()
        }

        fn set_params(&mut self, flat: &[f32]) {
            self.p.copy_from_slice(flat);
        }

        fn loss_and_grad(&mut self, batch: &[f32]) -> (f32, Vec<f32>) {
            let target = batch[0];
            let loss: f32 = self.p.iter().map(|v| (v - target) * (v - target)).sum();
            let grad: Vec<f32> = self
                .p
                .iter()
                .map(|v| self.grad_scale * 2.0 * (v - target))
                .collect();
            (loss, grad)
        }

        fn evaluate(&mut self, _batch: &[f32]) -> EvalMetrics {
            EvalMetrics::default()
        }
    }

    #[test]
    fn correct_gradient_passes() {
        let mut m = Quadratic {
            p: vec![1.0, -2.0, 0.5],
            grad_scale: 1.0,
        };
        check_model(&mut m, &[0.3], 1e-3, 1e-2, 10).unwrap();
    }

    #[test]
    fn wrong_gradient_fails() {
        let mut m = Quadratic {
            p: vec![1.0, -2.0, 0.5],
            grad_scale: 0.5, // analytic gradient half of the true one
        };
        assert!(check_model(&mut m, &[0.3], 1e-3, 1e-2, 10).is_err());
    }

    #[test]
    fn parameters_are_restored_after_check() {
        let mut m = Quadratic {
            p: vec![1.0, -2.0, 0.5],
            grad_scale: 1.0,
        };
        let before = m.params();
        check_model(&mut m, &[0.3], 1e-3, 1e-2, 10).unwrap();
        assert_eq!(m.params(), before);
    }
}
