//! Minimal neural-network training stack with hand-written backprop.
//!
//! The paper trains its workloads with PyTorch; this crate is the Rust
//! substitute: exactly the layers the five evaluation models need, each with
//! an analytic backward pass that is verified against central finite
//! differences (see [`gradcheck`]). Everything a decentralized-learning
//! algorithm touches goes through the flat-parameter-vector [`Model`] trait —
//! JWINS explicitly "considers models as flat vectors of parameters"
//! (paper §IV-G), so `params`/`set_params`/`loss_and_grad` all speak
//! `&[f32]`.
//!
//! # Contents
//!
//! - [`tensor::Tensor`]: shape-checked dense `f32` arrays.
//! - [`layers`]: linear, activations, flatten, pooling.
//! - [`conv::Conv2d`], [`norm::GroupNorm`]: the GN-LeNet building blocks.
//! - [`recurrent`]: embeddings and LSTMs for the Shakespeare-style task.
//! - [`sequential::Sequential`], [`models`]: the paper's five architectures.
//! - [`loss`]: softmax cross-entropy and mean-squared error.
//! - [`optim::Sgd`]: plain SGD (the paper uses SGD without momentum).
//! - [`gradcheck`]: finite-difference verification harness.
//!
//! # Example
//!
//! ```
//! use jwins_nn::models::mlp_classifier;
//! use jwins_nn::model::Model;
//!
//! let mut model = mlp_classifier(4, &[16], 3, 42);
//! let batch = vec![(vec![0.1, -0.2, 0.3, 0.5], 1usize)];
//! let (loss, grad) = model.loss_and_grad(&batch);
//! assert!(loss > 0.0);
//! assert_eq!(grad.len(), model.param_count());
//! ```

pub mod conv;
pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod models;
pub mod norm;
pub mod optim;
pub mod recurrent;
pub mod sequential;
pub mod tensor;

pub use model::{EvalMetrics, Model};
pub use tensor::Tensor;
