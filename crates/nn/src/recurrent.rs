//! Embedding tables and LSTMs for the sequence workload.
//!
//! The Shakespeare next-character task in the paper uses the LEAF model: an
//! embedding layer feeding a two-layer stacked LSTM and a linear decoder.
//! These modules are not [`crate::layers::Layer`]s — their inputs are token
//! ids and sequences rather than dense feature batches — so they expose their
//! own typed forward/backward API and are composed by
//! [`crate::models::CharLstm`].

use crate::init;
use crate::tensor::Tensor;

/// A trainable lookup table mapping token ids to dense vectors.
#[derive(Debug)]
pub struct Embedding {
    vocab: usize,
    dim: usize,
    params: Vec<f32>,
    grads: Vec<f32>,
    cached_ids: Vec<usize>,
}

impl Embedding {
    /// Creates an `N(0, 0.1)`-initialized embedding table.
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        let params = init::scaled_normal(0.1, vocab * dim, seed);
        Self {
            vocab,
            dim,
            grads: vec![0.0; params.len()],
            params,
            cached_ids: Vec::new(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Looks up a flat list of ids, producing `[ids.len(), dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        let mut out = vec![0.0f32; ids.len() * self.dim];
        for (row, &id) in ids.iter().enumerate() {
            assert!(
                id < self.vocab,
                "token id {id} out of vocabulary {}",
                self.vocab
            );
            out[row * self.dim..(row + 1) * self.dim]
                .copy_from_slice(&self.params[id * self.dim..(id + 1) * self.dim]);
        }
        self.cached_ids = ids.to_vec();
        Tensor::from_vec(&[ids.len(), self.dim], out)
    }

    /// Accumulates gradients for the rows used by the last forward.
    pub fn backward(&mut self, grad_out: &Tensor) {
        assert_eq!(grad_out.len(), self.cached_ids.len() * self.dim);
        let gy = grad_out.data();
        for (row, &id) in self.cached_ids.iter().enumerate() {
            let dst = &mut self.grads[id * self.dim..(id + 1) * self.dim];
            let src = &gy[row * self.dim..(row + 1) * self.dim];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Parameter buffer.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable parameter buffer.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Gradient buffer.
    pub fn grads(&self) -> &[f32] {
        &self.grads
    }

    /// Clears gradients.
    pub fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A single-layer LSTM processing whole sequences with BPTT.
///
/// Parameters pack `[w_ih: 4H×I][w_hh: 4H×H][bias: 4H]` with gate order
/// `input, forget, cell, output`.
#[derive(Debug)]
pub struct Lstm {
    input_size: usize,
    hidden: usize,
    params: Vec<f32>,
    grads: Vec<f32>,
    cache: Option<LstmCache>,
}

#[derive(Debug)]
struct LstmCache {
    batch: usize,
    steps: usize,
    /// `[B, T, I]` inputs.
    x: Vec<f32>,
    /// Gate activations per step: i, f, g, o each `[B, T, H]`.
    gates: Vec<f32>,
    /// Cell states `[B, T+1, H]` (slot 0 is the zero initial state).
    c: Vec<f32>,
    /// Hidden states `[B, T+1, H]`.
    h: Vec<f32>,
}

impl Lstm {
    /// Creates a Xavier-initialized LSTM.
    pub fn new(input_size: usize, hidden: usize, seed: u64) -> Self {
        let wih = init::xavier_uniform(input_size, hidden, 4 * hidden * input_size, seed);
        let whh =
            init::xavier_uniform(hidden, hidden, 4 * hidden * hidden, init::sub_seed(seed, 1));
        let mut params = wih;
        params.extend(whh);
        // Bias: forget gate initialized to 1 (standard trick for gradient flow).
        let mut bias = vec![0.0f32; 4 * hidden];
        for b in bias.iter_mut().take(2 * hidden).skip(hidden) {
            *b = 1.0;
        }
        params.extend(bias);
        let len = params.len();
        Self {
            input_size,
            hidden,
            params,
            grads: vec![0.0; len],
            cache: None,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn split_params(&self) -> (&[f32], &[f32], &[f32]) {
        let wih_len = 4 * self.hidden * self.input_size;
        let whh_len = 4 * self.hidden * self.hidden;
        let (wih, rest) = self.params.split_at(wih_len);
        let (whh, bias) = rest.split_at(whh_len);
        (wih, whh, bias)
    }

    /// Runs the LSTM over `[batch, steps, input]`, returning all hidden
    /// states `[batch, steps, hidden]`. Initial state is zero.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let [b, t, i]: [usize; 3] = x.shape().try_into().expect("expects [b,t,i]");
        assert_eq!(i, self.input_size, "input width mismatch");
        let hsz = self.hidden;
        let (wih, whh, bias) = self.split_params();
        let xv = x.data();
        let mut gates = vec![0.0f32; b * t * 4 * hsz];
        let mut c = vec![0.0f32; b * (t + 1) * hsz];
        let mut h = vec![0.0f32; b * (t + 1) * hsz];
        for bi in 0..b {
            for step in 0..t {
                let xt = &xv[(bi * t + step) * i..(bi * t + step + 1) * i];
                let hprev =
                    h[(bi * (t + 1) + step) * hsz..(bi * (t + 1) + step + 1) * hsz].to_vec();
                let cprev =
                    c[(bi * (t + 1) + step) * hsz..(bi * (t + 1) + step + 1) * hsz].to_vec();
                let gt = &mut gates[(bi * t + step) * 4 * hsz..(bi * t + step + 1) * 4 * hsz];
                // z = W_ih x + W_hh h_prev + b
                for (row, g) in gt.iter_mut().enumerate() {
                    let mut acc = bias[row];
                    let wrow = &wih[row * i..(row + 1) * i];
                    for (xj, wj) in xt.iter().zip(wrow) {
                        acc += xj * wj;
                    }
                    let hrow = &whh[row * hsz..(row + 1) * hsz];
                    for (hj, wj) in hprev.iter().zip(hrow) {
                        acc += hj * wj;
                    }
                    *g = acc;
                }
                // Activations in place: i, f, o are sigmoids; g is tanh.
                for k in 0..hsz {
                    gt[k] = sigmoid(gt[k]);
                    gt[hsz + k] = sigmoid(gt[hsz + k]);
                    gt[2 * hsz + k] = gt[2 * hsz + k].tanh();
                    gt[3 * hsz + k] = sigmoid(gt[3 * hsz + k]);
                }
                let hnext_base = (bi * (t + 1) + step + 1) * hsz;
                for k in 0..hsz {
                    let ct = gt[hsz + k] * cprev[k] + gt[k] * gt[2 * hsz + k];
                    c[hnext_base + k] = ct;
                    h[hnext_base + k] = gt[3 * hsz + k] * ct.tanh();
                }
            }
        }
        // Collect outputs [b, t, h] from h[:, 1.., :].
        let mut out = vec![0.0f32; b * t * hsz];
        for bi in 0..b {
            for step in 0..t {
                out[(bi * t + step) * hsz..(bi * t + step + 1) * hsz].copy_from_slice(
                    &h[(bi * (t + 1) + step + 1) * hsz..(bi * (t + 1) + step + 2) * hsz],
                );
            }
        }
        self.cache = Some(LstmCache {
            batch: b,
            steps: t,
            x: xv.to_vec(),
            gates,
            c,
            h,
        });
        Tensor::from_vec(&[b, t, hsz], out)
    }

    /// BPTT through the cached forward. Returns the gradient w.r.t. the
    /// input `[batch, steps, input]`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward before forward");
        let (b, t) = (cache.batch, cache.steps);
        let hsz = self.hidden;
        let isz = self.input_size;
        assert_eq!(grad_out.len(), b * t * hsz);
        let gy = grad_out.data();
        let wih_len = 4 * hsz * isz;
        let whh_len = 4 * hsz * hsz;
        let wih: Vec<f32> = self.params[..wih_len].to_vec();
        let whh: Vec<f32> = self.params[wih_len..wih_len + whh_len].to_vec();
        let mut gx = vec![0.0f32; b * t * isz];
        {
            let (gwih, rest) = self.grads.split_at_mut(wih_len);
            let (gwhh, gbias) = rest.split_at_mut(whh_len);
            for bi in 0..b {
                let mut dh_next = vec![0.0f32; hsz];
                let mut dc_next = vec![0.0f32; hsz];
                for step in (0..t).rev() {
                    let gt = &cache.gates[(bi * t + step) * 4 * hsz..(bi * t + step + 1) * 4 * hsz];
                    let c_t =
                        &cache.c[(bi * (t + 1) + step + 1) * hsz..(bi * (t + 1) + step + 2) * hsz];
                    let c_prev =
                        &cache.c[(bi * (t + 1) + step) * hsz..(bi * (t + 1) + step + 1) * hsz];
                    let h_prev =
                        &cache.h[(bi * (t + 1) + step) * hsz..(bi * (t + 1) + step + 1) * hsz];
                    let xt = &cache.x[(bi * t + step) * isz..(bi * t + step + 1) * isz];
                    let mut dz = vec![0.0f32; 4 * hsz];
                    for k in 0..hsz {
                        let dh = gy[(bi * t + step) * hsz + k] + dh_next[k];
                        let (ig, fg, gg, og) =
                            (gt[k], gt[hsz + k], gt[2 * hsz + k], gt[3 * hsz + k]);
                        let tc = c_t[k].tanh();
                        let dc = dc_next[k] + dh * og * (1.0 - tc * tc);
                        dz[k] = dc * gg * ig * (1.0 - ig); // input gate
                        dz[hsz + k] = dc * c_prev[k] * fg * (1.0 - fg); // forget gate
                        dz[2 * hsz + k] = dc * ig * (1.0 - gg * gg); // cell candidate
                        dz[3 * hsz + k] = dh * tc * og * (1.0 - og); // output gate
                        dc_next[k] = dc * fg;
                    }
                    // Parameter gradients and upstream gradients.
                    let gxt = &mut gx[(bi * t + step) * isz..(bi * t + step + 1) * isz];
                    dh_next.iter_mut().for_each(|v| *v = 0.0);
                    for (row, &dzr) in dz.iter().enumerate() {
                        gbias[row] += dzr;
                        if dzr == 0.0 {
                            continue;
                        }
                        let gw_row = &mut gwih[row * isz..(row + 1) * isz];
                        let w_row = &wih[row * isz..(row + 1) * isz];
                        for j in 0..isz {
                            gw_row[j] += dzr * xt[j];
                            gxt[j] += dzr * w_row[j];
                        }
                        let gwh_row = &mut gwhh[row * hsz..(row + 1) * hsz];
                        let wh_row = &whh[row * hsz..(row + 1) * hsz];
                        for j in 0..hsz {
                            gwh_row[j] += dzr * h_prev[j];
                            dh_next[j] += dzr * wh_row[j];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(&[b, t, isz], gx)
    }

    /// Parameter buffer.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable parameter buffer.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Gradient buffer.
    pub fn grads(&self) -> &[f32] {
        &self.grads
    }

    /// Clears gradients.
    pub fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }
}

impl Embedding {
    /// Matrix shape of the embedding table, `(vocab, dim)` — feeds
    /// per-layer low-rank compressors.
    pub fn param_segments(&self) -> Vec<(usize, usize)> {
        vec![(self.vocab, self.dim)]
    }
}

impl Lstm {
    /// Matrix shapes of the parameter blocks: `[W_ih: 4H×I][W_hh: 4H×H]
    /// [bias: 4H×1]` — feeds per-layer low-rank compressors.
    pub fn param_segments(&self) -> Vec<(usize, usize)> {
        vec![
            (4 * self.hidden, self.input_size),
            (4 * self.hidden, self.hidden),
            (4 * self.hidden, 1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_lookup_and_grad() {
        let mut emb = Embedding::new(5, 3, 0);
        let out = emb.forward(&[2, 2, 4]);
        assert_eq!(out.shape(), &[3, 3]);
        assert_eq!(out.data()[0..3], emb.params()[6..9]);
        let g = Tensor::from_vec(&[3, 3], vec![1.0; 9]);
        emb.backward(&g);
        // Row 2 was used twice: gradient 2.0 per slot; row 4 once.
        assert_eq!(&emb.grads()[6..9], &[2.0, 2.0, 2.0]);
        assert_eq!(&emb.grads()[12..15], &[1.0, 1.0, 1.0]);
        assert_eq!(&emb.grads()[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embedding_rejects_oov() {
        let mut emb = Embedding::new(3, 2, 0);
        let _ = emb.forward(&[3]);
    }

    #[test]
    fn lstm_shapes_and_determinism() {
        let mut lstm = Lstm::new(4, 6, 9);
        let x = Tensor::from_vec(&[2, 3, 4], (0..24).map(|i| i as f32 * 0.1).collect());
        let y1 = lstm.forward(&x);
        assert_eq!(y1.shape(), &[2, 3, 6]);
        let y2 = lstm.forward(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn lstm_hidden_states_are_bounded() {
        // h = o · tanh(c): |h| <= 1 regardless of input scale.
        let mut lstm = Lstm::new(2, 4, 3);
        let x = Tensor::from_vec(&[1, 5, 2], vec![100.0; 10]);
        let y = lstm.forward(&x);
        for &v in y.data() {
            assert!(v.abs() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn lstm_carries_state_across_steps() {
        // With a nonzero input only at t=0, later outputs must still move
        // (memory), i.e. differ from the all-zero-input run.
        let mut lstm = Lstm::new(1, 3, 5);
        let ximp = Tensor::from_vec(&[1, 4, 1], vec![5.0, 0.0, 0.0, 0.0]);
        let yimp = lstm.forward(&ximp).into_vec();
        let xzero = Tensor::from_vec(&[1, 4, 1], vec![0.0; 4]);
        let yzero = lstm.forward(&xzero).into_vec();
        let last_diff: f32 = yimp[9..12]
            .iter()
            .zip(&yzero[9..12])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(last_diff > 1e-4, "state did not propagate: {last_diff}");
    }

    #[test]
    fn lstm_backward_produces_full_grads() {
        let mut lstm = Lstm::new(3, 4, 1);
        let x = Tensor::from_vec(
            &[2, 2, 3],
            (0..12).map(|i| (i as f32 - 6.0) * 0.2).collect(),
        );
        let y = lstm.forward(&x);
        let gx = lstm.backward(&Tensor::from_vec(y.shape(), vec![1.0; y.len()]));
        assert_eq!(gx.shape(), &[2, 2, 3]);
        let nonzero = lstm.grads().iter().filter(|g| **g != 0.0).count();
        assert!(nonzero > lstm.grads().len() / 2, "too many zero grads");
    }
}
