//! Group normalization (Wu & He, 2018).
//!
//! The paper's CIFAR-10 model is *GN*-LeNet (Hsieh et al., "The non-IID data
//! quagmire"): batch norm is replaced by group norm precisely because batch
//! statistics break under non-IID decentralized training. Group norm
//! normalizes each sample independently over channel groups, so it behaves
//! identically at train and eval time and needs no running statistics.

use crate::layers::Layer;
use crate::tensor::Tensor;

const EPS: f64 = 1e-5;

/// Group normalization over `[batch, ch, h, w]` with per-channel affine
/// parameters (`gamma` then `beta` in the flat buffer).
#[derive(Debug)]
pub struct GroupNorm {
    groups: usize,
    channels: usize,
    params: Vec<f32>,
    grads: Vec<f32>,
    /// Cached from forward: normalized activations and per-(sample, group)
    /// inverse standard deviations.
    cache: Option<Cache>,
}

#[derive(Debug)]
struct Cache {
    xhat: Vec<f32>,
    inv_std: Vec<f64>,
    shape: Vec<usize>,
}

impl GroupNorm {
    /// Creates a group norm with `gamma = 1`, `beta = 0`.
    ///
    /// # Panics
    ///
    /// Panics unless `groups` divides `channels`.
    pub fn new(groups: usize, channels: usize) -> Self {
        assert!(
            groups > 0 && channels.is_multiple_of(groups),
            "groups must divide channels"
        );
        let mut params = vec![1.0f32; channels];
        params.extend(std::iter::repeat_n(0.0f32, channels));
        Self {
            groups,
            channels,
            grads: vec![0.0; 2 * channels],
            params,
            cache: None,
        }
    }
}

impl Layer for GroupNorm {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [b, c, h, w]: [usize; 4] = input.shape().try_into().expect("expects [b,c,h,w]");
        assert_eq!(c, self.channels, "channel mismatch");
        let gsize = c / self.groups * h * w; // elements per (sample, group)
        let x = input.data();
        let (gamma, beta) = self.params.split_at(c);
        let mut xhat = vec![0.0f32; x.len()];
        let mut out = vec![0.0f32; x.len()];
        let mut inv_std = vec![0.0f64; b * self.groups];
        let ch_per_group = c / self.groups;
        for bi in 0..b {
            for g in 0..self.groups {
                let start = bi * c * h * w + g * ch_per_group * h * w;
                let slice = &x[start..start + gsize];
                let mean = slice.iter().map(|&v| f64::from(v)).sum::<f64>() / gsize as f64;
                let var = slice
                    .iter()
                    .map(|&v| (f64::from(v) - mean).powi(2))
                    .sum::<f64>()
                    / gsize as f64;
                let istd = 1.0 / (var + EPS).sqrt();
                inv_std[bi * self.groups + g] = istd;
                for (k, &v) in slice.iter().enumerate() {
                    let ch = g * ch_per_group + k / (h * w);
                    let xh = ((f64::from(v) - mean) * istd) as f32;
                    xhat[start + k] = xh;
                    out[start + k] = gamma[ch] * xh + beta[ch];
                }
            }
        }
        self.cache = Some(Cache {
            xhat,
            inv_std,
            shape: input.shape().to_vec(),
        });
        Tensor::from_vec(input.shape(), out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let [b, c, h, w]: [usize; 4] = cache.shape[..].try_into().expect("cached shape");
        assert_eq!(grad_out.len(), b * c * h * w);
        let gy = grad_out.data();
        let gsize = c / self.groups * h * w;
        let ch_per_group = c / self.groups;
        let gamma: Vec<f32> = self.params[..c].to_vec();
        let (ggamma, gbeta) = self.grads.split_at_mut(c);
        let mut gx = vec![0.0f32; gy.len()];
        for bi in 0..b {
            for g in 0..self.groups {
                let start = bi * c * h * w + g * ch_per_group * h * w;
                let istd = cache.inv_std[bi * self.groups + g];
                // Per-group reductions of gxhat and gxhat·xhat.
                let mut sum_gxh = 0.0f64;
                let mut sum_gxh_xh = 0.0f64;
                for k in 0..gsize {
                    let ch = g * ch_per_group + k / (h * w);
                    let gxh = f64::from(gy[start + k]) * f64::from(gamma[ch]);
                    let xh = f64::from(cache.xhat[start + k]);
                    sum_gxh += gxh;
                    sum_gxh_xh += gxh * xh;
                    ggamma[ch] += gy[start + k] * cache.xhat[start + k];
                    gbeta[ch] += gy[start + k];
                }
                let m = gsize as f64;
                for k in 0..gsize {
                    let ch = g * ch_per_group + k / (h * w);
                    let gxh = f64::from(gy[start + k]) * f64::from(gamma[ch]);
                    let xh = f64::from(cache.xhat[start + k]);
                    gx[start + k] = ((istd / m) * (m * gxh - sum_gxh - xh * sum_gxh_xh)) as f32;
                }
            }
        }
        Tensor::from_vec(&cache.shape, gx)
    }

    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn grads(&self) -> &[f32] {
        &self.grads
    }

    fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let mut gn = GroupNorm::new(2, 4);
        let x = Tensor::from_vec(&[1, 4, 1, 2], vec![1.0, 3.0, 5.0, 7.0, -2.0, 0.0, 2.0, 4.0]);
        let y = gn.forward(&x);
        // Group 0 covers channels 0-1 (first 4 values), group 1 the rest.
        for group in y.data().chunks(4) {
            let mean: f32 = group.iter().sum::<f32>() / 4.0;
            let var: f32 = group.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn affine_parameters_apply() {
        let mut gn = GroupNorm::new(1, 2);
        let c = 2;
        gn.params_mut()[0] = 2.0; // gamma ch0
        gn.params_mut()[c] = 1.0; // beta ch0
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![1.0, -1.0]);
        let y = gn.forward(&x);
        // xhat = [1, -1] (mean 0, var 1 over the group of both channels).
        assert!((y.data()[0] - 3.0).abs() < 1e-3, "{:?}", y.data());
        assert!((y.data()[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn samples_are_independent() {
        // Changing sample 2 must not affect sample 1's output.
        let mut gn = GroupNorm::new(1, 1);
        let x1 = Tensor::from_vec(&[2, 1, 1, 2], vec![1.0, 2.0, 100.0, -50.0]);
        let x2 = Tensor::from_vec(&[2, 1, 1, 2], vec![1.0, 2.0, 7.0, 9.0]);
        let y1 = gn.forward(&x1).data()[..2].to_vec();
        let y2 = gn.forward(&x2).data()[..2].to_vec();
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "groups must divide channels")]
    fn invalid_groups_panics() {
        let _ = GroupNorm::new(3, 4);
    }
}
