//! A sequential container exposing its layers as one flat parameter vector.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// A stack of layers applied in order.
///
/// The container concatenates every layer's parameters (in layer order) into
/// the single flat vector JWINS and the baselines sparsify, and scatters
/// updates back.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs all layers forward.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backpropagates through all layers (reverse order), accumulating
    /// parameter gradients; returns the gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Per-layer parameter counts, in flat-vector order. Layers without
    /// parameters (activations, pooling) contribute a `0` entry, so the
    /// sizes always sum to [`Self::param_count`]. Used to build per-layer
    /// importance scalings over the flat vector.
    pub fn layer_param_sizes(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.param_count()).collect()
    }

    /// Matrix shapes of every parameter block across all layers, in flat
    /// order (see [`Layer::param_segments`]); products sum to
    /// [`Self::param_count`]. Feeds low-rank per-layer compressors.
    pub fn param_segments(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .flat_map(|l| l.param_segments())
            .collect()
    }

    /// Copies all parameters into a fresh flat vector (layer order).
    pub fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.params());
        }
        out
    }

    /// Loads a flat parameter vector produced by [`Self::params`].
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.param_count()`.
    pub fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "parameter length mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            let n = layer.param_count();
            layer
                .params_mut()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// Copies all gradients into a fresh flat vector (same layout as
    /// [`Self::params`]).
    pub fn grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.grads());
        }
        out
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};

    fn tiny_net() -> Sequential {
        Sequential::new()
            .with(Linear::new(3, 4, 1))
            .with(Relu::new())
            .with(Linear::new(4, 2, 2))
    }

    #[test]
    fn param_roundtrip() {
        let mut net = tiny_net();
        assert_eq!(net.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
        let p = net.params();
        let mut p2 = p.clone();
        p2[0] += 1.0;
        net.set_params(&p2);
        assert_eq!(net.params(), p2);
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(&[2, 3], vec![0.5; 6]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2, 2]);
        let gx = net.backward(&Tensor::from_vec(&[2, 2], vec![1.0; 4]));
        assert_eq!(gx.shape(), &[2, 3]);
        assert_eq!(net.grads().len(), net.param_count());
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let _ = net.forward(&x);
        let _ = net.backward(&Tensor::from_vec(&[1, 2], vec![1.0, -1.0]));
        assert!(net.grads().iter().any(|&g| g != 0.0));
        net.zero_grads();
        assert!(net.grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn set_params_validates_length() {
        tiny_net().set_params(&[0.0; 3]);
    }
}
