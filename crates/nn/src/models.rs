//! The five model architectures of the JWINS evaluation.
//!
//! | Paper workload | Architecture | Constructor |
//! |---|---|---|
//! | CIFAR-10 | GN-LeNet (conv + group norm, Hsieh et al.) | [`gn_lenet`] |
//! | FEMNIST | LEAF CNN (conv + max pool) | [`leaf_cnn`] |
//! | CelebA | LEAF CNN, binary head | [`leaf_cnn`] |
//! | MovieLens | matrix factorization with biases | [`MatrixFactorization`] |
//! | Shakespeare | embedding + stacked LSTM + decoder | [`CharLstm`] |
//!
//! All widths are configurable so experiments can run at laptop scale while
//! keeping the architectural shape; every model implements [`Model`] and is
//! finite-difference checked in the test suite.

use crate::conv::Conv2d;
use crate::init;
use crate::layers::{AvgPool2d, Flatten, Layer, Linear, MaxPool2d, Relu};
use crate::loss::{argmax_rows, mse, softmax_cross_entropy};
use crate::model::{EvalMetrics, Model};
use crate::norm::GroupNorm;
use crate::recurrent::{Embedding, Lstm};
use crate::sequential::Sequential;
use crate::tensor::Tensor;

/// A classification sample: dense features plus a class index.
pub type ClassSample = (Vec<f32>, usize);

/// A rating sample: `(user, item, rating)`.
pub type RatingSample = (usize, usize, f32);

/// A sequence sample: `(input token ids, next-token targets)`, equal length.
pub type SeqSample = (Vec<usize>, Vec<usize>);

/// A [`Sequential`] network with a softmax-cross-entropy head, consuming
/// `(features, label)` samples.
#[derive(Debug)]
pub struct ImageClassifier {
    net: Sequential,
    /// Per-sample input shape (e.g. `[3, 16, 16]` or `[features]`).
    input_shape: Vec<usize>,
    classes: usize,
}

impl ImageClassifier {
    /// Wraps a network whose final layer emits `classes` logits.
    pub fn new(net: Sequential, input_shape: Vec<usize>, classes: usize) -> Self {
        Self {
            net,
            input_shape,
            classes,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-layer parameter counts of the wrapped network, in flat-vector
    /// order (see [`Sequential::layer_param_sizes`]).
    pub fn layer_param_sizes(&self) -> Vec<usize> {
        self.net.layer_param_sizes()
    }

    /// Matrix shapes of every parameter block (see
    /// [`Sequential::param_segments`]). Feeds per-layer low-rank
    /// compressors like PowerGossip.
    pub fn param_segments(&self) -> Vec<(usize, usize)> {
        self.net.param_segments()
    }

    fn batch_tensor(&self, batch: &[ClassSample]) -> (Tensor, Vec<usize>) {
        let per: usize = self.input_shape.iter().product();
        let mut data = Vec::with_capacity(batch.len() * per);
        let mut targets = Vec::with_capacity(batch.len());
        for (x, y) in batch {
            assert_eq!(
                x.len(),
                per,
                "sample has {} features, expected {per}",
                x.len()
            );
            data.extend_from_slice(x);
            targets.push(*y);
        }
        let mut shape = vec![batch.len()];
        shape.extend_from_slice(&self.input_shape);
        (Tensor::from_vec(&shape, data), targets)
    }
}

impl Model for ImageClassifier {
    type Sample = ClassSample;

    fn param_count(&self) -> usize {
        self.net.param_count()
    }

    fn params(&self) -> Vec<f32> {
        self.net.params()
    }

    fn set_params(&mut self, flat: &[f32]) {
        self.net.set_params(flat);
    }

    fn loss_and_grad(&mut self, batch: &[ClassSample]) -> (f32, Vec<f32>) {
        assert!(!batch.is_empty(), "empty batch");
        self.net.zero_grads();
        let (x, targets) = self.batch_tensor(batch);
        let logits = self.net.forward(&x);
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        let _ = self.net.backward(&grad);
        (loss, self.net.grads())
    }

    fn evaluate(&mut self, batch: &[ClassSample]) -> EvalMetrics {
        if batch.is_empty() {
            return EvalMetrics::default();
        }
        let (x, targets) = self.batch_tensor(batch);
        let logits = self.net.forward(&x);
        let (loss, _) = softmax_cross_entropy(&logits, &targets);
        let pred = argmax_rows(&logits);
        let correct = pred.iter().zip(&targets).filter(|(p, t)| p == t).count();
        EvalMetrics {
            loss_sum: f64::from(loss) * batch.len() as f64,
            count: batch.len(),
            correct,
            sq_err_sum: 0.0,
        }
    }
}

/// Multi-layer perceptron classifier over flat features.
pub fn mlp_classifier(
    inputs: usize,
    hidden: &[usize],
    classes: usize,
    seed: u64,
) -> ImageClassifier {
    let mut net = Sequential::new();
    let mut prev = inputs;
    for (i, &h) in hidden.iter().enumerate() {
        net = net
            .with(Linear::new(prev, h, init::sub_seed(seed, i as u64)))
            .with(Relu::new());
        prev = h;
    }
    net = net.with(Linear::new(prev, classes, init::sub_seed(seed, 100)));
    ImageClassifier::new(net, vec![inputs], classes)
}

/// GN-LeNet (Hsieh et al.): two conv + group-norm + ReLU + avg-pool blocks and
/// a linear head. `width` is the channel count of both conv layers.
///
/// # Panics
///
/// Panics unless `h` and `w` are divisible by 4 (two 2× pools).
pub fn gn_lenet(
    in_ch: usize,
    h: usize,
    w: usize,
    classes: usize,
    width: usize,
    seed: u64,
) -> ImageClassifier {
    assert!(
        h.is_multiple_of(4) && w.is_multiple_of(4),
        "spatial dims must be divisible by 4"
    );
    let groups = if width.is_multiple_of(4) { 4 } else { 1 };
    let net = Sequential::new()
        .with(Conv2d::new(in_ch, width, 3, 1, init::sub_seed(seed, 0)))
        .with(GroupNorm::new(groups, width))
        .with(Relu::new())
        .with(AvgPool2d::new(2))
        .with(Conv2d::new(width, width, 3, 1, init::sub_seed(seed, 1)))
        .with(GroupNorm::new(groups, width))
        .with(Relu::new())
        .with(AvgPool2d::new(2))
        .with(Flatten::new())
        .with(Linear::new(
            width * (h / 4) * (w / 4),
            classes,
            init::sub_seed(seed, 2),
        ));
    ImageClassifier::new(net, vec![in_ch, h, w], classes)
}

/// LEAF-style CNN (FEMNIST/CelebA): two conv + ReLU + max-pool blocks, then a
/// hidden linear layer and the class head.
///
/// # Panics
///
/// Panics unless `h` and `w` are divisible by 4.
pub fn leaf_cnn(
    in_ch: usize,
    h: usize,
    w: usize,
    classes: usize,
    width: usize,
    hidden: usize,
    seed: u64,
) -> ImageClassifier {
    assert!(
        h.is_multiple_of(4) && w.is_multiple_of(4),
        "spatial dims must be divisible by 4"
    );
    let net = Sequential::new()
        .with(Conv2d::new(in_ch, width, 3, 1, init::sub_seed(seed, 0)))
        .with(Relu::new())
        .with(MaxPool2d::new(2))
        .with(Conv2d::new(width, 2 * width, 3, 1, init::sub_seed(seed, 1)))
        .with(Relu::new())
        .with(MaxPool2d::new(2))
        .with(Flatten::new())
        .with(Linear::new(
            2 * width * (h / 4) * (w / 4),
            hidden,
            init::sub_seed(seed, 2),
        ))
        .with(Relu::new())
        .with(Linear::new(hidden, classes, init::sub_seed(seed, 3)));
    ImageClassifier::new(net, vec![in_ch, h, w], classes)
}

/// Matrix factorization with user/item biases (Koren et al.), the MovieLens
/// model.
///
/// Flat layout: `[user factors U×k][item factors I×k][user bias U][item bias
/// I][global bias]`.
#[derive(Debug)]
pub struct MatrixFactorization {
    users: usize,
    items: usize,
    factors: usize,
    params: Vec<f32>,
}

impl MatrixFactorization {
    /// Creates a model with `N(0, 0.1)` factors and zero biases.
    pub fn new(users: usize, items: usize, factors: usize, seed: u64) -> Self {
        let mut params = init::scaled_normal(0.1, users * factors, init::sub_seed(seed, 0));
        params.extend(init::scaled_normal(
            0.1,
            items * factors,
            init::sub_seed(seed, 1),
        ));
        params.extend(std::iter::repeat_n(0.0f32, users + items + 1));
        Self {
            users,
            items,
            factors,
            params,
        }
    }

    /// Matrix shapes of the parameter blocks: factor matrices `[U×k]`,
    /// `[I×k]`, then the bias columns — feeds per-layer low-rank
    /// compressors like PowerGossip.
    pub fn param_segments(&self) -> Vec<(usize, usize)> {
        vec![
            (self.users, self.factors),
            (self.items, self.factors),
            (self.users, 1),
            (self.items, 1),
            (1, 1),
        ]
    }

    fn predict(&self, user: usize, item: usize) -> f32 {
        let k = self.factors;
        let pu = &self.params[user * k..(user + 1) * k];
        let qi_base = self.users * k + item * k;
        let qi = &self.params[qi_base..qi_base + k];
        let bias_base = (self.users + self.items) * k;
        let bu = self.params[bias_base + user];
        let bi = self.params[bias_base + self.users + item];
        let g = self.params[bias_base + self.users + self.items];
        let dot: f32 = pu.iter().zip(qi).map(|(a, b)| a * b).sum();
        g + bu + bi + dot
    }

    fn validate(&self, user: usize, item: usize) {
        assert!(user < self.users, "user {user} out of range {}", self.users);
        assert!(item < self.items, "item {item} out of range {}", self.items);
    }
}

impl Model for MatrixFactorization {
    type Sample = RatingSample;

    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(flat);
    }

    fn loss_and_grad(&mut self, batch: &[RatingSample]) -> (f32, Vec<f32>) {
        assert!(!batch.is_empty(), "empty batch");
        let preds: Vec<f32> = batch
            .iter()
            .map(|&(u, i, _)| {
                self.validate(u, i);
                self.predict(u, i)
            })
            .collect();
        let targets: Vec<f32> = batch.iter().map(|&(_, _, r)| r).collect();
        let (loss, dpred) = mse(&preds, &targets);
        let k = self.factors;
        let bias_base = (self.users + self.items) * k;
        let mut grad = vec![0.0f32; self.params.len()];
        for (&(u, i, _), &e) in batch.iter().zip(&dpred) {
            let qi_base = self.users * k + i * k;
            for f in 0..k {
                grad[u * k + f] += e * self.params[qi_base + f];
                grad[qi_base + f] += e * self.params[u * k + f];
            }
            grad[bias_base + u] += e;
            grad[bias_base + self.users + i] += e;
            grad[bias_base + self.users + self.items] += e;
        }
        (loss, grad)
    }

    fn evaluate(&mut self, batch: &[RatingSample]) -> EvalMetrics {
        if batch.is_empty() {
            return EvalMetrics::default();
        }
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        for &(u, i, r) in batch {
            self.validate(u, i);
            let p = self.predict(u, i);
            let d = f64::from(p) - f64::from(r);
            loss_sum += d * d;
            // "Accuracy" for ratings: prediction rounds to the true (half-)star.
            if d.abs() < 0.5 {
                correct += 1;
            }
        }
        EvalMetrics {
            loss_sum,
            count: batch.len(),
            correct,
            sq_err_sum: loss_sum,
        }
    }
}

/// Embedding → stacked LSTM (2 layers) → linear decoder; the LEAF
/// Shakespeare next-character model.
#[derive(Debug)]
pub struct CharLstm {
    emb: Embedding,
    lstm1: Lstm,
    lstm2: Lstm,
    head: Linear,
    vocab: usize,
    hidden: usize,
}

impl CharLstm {
    /// Matrix shapes of the parameter blocks across embedding, both LSTM
    /// layers and the decoder head — feeds per-layer low-rank compressors.
    pub fn param_segments(&self) -> Vec<(usize, usize)> {
        let mut segs = self.emb.param_segments();
        segs.extend(self.lstm1.param_segments());
        segs.extend(self.lstm2.param_segments());
        segs.extend(self.head.param_segments());
        segs
    }

    /// Creates the model for a `vocab`-symbol alphabet.
    pub fn new(vocab: usize, emb_dim: usize, hidden: usize, seed: u64) -> Self {
        Self {
            emb: Embedding::new(vocab, emb_dim, init::sub_seed(seed, 0)),
            lstm1: Lstm::new(emb_dim, hidden, init::sub_seed(seed, 1)),
            lstm2: Lstm::new(hidden, hidden, init::sub_seed(seed, 2)),
            head: Linear::new(hidden, vocab, init::sub_seed(seed, 3)),
            vocab,
            hidden,
        }
    }

    /// Alphabet size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Runs the network, returning `[batch·steps, vocab]` logits and the
    /// flattened targets.
    fn forward_batch(&mut self, batch: &[SeqSample]) -> (Tensor, Vec<usize>) {
        assert!(!batch.is_empty(), "empty batch");
        let t = batch[0].0.len();
        assert!(t > 0, "empty sequence");
        let mut ids = Vec::with_capacity(batch.len() * t);
        let mut targets = Vec::with_capacity(batch.len() * t);
        for (x, y) in batch {
            assert_eq!(x.len(), t, "all sequences in a batch must share a length");
            assert_eq!(y.len(), t, "targets must align with inputs");
            ids.extend_from_slice(x);
            targets.extend_from_slice(y);
        }
        let e = self.emb.dim();
        let embedded = self.emb.forward(&ids).reshape(&[batch.len(), t, e]);
        let h1 = self.lstm1.forward(&embedded);
        let h2 = self.lstm2.forward(&h1);
        let flat = h2.reshape(&[batch.len() * t, self.hidden]);
        let logits = self.head.forward(&flat);
        (logits, targets)
    }
}

impl Model for CharLstm {
    type Sample = SeqSample;

    fn param_count(&self) -> usize {
        self.emb.params().len()
            + self.lstm1.params().len()
            + self.lstm2.params().len()
            + self.head.param_count()
    }

    fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        out.extend_from_slice(self.emb.params());
        out.extend_from_slice(self.lstm1.params());
        out.extend_from_slice(self.lstm2.params());
        out.extend_from_slice(self.head.params());
        out
    }

    fn set_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "parameter length mismatch");
        let mut off = 0;
        for (dst_len, dst) in [
            (self.emb.params().len(), self.emb.params_mut()),
            (self.lstm1.params().len(), self.lstm1.params_mut()),
            (self.lstm2.params().len(), self.lstm2.params_mut()),
            (self.head.param_count(), self.head.params_mut()),
        ] {
            dst.copy_from_slice(&flat[off..off + dst_len]);
            off += dst_len;
        }
    }

    fn loss_and_grad(&mut self, batch: &[SeqSample]) -> (f32, Vec<f32>) {
        self.emb.zero_grads();
        self.lstm1.zero_grads();
        self.lstm2.zero_grads();
        self.head.zero_grads();
        let b = batch.len();
        let t = batch[0].0.len();
        let (logits, targets) = self.forward_batch(batch);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &targets);
        let dflat = self.head.backward(&dlogits);
        let dh2 = dflat.reshape(&[b, t, self.hidden]);
        let dh1 = self.lstm2.backward(&dh2);
        let demb = self.lstm1.backward(&dh1);
        let e = self.emb.dim();
        self.emb.backward(&demb.reshape(&[b * t, e]));
        let mut grad = Vec::with_capacity(self.param_count());
        grad.extend_from_slice(self.emb.grads());
        grad.extend_from_slice(self.lstm1.grads());
        grad.extend_from_slice(self.lstm2.grads());
        grad.extend_from_slice(self.head.grads());
        (loss, grad)
    }

    fn evaluate(&mut self, batch: &[SeqSample]) -> EvalMetrics {
        if batch.is_empty() {
            return EvalMetrics::default();
        }
        let (logits, targets) = self.forward_batch(batch);
        let (loss, _) = softmax_cross_entropy(&logits, &targets);
        let preds = argmax_rows(&logits);
        let correct = preds.iter().zip(&targets).filter(|(p, t)| p == t).count();
        EvalMetrics {
            loss_sum: f64::from(loss) * targets.len() as f64,
            count: targets.len(),
            correct,
            sq_err_sum: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn param_segments_tile_every_model() {
        use crate::model::Model;
        let ic = gn_lenet(3, 16, 16, 10, 8, 1);
        assert_eq!(
            ic.param_segments()
                .iter()
                .map(|(r, c)| r * c)
                .sum::<usize>(),
            ic.param_count()
        );
        let mf = MatrixFactorization::new(12, 20, 4, 1);
        assert_eq!(
            mf.param_segments()
                .iter()
                .map(|(r, c)| r * c)
                .sum::<usize>(),
            mf.param_count()
        );
        let lstm = CharLstm::new(30, 8, 16, 1);
        assert_eq!(
            lstm.param_segments()
                .iter()
                .map(|(r, c)| r * c)
                .sum::<usize>(),
            lstm.param_count()
        );
    }

    use super::*;
    use crate::gradcheck::check_model;

    fn class_batch(features: usize, classes: usize) -> Vec<ClassSample> {
        (0..4)
            .map(|s| {
                let x: Vec<f32> = (0..features)
                    .map(|i| ((s * features + i) as f32 * 0.7).sin() * 0.5)
                    .collect();
                (x, s % classes)
            })
            .collect()
    }

    #[test]
    fn mlp_gradcheck() {
        let mut m = mlp_classifier(6, &[8], 3, 11);
        let batch = class_batch(6, 3);
        check_model(&mut m, &batch, 1e-3, 3e-2, 60).unwrap();
    }

    #[test]
    fn gn_lenet_gradcheck() {
        let mut m = gn_lenet(2, 4, 4, 3, 4, 5);
        let batch = class_batch(2 * 4 * 4, 3);
        check_model(&mut m, &batch, 1e-3, 5e-2, 50).unwrap();
    }

    #[test]
    fn leaf_cnn_gradcheck() {
        let mut m = leaf_cnn(1, 4, 4, 2, 3, 8, 6);
        let batch = class_batch(16, 2);
        check_model(&mut m, &batch, 1e-3, 5e-2, 50).unwrap();
    }

    #[test]
    fn matrix_factorization_gradcheck() {
        let mut m = MatrixFactorization::new(5, 7, 3, 2);
        let batch = vec![(0usize, 1usize, 4.0f32), (2, 6, 1.5), (4, 0, 3.0)];
        check_model(&mut m, &batch, 1e-3, 3e-2, 60).unwrap();
    }

    #[test]
    fn char_lstm_gradcheck() {
        let mut m = CharLstm::new(6, 4, 5, 3);
        let batch = vec![
            (vec![0usize, 2, 4, 1], vec![2usize, 4, 1, 5]),
            (vec![3, 3, 0, 5], vec![3, 0, 5, 2]),
        ];
        check_model(&mut m, &batch, 5e-3, 5e-2, 80).unwrap();
    }

    #[test]
    fn mlp_learns_a_separable_problem() {
        // Two clearly separated Gaussian blobs.
        let mut m = mlp_classifier(2, &[8], 2, 1);
        let mut batch = Vec::new();
        for i in 0..20 {
            let t = i as f32 * 0.1;
            batch.push((vec![1.0 + t.sin() * 0.1, 1.0 + t.cos() * 0.1], 0usize));
            batch.push((vec![-1.0 + t.sin() * 0.1, -1.0 - t.cos() * 0.1], 1usize));
        }
        let mut opt = crate::optim::Sgd::new(0.5);
        let mut params = m.params();
        for _ in 0..60 {
            m.set_params(&params);
            let (_, grad) = m.loss_and_grad(&batch);
            opt.step(&mut params, &grad);
        }
        m.set_params(&params);
        let metrics = m.evaluate(&batch);
        assert!(metrics.accuracy() > 0.95, "accuracy {}", metrics.accuracy());
    }

    #[test]
    fn mf_fits_a_tiny_matrix() {
        let mut m = MatrixFactorization::new(4, 4, 2, 7);
        // Block structure: users 0-1 love items 0-1, users 2-3 love items 2-3.
        let mut batch = Vec::new();
        for u in 0..4usize {
            for i in 0..4usize {
                let r = if (u < 2) == (i < 2) { 5.0 } else { 1.0 };
                batch.push((u, i, r));
            }
        }
        let mut opt = crate::optim::Sgd::new(0.3);
        let mut params = m.params();
        for _ in 0..300 {
            m.set_params(&params);
            let (_, grad) = m.loss_and_grad(&batch);
            opt.step(&mut params, &grad);
        }
        m.set_params(&params);
        let metrics = m.evaluate(&batch);
        assert!(metrics.rmse() < 0.5, "rmse {}", metrics.rmse());
    }

    #[test]
    fn param_roundtrip_all_models() {
        let mut lstm = CharLstm::new(5, 3, 4, 1);
        let p = lstm.params();
        assert_eq!(p.len(), lstm.param_count());
        let mut p2 = p.clone();
        p2[10] += 1.0;
        lstm.set_params(&p2);
        assert_eq!(lstm.params(), p2);

        let mut mf = MatrixFactorization::new(3, 3, 2, 1);
        let p = mf.params();
        assert_eq!(p.len(), 3 * 2 + 3 * 2 + 3 + 3 + 1);
        mf.set_params(&p);
        assert_eq!(mf.params(), p);
    }

    #[test]
    fn classifier_counts_correct_predictions() {
        let mut m = mlp_classifier(2, &[], 2, 3);
        // Fix weights so class 0 wins iff x0 > x1: W = [[1,0],[0,1]], b = 0.
        m.set_params(&[1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let batch = vec![
            (vec![2.0, 0.0], 0usize),
            (vec![0.0, 2.0], 1),
            (vec![2.0, 0.0], 1), // wrong on purpose
        ];
        let metrics = m.evaluate(&batch);
        assert_eq!(metrics.count, 3);
        assert_eq!(metrics.correct, 2);
    }
}
