//! 2-D convolution (direct algorithm, stride 1, symmetric zero padding).
//!
//! GN-LeNet — the CIFAR-10 model of Hsieh et al. that the paper adopts — is
//! two convolution blocks followed by a classifier head. At the scaled-down
//! image sizes of the synthetic workloads a direct convolution loop is both
//! simple and fast enough; correctness is what matters for the reproduction
//! and is established by finite-difference tests.

use crate::init;
use crate::layers::Layer;
use crate::tensor::Tensor;

/// Stride-1 2-D convolution with square kernels and zero padding.
///
/// Parameters are packed `[weight: out_ch × in_ch × k × k][bias: out_ch]`.
#[derive(Debug)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    pad: usize,
    params: Vec<f32>,
    grads: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0`.
    pub fn new(in_ch: usize, out_ch: usize, kernel: usize, pad: usize, seed: u64) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        let wlen = out_ch * in_ch * kernel * kernel;
        let mut params = init::kaiming_normal(in_ch * kernel * kernel, wlen, seed);
        params.extend(std::iter::repeat_n(0.0f32, out_ch));
        let len = params.len();
        Self {
            in_ch,
            out_ch,
            kernel,
            pad,
            params,
            grads: vec![0.0; len],
            cached_input: None,
        }
    }

    fn out_dim(&self, dim: usize) -> usize {
        dim + 2 * self.pad + 1 - self.kernel
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [b, c, h, w]: [usize; 4] = input.shape().try_into().expect("expects [b,c,h,w]");
        assert_eq!(c, self.in_ch, "channel mismatch");
        assert!(
            h + 2 * self.pad >= self.kernel && w + 2 * self.pad >= self.kernel,
            "input smaller than kernel"
        );
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        let k = self.kernel;
        let x = input.data();
        let wlen = self.out_ch * self.in_ch * k * k;
        let (weight, bias) = self.params.split_at(wlen);
        let mut out = vec![0.0f32; b * self.out_ch * oh * ow];
        let pad = self.pad as isize;
        for bi in 0..b {
            for oc in 0..self.out_ch {
                let dst = &mut out
                    [(bi * self.out_ch + oc) * oh * ow..(bi * self.out_ch + oc + 1) * oh * ow];
                for ic in 0..self.in_ch {
                    let plane = &x[(bi * c + ic) * h * w..(bi * c + ic + 1) * h * w];
                    let kern =
                        &weight[(oc * self.in_ch + ic) * k * k..(oc * self.in_ch + ic + 1) * k * k];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = 0.0;
                            for ky in 0..k {
                                let iy = oy as isize + ky as isize - pad;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox as isize + kx as isize - pad;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += plane[iy as usize * w + ix as usize] * kern[ky * k + kx];
                                }
                            }
                            dst[oy * ow + ox] += acc;
                        }
                    }
                }
                for v in dst.iter_mut() {
                    *v += bias[oc];
                }
            }
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(&[b, self.out_ch, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let [b, c, h, w]: [usize; 4] = input.shape().try_into().expect("cached shape");
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        assert_eq!(grad_out.len(), b * self.out_ch * oh * ow);
        let k = self.kernel;
        let pad = self.pad as isize;
        let x = input.data();
        let gy = grad_out.data();
        let wlen = self.out_ch * self.in_ch * k * k;
        let weight: Vec<f32> = self.params[..wlen].to_vec();
        let (gw, gb) = self.grads.split_at_mut(wlen);
        let mut gx = vec![0.0f32; b * c * h * w];
        for bi in 0..b {
            for oc in 0..self.out_ch {
                let gys =
                    &gy[(bi * self.out_ch + oc) * oh * ow..(bi * self.out_ch + oc + 1) * oh * ow];
                gb[oc] += gys.iter().sum::<f32>();
                for ic in 0..self.in_ch {
                    let plane = &x[(bi * c + ic) * h * w..(bi * c + ic + 1) * h * w];
                    let kern =
                        &weight[(oc * self.in_ch + ic) * k * k..(oc * self.in_ch + ic + 1) * k * k];
                    let gkern =
                        &mut gw[(oc * self.in_ch + ic) * k * k..(oc * self.in_ch + ic + 1) * k * k];
                    let gplane_base = (bi * c + ic) * h * w;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gys[oy * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            for ky in 0..k {
                                let iy = oy as isize + ky as isize - pad;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox as isize + kx as isize - pad;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let ii = iy as usize * w + ix as usize;
                                    gkern[ky * k + kx] += g * plane[ii];
                                    gx[gplane_base + ii] += g * kern[ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(&[b, c, h, w], gx)
    }

    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn param_segments(&self) -> Vec<(usize, usize)> {
        // Filter bank [out, in*k*k] then the bias column — the natural
        // matricization PowerSGD/PowerGossip factorize.
        vec![
            (self.out_ch, self.in_ch * self.kernel * self.kernel),
            (self.out_ch, 1),
        ]
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn grads(&self) -> &[f32] {
        &self.grads
    }

    fn zero_grads(&mut self) {
        self.grads.iter_mut().for_each(|g| *g = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 kernel with weight 1 and no padding acts as identity.
        let mut conv = Conv2d::new(1, 1, 1, 0, 0);
        conv.params_mut().copy_from_slice(&[1.0, 0.0]);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0);
        // Sum-of-neighbourhood kernel.
        let mut p = vec![1.0f32; 9];
        p.push(0.0); // bias
        conv.params_mut().copy_from_slice(&p);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        // With zero padding every output is the sum of all in-range pixels.
        assert_eq!(y.data(), &[10.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn output_shape_and_bias() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 7);
        let x = Tensor::zeros(&[2, 2, 8, 8]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[2, 3, 8, 8]);
        assert_eq!(conv.param_count(), 3 * 2 * 9 + 3);
    }

    #[test]
    fn gradient_accumulates_across_calls() {
        let mut conv = Conv2d::new(1, 1, 1, 0, 3);
        let x = Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]);
        let _ = conv.forward(&x);
        let _ = conv.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]));
        let g1 = conv.grads()[0];
        let _ = conv.forward(&x);
        let _ = conv.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]));
        assert_eq!(conv.grads()[0], 2.0 * g1);
        conv.zero_grads();
        assert_eq!(conv.grads()[0], 0.0);
    }
}
