//! Dense `f32` tensors with shape checking.
//!
//! Deliberately minimal: the layers in this crate index into the flat buffer
//! directly (they know their own geometry), so the tensor type only has to
//! carry shape metadata, validate construction and provide the couple of
//! dense-algebra helpers the linear layer and tests use.

use std::fmt;

/// A dense row-major `f32` array with an explicit shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Wraps a buffer, validating that the element count matches the shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.iter().product()`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "shape {shape:?} needs {expected} elements, got {}",
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes self, returning the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "reshape to {shape:?} mismatch");
        self.shape = shape.to_vec();
        self
    }

    /// 2-D matrix multiply: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with compatible inner dimensions.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &rhs.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row) {
                    *d += a * b;
                }
            }
        }
        Tensor::from_vec(&[m, n], out)
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.data()[3], 4.0);
    }

    #[test]
    #[should_panic(expected = "needs 4 elements")]
    fn bad_shape_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![3.0, -1.0, 2.0, 5.0]);
        let id = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.clone().reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dimension_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }
}
